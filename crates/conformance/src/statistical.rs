//! Statistical analytics-vs-simulation differential testing (the paper's
//! Section VII.A methodology with honest error bars).
//!
//! For each scenario the fixed point is solved analytically, then `K`
//! independently seeded slot-engine replicas are run through the parallel
//! shim and summarized into per-quantity means and 95% confidence
//! intervals ([`macgame_sim::validate_fixed_point_sweep`]). A claim
//! passes when the worst relative error over nodes stays inside its
//! per-quantity tolerance budget.

use macgame_dcf::params::AccessMode;
use macgame_dcf::DcfParams;
use macgame_sim::validate_fixed_point_sweep;
use serde::{Deserialize, Serialize};

use crate::report::ConformanceSettings;
use crate::ConformanceError;

/// Per-quantity relative-error budgets gating analytics-vs-sim agreement.
///
/// Budgets are set at roughly twice the worst deterministic error observed
/// at the `quick` settings, so they catch genuine model/simulator drift
/// without flaking on Monte-Carlo noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToleranceBudget {
    /// Budget for the transmission probabilities `τ_i`.
    pub tau: f64,
    /// Budget for the conditional collision probabilities `p_i`. The
    /// loosest budget: `p̂` is a ratio of two counted rates and inherits
    /// both variances.
    pub p: f64,
    /// Budget for the normalized throughput `S`.
    pub throughput: f64,
}

impl ToleranceBudget {
    /// The budgets the conformance gate runs with.
    #[must_use]
    pub fn paper() -> Self {
        ToleranceBudget { tau: 0.10, p: 0.20, throughput: 0.10 }
    }
}

/// One gated quantity of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatisticalClaim {
    /// `"{scenario}/{quantity}"`.
    pub name: String,
    /// Worst relative error over nodes (mean estimate vs prediction).
    pub worst_relative_error: f64,
    /// The budget this claim is gated on.
    pub tolerance: f64,
    /// Widest 95% CI half-width over nodes — reported so a "pass" with
    /// huge error bars is visible for what it is.
    pub max_ci_half_width: f64,
    /// `worst_relative_error <= tolerance`.
    pub pass: bool,
}

struct Scenario {
    name: &'static str,
    windows: Vec<u32>,
    params: DcfParams,
    seed_offset: u64,
}

fn scenarios() -> Result<Vec<Scenario>, ConformanceError> {
    let basic = DcfParams::default();
    let rtscts = DcfParams::builder().access_mode(AccessMode::RtsCts).build()?;
    Ok(vec![
        Scenario {
            name: "symmetric-basic-n5-w76",
            windows: vec![76; 5],
            params: basic,
            seed_offset: 0,
        },
        Scenario {
            name: "heterogeneous-basic",
            windows: vec![16, 48, 96, 192],
            params: basic,
            seed_offset: 1_000,
        },
        Scenario {
            name: "symmetric-rtscts-n8-w48",
            windows: vec![48; 8],
            params: rtscts,
            seed_offset: 2_000,
        },
    ])
}

fn claim(name: String, worst: f64, tolerance: f64, ci: f64) -> StatisticalClaim {
    StatisticalClaim {
        name,
        worst_relative_error: worst,
        tolerance,
        max_ci_half_width: ci,
        pass: worst <= tolerance,
    }
}

/// Runs every scenario's seed sweep and gates `τ̂`, `p̂`, `Ŝ` against
/// `budget` — three claims per scenario.
///
/// The result depends on `settings.slots`, `settings.replications`, and
/// `settings.base_seed` but **not** on `settings.threads` (the replica
/// fan-out is bitwise thread-count invariant).
///
/// # Errors
///
/// Propagates solver and simulator failures.
pub fn statistical_claims(
    settings: &ConformanceSettings,
    budget: &ToleranceBudget,
) -> Result<Vec<StatisticalClaim>, ConformanceError> {
    let mut claims = Vec::new();
    for scenario in scenarios()? {
        let report = validate_fixed_point_sweep(
            &scenario.windows,
            &scenario.params,
            settings.slots,
            settings.replications,
            settings.base_seed.wrapping_add(scenario.seed_offset),
            settings.threads,
        )?;
        claims.push(claim(
            format!("{}/tau", scenario.name),
            report.max_tau_error(),
            budget.tau,
            report.max_tau_ci_half_width(),
        ));
        claims.push(claim(
            format!("{}/p", scenario.name),
            report.max_p_error(),
            budget.p,
            report.max_p_ci_half_width(),
        ));
        claims.push(claim(
            format!("{}/throughput", scenario.name),
            report.throughput_relative_error(),
            budget.throughput,
            report.throughput.estimate.ci95_half_width,
        ));
    }
    Ok(claims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_sane() {
        let b = ToleranceBudget::paper();
        assert!(b.tau > 0.0 && b.tau < 1.0);
        assert!(b.p >= b.tau, "p inherits two variances; it cannot be the tightest budget");
        assert!(b.throughput > 0.0 && b.throughput < 1.0);
    }

    #[test]
    fn claims_pass_exactly_on_budget() {
        let c = claim("x/tau".into(), 0.05, 0.05, 0.01);
        assert!(c.pass);
        let c = claim("x/tau".into(), 0.0501, 0.05, 0.01);
        assert!(!c.pass);
    }

    #[test]
    fn tiny_sweep_produces_three_claims_per_scenario() {
        // Deliberately tiny: this only checks plumbing, not tolerances.
        let settings = ConformanceSettings {
            slots: 2_000,
            replications: 2,
            base_seed: 7,
            threads: 1,
        };
        let claims = statistical_claims(&settings, &ToleranceBudget::paper()).unwrap();
        assert_eq!(claims.len(), 9);
        assert!(claims.iter().all(|c| c.worst_relative_error.is_finite()));
        assert!(claims[0].name.starts_with("symmetric-basic-n5-w76/"));
    }
}
