//! Offline shim for the subset of `serde` used by this workspace.
//!
//! The real serde abstracts over serializer backends; the only backend in
//! this workspace is JSON, so the shim collapses the data model to a
//! single in-memory [`Value`] tree:
//!
//! * [`Serialize`] renders `self` into a [`Value`];
//! * [`Deserialize`] rebuilds `Self` from a [`Value`].
//!
//! `#[derive(Serialize, Deserialize)]` is provided by the companion
//! `serde_derive` shim and supports the shapes this workspace uses:
//! structs with named fields, newtype structs, and enums with unit or
//! struct variants (externally tagged, like real serde).

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// An in-memory JSON-like value: the single data model of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer (only used for negative values).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error describing an unexpected [`Value`] shape.
    #[must_use]
    pub fn unexpected(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {expected}, found {kind}"))
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Fetches a named field out of an object value (derive-macro helper).
pub fn field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    match value {
        Value::Object(_) => value
            .get(name)
            .ok_or_else(|| DeError(format!("missing field `{name}`"))),
        other => Err(DeError::unexpected("object", other)),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError(format!("integer {u} out of range"))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range"))),
                    other => Err(DeError::unexpected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        u64::from_value(value).and_then(|u| {
            usize::try_from(u).map_err(|_| DeError(format!("integer {u} out of range")))
        })
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range"))),
                    Value::UInt(u) => i64::try_from(*u)
                        .ok()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| DeError(format!("integer {u} out of range"))),
                    other => Err(DeError::unexpected("signed integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        i64::from_value(value).and_then(|i| {
            isize::try_from(i).map_err(|_| DeError(format!("integer {i} out of range")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError::unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Real serde deserializes `&str` zero-copy from borrowed input; the
    /// shim's owned [`Value`] model cannot, so it leaks the string. Only
    /// small diagnostic labels use this, so the leak is bounded.
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::unexpected("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(DeError::unexpected("object", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) => {
                        let expected = [$(stringify!($idx)),+].len();
                        if items.len() != expected {
                            return Err(DeError(format!(
                                "expected {expected}-tuple, found array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::unexpected("array", other)),
                }
            }
        }
    )+};
}

impl_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&String::from("hi").to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u32, 2.5f64);
        assert_eq!(<(u32, f64)>::from_value(&t.to_value()).unwrap(), t);
    }
}
