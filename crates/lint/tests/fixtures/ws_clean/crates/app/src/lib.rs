//! Clean fixture: the artifact root `emit` reaches only deterministic,
//! non-panicking, lock-free code. The analyzer must report nothing.

/// Artifact root: emits a deterministic checksum.
pub fn emit() -> u64 {
    checksum(&collect())
}

fn collect() -> Vec<u64> {
    (0..8).map(step).collect()
}

fn step(i: u64) -> u64 {
    i.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn checksum(xs: &[u64]) -> u64 {
    xs.iter().fold(0u64, |acc, x| acc ^ x.rotate_left(7))
}
