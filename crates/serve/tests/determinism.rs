//! Determinism regressions for the serve path: the reply **byte stream**
//! (not just the decoded values) must be a pure function of the batch
//! contents — invariant under worker-thread count, intra-batch order
//! (modulo the induced reply order), and duplicate coalescing.
//!
//! Thread-count invariance is exercised through `EngineConfig::threads`,
//! the same knob `MACGAME_THREADS` feeds via `resolve_threads(0)`;
//! setting the env var itself would race with the parallel test runner.

use macgame_core::queries::Query;
use macgame_dcf::AccessMode;
use macgame_serve::{EngineConfig, Reply, ServeHarness};

fn harness_with_threads(threads: usize) -> ServeHarness {
    ServeHarness::with_config(EngineConfig { threads, ..EngineConfig::default() }).unwrap()
}

/// A mixed batch large enough to span several executor chunks
/// (`SERVE_CHUNK = 32`), covering all four query types.
fn mixed_batch() -> Vec<Query> {
    let mut queries = Vec::new();
    for w_dev in 1..=60 {
        queries.push(Query::DeviationPayoff {
            players: 5,
            mode: if w_dev % 2 == 0 { AccessMode::Basic } else { AccessMode::RtsCts },
            w_star: 79,
            w_dev,
            reaction_stages: 1,
            delta_s: 0.5,
        });
    }
    for players in 2..=6 {
        queries.push(Query::WcStar { players, mode: AccessMode::Basic, w_max: 512 });
        queries.push(Query::NeInterval { players, mode: AccessMode::RtsCts, w_max: 512 });
    }
    queries.push(Query::RobustnessCell {
        players: 4,
        mode: AccessMode::Basic,
        window: 32,
        reaction_stages: 2,
        epsilon: 1e-9,
    });
    queries
}

#[test]
fn reply_bytes_are_invariant_under_thread_count() {
    let queries = mixed_batch();
    let baseline = harness_with_threads(1).reply_bytes(&queries).unwrap();
    assert!(!baseline.is_empty());
    for threads in [2, 8] {
        let h = harness_with_threads(threads);
        let cold = h.reply_bytes(&queries).unwrap();
        assert_eq!(cold, baseline, "cold replies diverged at threads={threads}");
        // A hot pass serves from the reply cache; bytes must not change.
        let hot = h.reply_bytes(&queries).unwrap();
        assert_eq!(hot, baseline, "hot replies diverged at threads={threads}");
    }
}

#[test]
fn shuffled_batches_get_request_ordered_replies() {
    let queries = mixed_batch();
    // Per-query ground truth: each query evaluated alone on a fresh
    // engine, keyed by its canonical JSON.
    let solo = ServeHarness::new().unwrap();
    let expected: Vec<String> = queries
        .iter()
        .map(|query| {
            let replies = solo.query_batch(std::slice::from_ref(query)).unwrap();
            serde_json::to_string(&replies[0]).unwrap()
        })
        .collect();

    // A deterministic non-trivial permutation (stride walk).
    let n = queries.len();
    let stride = 17; // coprime with the batch length
    assert_eq!(gcd(stride, n), 1, "stride must generate the full cycle");
    let order: Vec<usize> = (0..n).map(|i| (i * stride) % n).collect();
    let shuffled: Vec<Query> = order.iter().map(|&i| queries[i].clone()).collect();

    let h = ServeHarness::new().unwrap();
    let replies = h.query_batch(&shuffled).unwrap();
    assert_eq!(replies.len(), n);
    for (slot, &source) in order.iter().enumerate() {
        let Reply::Ok { id, result } = &replies[slot] else {
            panic!("query {source} failed in shuffled batch");
        };
        // Ids are batch-positional (1-based); results must match the
        // solo evaluation of the query now sitting at this slot.
        assert_eq!(*id, slot as u64 + 1);
        let got = serde_json::to_string(&Reply::Ok { id: 1, result: result.clone() }).unwrap();
        assert_eq!(got, expected[source], "slot {slot} (query {source}) diverged under shuffle");
    }
}

#[test]
fn coalesced_replies_are_bitwise_equal_to_fresh_solves() {
    let unique = mixed_batch();
    // Each query repeated three times, interleaved.
    let mut duplicated = Vec::new();
    for _ in 0..3 {
        duplicated.extend(unique.iter().cloned());
    }

    let coalescing = ServeHarness::new().unwrap();
    let replies = coalescing.query_batch(&duplicated).unwrap();
    assert_eq!(coalescing.engine().reply_cache().misses(), unique.len() as u64);

    let fresh = ServeHarness::new().unwrap();
    let reference = fresh.query_batch(&unique).unwrap();
    for (i, reply) in replies.iter().enumerate() {
        let Reply::Ok { result, .. } = reply else { panic!("request {i} failed") };
        let Reply::Ok { result: expected, .. } = &reference[i % unique.len()] else {
            panic!("reference {i} failed")
        };
        assert_eq!(result, expected, "coalesced reply {i} diverged from a fresh solve");
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}
