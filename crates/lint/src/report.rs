//! Report assembly: deterministic `LINT.json` bytes and the human table.
//!
//! The JSON is hand-rolled (the crate is dependency-free) with sorted
//! findings, sorted rule counts, and no timestamps or absolute paths, so
//! two runs over the same tree produce byte-identical artifacts — the
//! same contract the other `artifacts/*.json` files honor.

use std::collections::BTreeMap;

use crate::rules::Finding;

/// The outcome of linting a workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Every finding, waived or not, sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Number of manifests checked.
    pub manifests_checked: usize,
}

impl LintReport {
    /// Sorts findings into their canonical artifact order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
        });
    }

    /// Findings not covered by a waiver — the CI-failing set.
    #[must_use]
    pub fn unwaived(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| !f.waived).collect()
    }

    /// Whether the workspace passes (every finding waived with rationale).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.iter().all(|f| f.waived)
    }

    /// Per-rule `(total, waived)` counts, sorted by rule id.
    #[must_use]
    pub fn rule_counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for f in &self.findings {
            let entry = counts.entry(f.rule).or_default();
            entry.0 += 1;
            if f.waived {
                entry.1 += 1;
            }
        }
        counts
    }

    /// Renders the deterministic `LINT.json` bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"macgame-lint/1\",\n");
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!("    \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("    \"manifests_checked\": {},\n", self.manifests_checked));
        out.push_str(&format!("    \"findings\": {},\n", self.findings.len()));
        out.push_str(&format!(
            "    \"waived\": {},\n",
            self.findings.iter().filter(|f| f.waived).count()
        ));
        out.push_str(&format!("    \"unwaived\": {},\n", self.unwaived().len()));
        out.push_str("    \"rules\": {");
        let counts = self.rule_counts();
        let mut first = true;
        for (rule, (total, waived)) in &counts {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n      {}: {{\"total\": {total}, \"waived\": {waived}}}",
                json_string(rule)
            ));
        }
        if !counts.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("}\n  },\n");
        out.push_str("  \"findings\": [");
        let mut first = true;
        for f in &self.findings {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_string(f.rule)));
            out.push_str(&format!("\"path\": {}, ", json_string(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"waived\": {}, ", f.waived));
            match &f.reason {
                Some(r) => out.push_str(&format!("\"reason\": {}, ", json_string(r))),
                None => out.push_str("\"reason\": null, "),
            }
            out.push_str(&format!("\"message\": {}, ", json_string(&f.message)));
            out.push_str(&format!("\"snippet\": {}}}", json_string(&f.snippet)));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Rows for a `rule | location | status | detail` table: unwaived
    /// findings first (they are what the reader must act on), then waived
    /// grants with their rationale.
    #[must_use]
    pub fn table_rows(&self) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for pass in [false, true] {
            for f in self.findings.iter().filter(|f| f.waived == pass) {
                let detail = if f.waived {
                    format!("waived: {}", f.reason.as_deref().unwrap_or(""))
                } else {
                    f.message.clone()
                };
                rows.push(vec![
                    f.rule.to_string(),
                    format!("{}:{}", f.path, f.line),
                    if f.waived { "allow".to_string() } else { "FAIL".to_string() },
                    detail,
                ]);
            }
        }
        rows
    }

    /// Renders the report as aligned plain text (used by the standalone
    /// binary; `repro -- lint` uses its own table renderer on
    /// [`Self::table_rows`]).
    #[must_use]
    pub fn render_text(&self) -> String {
        let headers = ["rule", "location", "status", "detail"];
        let rows = self.table_rows();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[&str], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.chars().count()..*w {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&headers, &mut out);
        for row in &rows {
            let cells: Vec<&str> = row.iter().map(String::as_str).collect();
            render_row(&cells, &mut out);
        }
        out.push_str(&format!(
            "\n{} file(s), {} manifest(s) scanned: {} finding(s), {} waived, {} unwaived\n",
            self.files_scanned,
            self.manifests_checked,
            self.findings.len(),
            self.findings.iter().filter(|f| f.waived).count(),
            self.unwaived().len(),
        ));
        out
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32, waived: bool) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: format!("broke {rule}"),
            snippet: "let x = 1;".to_string(),
            waived,
            reason: waived.then(|| "because".to_string()),
            witness: Vec::new(),
        }
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut report = LintReport {
            findings: vec![
                finding("b/rule", "z.rs", 9, false),
                finding("a/rule", "a.rs", 3, true),
                finding("a/rule", "a.rs", 1, false),
            ],
            files_scanned: 3,
            manifests_checked: 1,
        };
        report.sort();
        let one = report.to_json();
        let two = report.to_json();
        assert_eq!(one, two);
        let a1 = one.find("\"line\": 1").expect("line 1 present");
        let a3 = one.find("\"line\": 3").expect("line 3 present");
        let z9 = one.find("\"line\": 9").expect("line 9 present");
        assert!(a1 < a3 && a3 < z9, "findings must be path/line ordered");
        assert!(one.contains("\"unwaived\": 2"));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_is_clean_and_valid() {
        let report = LintReport { findings: vec![], files_scanned: 0, manifests_checked: 0 };
        assert!(report.is_clean());
        let json = report.to_json();
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"rules\": {}"));
    }

    #[test]
    fn table_lists_unwaived_first() {
        let mut report = LintReport {
            findings: vec![
                finding("a/rule", "a.rs", 1, true),
                finding("b/rule", "b.rs", 2, false),
            ],
            files_scanned: 2,
            manifests_checked: 0,
        };
        report.sort();
        let rows = report.table_rows();
        assert_eq!(rows[0][2], "FAIL");
        assert_eq!(rows[1][2], "allow");
        assert!(rows[1][3].starts_with("waived: "));
    }
}
