//! Section V.D/V.E ablations: short-sighted and malicious players.

use macgame_core::deviation::{
    malicious_impact, optimal_shortsighted_deviation, shortsighted_deviation,
};
use macgame_core::equilibrium::efficient_ne;
use macgame_core::GameConfig;
use serde::{Deserialize, Serialize};

use crate::BenchError;

/// One row of the short-sighted ablation: the deviator's optimal window
/// and gain as a function of its discount factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShortsightedRow {
    /// The deviator's discount factor `δ_s`.
    pub delta_s: f64,
    /// Its optimal deviation window `W_s(δ_s)`.
    pub w_s: u32,
    /// Relative gain over compliance (positive ⇒ deviation pays).
    pub relative_gain: f64,
    /// Relative loss inflicted on each compliant player during the episode.
    pub victim_relative_loss: f64,
}

/// The short-sightedness sweep (paper Section V.D): for each `δ_s`, the
/// optimal deviation and its consequences.
///
/// # Errors
///
/// Propagates model failures.
pub fn shortsighted_table(
    n: usize,
    reaction_stages: u32,
    deltas: &[f64],
) -> Result<Vec<ShortsightedRow>, BenchError> {
    let game = GameConfig::builder(n).build()?;
    let w_star = efficient_ne(&game)?.window;
    let mut rows = Vec::new();
    for &delta_s in deltas {
        let best = optimal_shortsighted_deviation(&game, w_star, reaction_stages, delta_s)?;
        rows.push(ShortsightedRow {
            delta_s,
            w_s: best.w_s,
            relative_gain: best.gain() / best.compliant_payoff.abs(),
            victim_relative_loss: (best.compliant_payoff - best.victim_payoff)
                / best.compliant_payoff.abs(),
        });
    }
    Ok(rows)
}

/// One row of the reaction-lag ablation: how the crowd's TFT latency
/// changes the deviation calculus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReactionRow {
    /// TFT reaction lag in stages.
    pub reaction_stages: u32,
    /// Relative gain of a fixed `W_s = W_c*/2` deviation at `δ_s`.
    pub relative_gain: f64,
}

/// Sweeps the reaction lag for a fixed moderately short-sighted deviator.
///
/// # Errors
///
/// Propagates model failures.
pub fn reaction_table(
    n: usize,
    delta_s: f64,
    lags: &[u32],
) -> Result<Vec<ReactionRow>, BenchError> {
    let game = GameConfig::builder(n).build()?;
    let w_star = efficient_ne(&game)?.window;
    let mut rows = Vec::new();
    for &m in lags {
        let outcome = shortsighted_deviation(&game, w_star, (w_star / 2).max(1), m, delta_s)?;
        rows.push(ReactionRow {
            reaction_stages: m,
            relative_gain: outcome.gain() / outcome.compliant_payoff.abs(),
        });
    }
    Ok(rows)
}

/// One row of the malicious table (Section V.E).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaliciousRow {
    /// The window the malicious player pins (and TFT spreads).
    pub w_mal: u32,
    /// Fraction of NE welfare remaining after convergence.
    pub remaining_fraction: f64,
    /// Whether welfare went non-positive (paralysis).
    pub collapsed: bool,
}

/// The malicious-degradation sweep.
///
/// # Errors
///
/// Propagates model failures.
pub fn malicious_table(n: usize, windows: &[u32]) -> Result<Vec<MaliciousRow>, BenchError> {
    let game = GameConfig::builder(n).build()?;
    let w_star = efficient_ne(&game)?.window;
    let mut rows = Vec::new();
    for &w_mal in windows {
        let impact = malicious_impact(&game, w_star, w_mal)?;
        rows.push(MaliciousRow {
            w_mal,
            remaining_fraction: impact.remaining_fraction(),
            collapsed: impact.collapsed(),
        });
    }
    Ok(rows)
}


/// One row of the price-of-myopia table (Discussion section VIII).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MyopiaRow {
    /// Population.
    pub n: usize,
    /// Efficient NE window (TFT-sustained).
    pub w_star: u32,
    /// The myopic best-response fixed point's window range (min, max).
    pub myopic_windows: (u32, u32),
    /// Welfare at the myopic fixed point as a fraction of the efficient
    /// NE's welfare.
    pub welfare_ratio: f64,
}

/// Computes the price of myopia over populations: the myopic fixed point
/// and the welfare it forfeits versus the TFT-sustained efficient NE.
///
/// # Errors
///
/// Propagates model failures.
pub fn myopia_table(populations: &[usize]) -> Result<Vec<MyopiaRow>, BenchError> {
    let mut rows = Vec::new();
    for &n in populations {
        let game = GameConfig::builder(n).build()?;
        let w_star = efficient_ne(&game)?.window;
        let out = macgame_core::equilibrium::myopic_dynamics(&game, &vec![w_star; n], 15)?;
        rows.push(MyopiaRow {
            n,
            w_star,
            myopic_windows: (
                *out.profile.iter().min().expect("nonempty"), // PANIC-POLICY: invariant: nonempty
                *out.profile.iter().max().expect("nonempty"), // PANIC-POLICY: invariant: nonempty
            ),
            welfare_ratio: out.welfare_ratio(),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_decreases_with_farsightedness() {
        let rows = shortsighted_table(5, 1, &[0.0, 0.5, 0.9, 0.999]).unwrap();
        for pair in rows.windows(2) {
            assert!(
                pair[1].relative_gain <= pair[0].relative_gain + 1e-12,
                "gain should fall as δ_s rises: {pair:?}"
            );
        }
        assert!(rows[0].relative_gain > 1.0, "myopic gain should be large");
        assert!(rows[3].relative_gain < 1e-3, "long-sighted gain should vanish");
    }

    #[test]
    fn victims_lose_when_deviation_happens() {
        let rows = shortsighted_table(5, 1, &[0.0]).unwrap();
        assert!(rows[0].victim_relative_loss > 0.0);
    }

    #[test]
    fn slower_reaction_raises_gain() {
        let rows = reaction_table(5, 0.9, &[1, 2, 5, 10]).unwrap();
        for pair in rows.windows(2) {
            assert!(pair[1].relative_gain >= pair[0].relative_gain);
        }
    }

    #[test]
    fn malicious_degradation_is_monotone() {
        let rows = malicious_table(10, &[64, 16, 4, 1]).unwrap();
        for pair in rows.windows(2) {
            assert!(
                pair[1].remaining_fraction <= pair[0].remaining_fraction + 1e-9,
                "smaller W_mal must hurt more: {pair:?}"
            );
        }
    }

    #[test]
    fn myopia_table_shows_degradation() {
        let rows = myopia_table(&[3, 5]).unwrap();
        for row in &rows {
            assert!(row.myopic_windows.1 < row.w_star);
            assert!(row.welfare_ratio < 1.0);
        }
    }
}
