//! Nash equilibria of the repeated game and their refinement
//! (paper Section V.A–V.B, Theorems 1–2).
//!
//! Theorem 2: every uniform profile `(W_c, …, W_c)` with
//! `W_c⁰ ≤ W_c ≤ W_c*` is a NE of `G` under TFT — upward deviation is
//! immediately unprofitable (Lemma 4), downward deviation triggers the TFT
//! drop whose discounted punishment outweighs the short gain. The
//! refinement (fairness, social-welfare maximization, Pareto optimality)
//! singles out `(W_c*, …, W_c*)`.

use macgame_dcf::optimal;
use macgame_dcf::parallel::resolve_threads;
use serde::{Deserialize, Serialize};

use crate::deviation::{
    deviation_sweep_memo, deviator_stage, stage_memo, symmetric_stage, StageMemo,
};
use crate::error::GameError;
use crate::game::GameConfig;

pub use macgame_dcf::optimal::{EfficientNe, NeInterval};

/// The efficient NE `(W_c*, …, W_c*)` of the game: the exact argmax of the
/// symmetric utility over the strategy space.
///
/// # Errors
///
/// Propagates [`GameError::Model`] from the underlying optimizer.
pub fn efficient_ne(game: &GameConfig) -> Result<EfficientNe, GameError> {
    Ok(optimal::efficient_cw(game.player_count(), game.params(), game.utility(), game.w_max())?)
}

/// The paper's variant of `W_c*`: inverted from the continuous `τ_c*`
/// under `g ≫ e` (see `macgame_dcf::optimal::efficient_cw_from_tau_star`).
///
/// # Errors
///
/// Propagates [`GameError::Model`] from the underlying optimizer.
pub fn efficient_ne_tau_star(game: &GameConfig) -> Result<EfficientNe, GameError> {
    Ok(optimal::efficient_cw_from_tau_star(game.player_count(), game.params(), game.w_max())?)
}

/// The Theorem 2 interval `[W_c⁰, W_c*]` of symmetric NE.
///
/// # Errors
///
/// Propagates [`GameError::Model`] from the underlying optimizer.
pub fn ne_interval(game: &GameConfig) -> Result<NeInterval, GameError> {
    Ok(optimal::ne_interval(game.player_count(), game.params(), game.utility(), game.w_max())?)
}

/// Result of checking whether a uniform profile is a NE under TFT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeCheck {
    /// The common window checked.
    pub window: u32,
    /// Whether no unilateral deviation is profitable.
    pub is_ne: bool,
    /// The most profitable deviation found, with its discounted gain
    /// (present even when unprofitable, for diagnostics).
    pub best_deviation: Option<(u32, f64)>,
}

/// Default relative tolerance for [`check_symmetric_ne`]: deviations whose
/// gain is below this fraction of the compliant payoff do not disqualify a
/// profile (ε-equilibrium semantics; see below).
pub const DEFAULT_NE_EPSILON: f64 = 1e-5;

/// Checks Theorem 2's NE property for the uniform profile `(w, …, w)` by
/// explicit unilateral-deviation search.
///
/// Downward deviations `w' < w` are priced with the TFT punishment
/// (deviator enjoys `reaction_stages` stages, then everyone sits at `w'`);
/// upward deviations `w' > w` are priced the same way (the deviator is
/// disfavored immediately, Lemma 4, and TFT would pull it back — we charge
/// only the immediate loss, which already suffices).
///
/// `epsilon` makes this an **ε-equilibrium check**: a deviation only
/// disqualifies `w` if its discounted gain exceeds `epsilon` × the
/// compliant payoff. This is necessary because the strategy space is
/// discrete and the paper's own Figures 2–3 observation — "CW values near
/// `W_c*` yield almost the same global and local payoff" — means a
/// one-step deviation from the integer `W_c*` can eke out a vanishing gain
/// that the continuous theory rounds away. Use
/// [`DEFAULT_NE_EPSILON`] unless you study that effect itself.
///
/// # Errors
///
/// Returns [`GameError::InvalidConfig`] for `w` outside the strategy space
/// or a negative `epsilon`; propagates solver failures.
pub fn check_symmetric_ne(
    game: &GameConfig,
    w: u32,
    reaction_stages: u32,
    epsilon: f64,
) -> Result<NeCheck, GameError> {
    check_symmetric_ne_memo(game, w, reaction_stages, epsilon, None)
}

/// [`check_symmetric_ne`] with an optional [`StageMemo`] (from
/// [`crate::deviation::stage_memo`], covering at least `1..=w`).
/// Memoized stages and bisection roots equal what the direct computations
/// return, so the check is bitwise-identical with and without the memo.
fn check_symmetric_ne_memo(
    game: &GameConfig,
    w: u32,
    reaction_stages: u32,
    epsilon: f64,
    memo: Option<&StageMemo>,
) -> Result<NeCheck, GameError> {
    if epsilon < 0.0 {
        return Err(GameError::InvalidConfig("epsilon must be non-negative".into()));
    }
    if w == 0 || w > game.w_max() {
        return Err(GameError::InvalidConfig(format!(
            "window {w} outside strategy space [1, {}]",
            game.w_max()
        )));
    }
    // A NE candidate must first be individually rational (non-negative
    // payoff; Theorem 2 excludes W_c < W_c⁰).
    let at_w = match memo {
        Some(m) => m.stages()[w as usize],
        None => symmetric_stage(game, w)?,
    };
    if at_w < 0.0 {
        return Ok(NeCheck { window: w, is_ne: false, best_deviation: None });
    }
    let t = game.stage_duration().value();
    let delta = game.discount();
    let compliant_total = t * at_w / (1.0 - delta);

    let mut best: Option<(u32, f64)> = None;
    // Downward deviations: full TFT-punishment pricing. Batched as a
    // serial warm-chained sweep (threads = 1): each one-deviator solve is
    // seeded from its neighbor's solution, and callers such as
    // [`scan_ne_interval`] parallelize across candidate windows instead.
    // The sweep covers w_s ∈ [1, w]; w_s = w is compliance, not a
    // deviation, so it is skipped.
    if w > 1 {
        for outcome in deviation_sweep_memo(game, w, reaction_stages, delta, 1, memo)? {
            if outcome.w_s >= w {
                continue;
            }
            let gain = outcome.deviant_payoff - compliant_total;
            if best.map_or(true, |(_, g)| gain > g) {
                best = Some((outcome.w_s, gain));
            }
        }
    }
    // Upward deviations: the deviator's stage payoff drops immediately and
    // stays no better after everyone is back at w; price one deviated stage.
    let probe_ups: Vec<u32> = [w + 1, w.saturating_mul(2), game.w_max()]
        .into_iter()
        .filter(|&x| x > w && x <= game.w_max())
        .collect();
    for w_dev in probe_ups {
        let stage = deviator_stage(game, w, w_dev)?;
        let gain = t * (stage.deviator - at_w); // one stage of difference
        if best.map_or(true, |(_, g)| gain > g) {
            best = Some((w_dev, gain));
        }
    }
    let is_ne = best.map_or(true, |(_, g)| g <= epsilon * compliant_total.abs().max(1.0));
    Ok(NeCheck { window: w, is_ne, best_deviation: best })
}

/// Runs [`check_symmetric_ne`] for every window in `lo..=hi` — the
/// explicit-verification scan behind Table II/III style NE intervals —
/// fanning the independent checks over `threads` workers (`0` = auto from
/// `MACGAME_THREADS`). Each check is a pure function of its window, so the
/// returned vector is identical for every thread count.
///
/// # Errors
///
/// Returns [`GameError::InvalidConfig`] for an empty or out-of-space
/// range; propagates the first [`check_symmetric_ne`] error in window
/// order.
pub fn scan_ne_interval(
    game: &GameConfig,
    lo: u32,
    hi: u32,
    reaction_stages: u32,
    epsilon: f64,
    threads: usize,
) -> Result<Vec<NeCheck>, GameError> {
    if lo == 0 || hi < lo || hi > game.w_max() {
        return Err(GameError::InvalidConfig(format!(
            "scan range [{lo}, {hi}] outside strategy space [1, {}]",
            game.w_max()
        )));
    }
    // One bisection per window for the whole scan; every check then reads
    // its compliant and post-punishment stages from the shared memo, and
    // the per-check deviation sweeps reuse the memoized bisection roots
    // for their homogeneous cold starts.
    let memo = stage_memo(game, hi, threads)?;
    let windows: Vec<u32> = (lo..=hi).collect();
    let checks: Vec<Result<NeCheck, GameError>> =
        rayon::map_in_order(windows, resolve_threads(threads), |w| {
            check_symmetric_ne_memo(game, w, reaction_stages, epsilon, Some(&memo))
        });
    checks.into_iter().collect()
}

/// Which refinement criteria a symmetric NE satisfies (Section V.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Refinement {
    /// The window assessed.
    pub window: u32,
    /// TFT equalizes payoffs, so every symmetric NE is fair.
    pub fair: bool,
    /// Whether this window maximizes the social welfare among the NE.
    pub social_welfare_maximal: bool,
    /// Whether this window is Pareto-optimal among the NE.
    pub pareto_optimal: bool,
}

/// Applies the Section V.B refinement to every NE in the Theorem 2
/// interval; exactly one (the efficient NE) survives all criteria.
///
/// # Errors
///
/// Propagates solver failures.
pub fn refine(game: &GameConfig, interval: NeInterval) -> Result<Vec<Refinement>, GameError> {
    let mut utilities = Vec::new();
    for w in interval.lower..=interval.upper {
        utilities.push((w, symmetric_stage(game, w)?));
    }
    let best =
        utilities.iter().map(|&(_, u)| u).fold(f64::NEG_INFINITY, f64::max);
    Ok(utilities
        .into_iter()
        .map(|(window, u)| {
            // In the symmetric game, welfare = n·u, so welfare-maximal and
            // Pareto-optimal coincide: any other uniform NE changes every
            // player's payoff in the same direction.
            let maximal = (u - best).abs() <= f64::EPSILON * best.abs().max(1.0);
            Refinement {
                window,
                fair: true,
                social_welfare_maximal: maximal,
                pareto_optimal: maximal,
            }
        })
        .collect())
}


/// Fixed point of *myopic* best-response dynamics, and its welfare cost.
///
/// The Discussion section reconciles the paper with Cagalj et al.'s
/// "selfish CSMA/CA leads to collapse": short-sighted players play the
/// stage best response instead of TFT, and the resulting equilibrium sits
/// at small windows with degraded welfare. This function computes that
/// fixed point by iterating per-player stage best responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MyopicOutcome {
    /// The profile the dynamics reached.
    pub profile: Vec<u32>,
    /// Whether it is a fixed point (every player best-responding).
    pub converged: bool,
    /// Rounds of sequential best response performed.
    pub rounds: usize,
    /// Social welfare rate (per µs) at the myopic profile.
    pub myopic_welfare: f64,
    /// Social welfare rate at the TFT-sustained efficient NE.
    pub efficient_welfare: f64,
}

impl MyopicOutcome {
    /// Welfare surviving myopia: `myopic / efficient` (the paper's story
    /// in one number; < 1 whenever myopia hurts).
    #[must_use]
    pub fn welfare_ratio(&self) -> f64 {
        self.myopic_welfare / self.efficient_welfare
    }
}

/// Iterates sequential stage best responses from `start` until a fixed
/// point or `max_rounds` sweeps, then prices the outcome against the
/// efficient NE.
///
/// # Errors
///
/// Returns [`GameError::InvalidConfig`] for an empty or out-of-space
/// start profile; propagates solver failures.
pub fn myopic_dynamics(
    game: &GameConfig,
    start: &[u32],
    max_rounds: usize,
) -> Result<MyopicOutcome, GameError> {
    use macgame_dcf::fixedpoint::{solve, SolveOptions};
    use macgame_dcf::utility::{all_utilities, node_utility};
    let n = game.player_count();
    if start.len() != n {
        return Err(GameError::InvalidConfig(format!(
            "{} windows for {} players",
            start.len(),
            n
        )));
    }
    if start.iter().any(|&w| w == 0 || w > game.w_max()) {
        return Err(GameError::InvalidConfig("start profile outside strategy space".into()));
    }
    let utility_of = |player: usize, profile: &[u32]| -> Result<f64, GameError> {
        let eq = solve(profile, game.params(), SolveOptions::default())?;
        Ok(node_utility(player, &eq.taus, &eq.collision_probs, game.params(), game.utility()))
    };
    // Per-player best response by bracket + local sweep (the utility in
    // own W against a fixed field is unimodal).
    let best_response = |player: usize, profile: &[u32]| -> Result<u32, GameError> {
        let mut work = profile.to_vec();
        let u_at = |w: u32, work: &mut Vec<u32>| -> Result<f64, GameError> {
            work[player] = w;
            utility_of(player, work)
        };
        let w_max = game.w_max();
        let mut hi = 2u32;
        let mut prev = u_at(1, &mut work)?;
        while hi <= w_max {
            let cur = u_at(hi, &mut work)?;
            if cur < prev {
                break;
            }
            prev = cur;
            hi = hi.saturating_mul(2);
        }
        let (mut lo, mut hi) = (1u32, hi.min(w_max));
        while hi - lo > 8 {
            let m1 = lo + (hi - lo) / 3;
            let m2 = hi - (hi - lo) / 3;
            if u_at(m1, &mut work)? < u_at(m2, &mut work)? {
                lo = m1 + 1;
            } else {
                hi = m2 - 1;
            }
        }
        let mut best = (lo, f64::NEG_INFINITY);
        for w in lo.saturating_sub(4).max(1)..=(hi + 4).min(w_max) {
            let u = u_at(w, &mut work)?;
            if u > best.1 {
                best = (w, u);
            }
        }
        Ok(best.0)
    };

    let mut profile = start.to_vec();
    let mut converged = false;
    let mut rounds = 0usize;
    for round in 0..max_rounds {
        rounds = round + 1;
        let mut changed = false;
        for player in 0..n {
            let br = best_response(player, &profile)?;
            if br != profile[player] {
                profile[player] = br;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    let eq = macgame_dcf::fixedpoint::solve(
        &profile,
        game.params(),
        macgame_dcf::fixedpoint::SolveOptions::default(),
    )?;
    let myopic_welfare: f64 =
        all_utilities(&eq.taus, &eq.collision_probs, game.params(), game.utility())
            .iter()
            .sum();
    let ne = efficient_ne(game)?;
    let efficient_welfare = n as f64 * ne.utility;
    Ok(MyopicOutcome { profile, converged, rounds, myopic_welfare, efficient_welfare })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game(n: usize) -> GameConfig {
        GameConfig::builder(n).build().unwrap()
    }

    #[test]
    fn efficient_ne_is_in_interval() {
        let g = game(5);
        let ne = efficient_ne(&g).unwrap();
        let interval = ne_interval(&g).unwrap();
        assert_eq!(interval.upper, ne.window);
        assert!(interval.lower <= interval.upper);
    }

    #[test]
    fn efficient_window_is_ne() {
        let g = game(5);
        let ne = efficient_ne(&g).unwrap();
        let check = check_symmetric_ne(&g, ne.window, 1, DEFAULT_NE_EPSILON).unwrap();
        assert!(check.is_ne, "best deviation: {:?}", check.best_deviation);
    }

    #[test]
    fn interior_interval_windows_are_ne() {
        let g = game(5);
        let interval = ne_interval(&g).unwrap();
        let mid = (interval.lower + interval.upper) / 2;
        let check = check_symmetric_ne(&g, mid, 1, DEFAULT_NE_EPSILON).unwrap();
        assert!(check.is_ne, "W = {mid}, best deviation: {:?}", check.best_deviation);
    }

    #[test]
    fn far_above_efficient_is_not_ne() {
        // Way above W_c*, dropping to W_c* is profitable even with TFT
        // punishment (the punished tail *is* the efficient point).
        let g = game(5);
        let ne = efficient_ne(&g).unwrap();
        let check = check_symmetric_ne(&g, ne.window * 4, 1, DEFAULT_NE_EPSILON).unwrap();
        assert!(!check.is_ne);
        let (w_dev, gain) = check.best_deviation.unwrap();
        assert!(w_dev < ne.window * 4);
        assert!(gain > 0.0);
    }

    #[test]
    fn refinement_selects_unique_efficient_ne() {
        let g = game(5);
        let interval = ne_interval(&g).unwrap();
        let refinements = refine(&g, interval).unwrap();
        let survivors: Vec<_> =
            refinements.iter().filter(|r| r.pareto_optimal && r.social_welfare_maximal).collect();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].window, interval.upper);
        assert!(refinements.iter().all(|r| r.fair));
    }

    #[test]
    fn tau_star_variant_close_to_exact() {
        let g = game(5);
        let exact = efficient_ne(&g).unwrap().window;
        let variant = efficient_ne_tau_star(&g).unwrap().window;
        assert!(exact.abs_diff(variant) <= 6, "exact {exact} vs τ*-inversion {variant}");
    }

    #[test]
    fn scan_confirms_theorem2_interval_windows() {
        let g = game(5);
        let interval = ne_interval(&g).unwrap();
        let lo = interval.lower.max(1);
        let hi = interval.upper;
        let checks = scan_ne_interval(&g, lo, hi, 1, DEFAULT_NE_EPSILON, 0).unwrap();
        assert_eq!(checks.len(), (hi - lo + 1) as usize);
        for c in &checks {
            assert!(c.is_ne, "W = {} in [W_c⁰, W_c*] must be a NE", c.window);
        }
    }

    #[test]
    fn scan_matches_individual_checks() {
        let g = game(4);
        let checks = scan_ne_interval(&g, 30, 40, 1, DEFAULT_NE_EPSILON, 1).unwrap();
        for c in &checks {
            let single = check_symmetric_ne(&g, c.window, 1, DEFAULT_NE_EPSILON).unwrap();
            assert_eq!(c, &single);
        }
    }

    #[test]
    fn scan_rejects_bad_ranges() {
        let g = game(3);
        assert!(scan_ne_interval(&g, 0, 5, 1, DEFAULT_NE_EPSILON, 0).is_err());
        assert!(scan_ne_interval(&g, 10, 5, 1, DEFAULT_NE_EPSILON, 0).is_err());
        assert!(scan_ne_interval(&g, 1, g.w_max() + 1, 1, DEFAULT_NE_EPSILON, 0).is_err());
    }

    #[test]
    fn check_rejects_out_of_space_window() {
        let g = game(3);
        assert!(check_symmetric_ne(&g, 0, 1, DEFAULT_NE_EPSILON).is_err());
        assert!(check_symmetric_ne(&g, g.w_max() + 1, 1, DEFAULT_NE_EPSILON).is_err());
        assert!(check_symmetric_ne(&g, 8, 1, -0.1).is_err());
    }

    #[test]
    fn negative_payoff_windows_are_not_ne() {
        // With a big attempt cost, tiny windows yield negative payoff for
        // n = 20 and cannot be equilibria (Theorem 2's lower cut).
        let g = GameConfig::builder(20)
            .utility(macgame_dcf::UtilityParams { gain: 1.0, cost: 0.5 })
            .build()
            .unwrap();
        let check = check_symmetric_ne(&g, 1, 1, DEFAULT_NE_EPSILON).unwrap();
        assert!(!check.is_ne);
    }

    #[test]
    fn myopic_dynamics_collapse_to_small_windows() {
        // The Discussion-section story: stage best responders end far below
        // the efficient window, with visibly degraded welfare.
        let g = game(5);
        let ne = efficient_ne(&g).unwrap();
        let out = myopic_dynamics(&g, &[ne.window; 5], 12).unwrap();
        assert!(out.converged, "dynamics should reach a fixed point");
        assert!(
            out.profile.iter().all(|&w| w < ne.window / 2),
            "myopic profile {:?} vs W* {}",
            out.profile,
            ne.window
        );
        assert!(out.welfare_ratio() < 0.95, "ratio {}", out.welfare_ratio());
        assert!(out.welfare_ratio() > 0.0);
    }

    #[test]
    fn myopic_fixed_point_is_start_independent() {
        let g = game(4);
        let a = myopic_dynamics(&g, &[10; 4], 12).unwrap();
        let b = myopic_dynamics(&g, &[500; 4], 12).unwrap();
        // Same fixed point (up to the flat-top tolerance of the searches).
        for (x, y) in a.profile.iter().zip(&b.profile) {
            assert!(x.abs_diff(*y) <= 2, "{:?} vs {:?}", a.profile, b.profile);
        }
    }

    #[test]
    fn myopic_validation() {
        let g = game(3);
        assert!(myopic_dynamics(&g, &[10, 10], 5).is_err());
        assert!(myopic_dynamics(&g, &[0, 10, 10], 5).is_err());
    }
}
