//! End-to-end coverage of the extension features: generalized games,
//! rate control, tournaments, noisy multi-hop convergence, the spatial
//! repeated game, hill-climbing adaptation, and fairness metrics.

use macgame::dcf::fairness::{jain_index, min_max_ratio};
use macgame::dcf::{AccessMode, DcfParams, MicroSecs, UtilityParams};
use macgame::game::equilibrium::efficient_ne;
use macgame::game::evaluator::SimulatedEvaluator;
use macgame::game::ratecontrol::{rate_game, rate_set_80211b};
use macgame::game::strategy::{HillClimb, Strategy, Tft};
use macgame::game::{GameConfig, RepeatedGame};
use macgame::multihop::convergence::{noisy_converge, GraphReaction};
use macgame::multihop::repeated::SpatialRepeatedGame;
use macgame::multihop::spatialsim::SpatialConfig;
use macgame::multihop::Topology;

/// TFT play on the simulator ends with fair measured payoffs (the paper's
/// fairness claim, quantified with the Jain index).
#[test]
fn tft_play_is_jain_fair() {
    let game = GameConfig::builder(5)
        .stage_duration(MicroSecs::from_seconds(30.0))
        .build()
        .unwrap();
    let w_star = efficient_ne(&game).unwrap().window;
    let players: Vec<Box<dyn Strategy>> =
        (0..5).map(|_| Box::new(Tft::new(w_star)) as Box<dyn Strategy>).collect();
    let evaluator =
        Box::new(SimulatedEvaluator::new(game.clone(), 8).unwrap().with_exact_observation(true));
    let mut rg = RepeatedGame::new(game, players, evaluator).unwrap();
    rg.play(3).unwrap();
    let last = rg.history().last().unwrap();
    let idx = jain_index(&last.utilities);
    assert!(idx > 0.98, "Jain index {idx}");
    assert!(min_max_ratio(&last.utilities) > 0.8);
}

/// The rate-control game composes with the generic framework end-to-end:
/// best-response dynamics from any profile find the all-fast NE.
#[test]
fn rate_game_dynamics_from_mixed_starts() {
    let params = DcfParams::builder().access_mode(AccessMode::RtsCts).build().unwrap();
    let game = rate_game(6, 48, &params, &UtilityParams::default(), rate_set_80211b()).unwrap();
    for start in [[0usize, 1, 2, 3, 0, 1], [3, 3, 3, 3, 3, 3], [2, 0, 2, 0, 2, 0]] {
        let out = game.best_response_dynamics(&start, 10);
        assert!(out.converged);
        assert!(out.profile.iter().all(|&a| a == 3), "from {start:?} got {:?}", out.profile);
    }
}

/// Noisy multi-hop observation: plain TFT ratchets on a random geometric
/// graph while GTFT holds — the spatial version of the GTFT motivation.
#[test]
fn gtft_beats_tft_under_noise_on_random_graphs() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
    let positions: Vec<macgame::multihop::Point> = (0..25)
        .map(|_| {
            macgame::multihop::Point::new(rng.gen_range(0.0..600.0), rng.gen_range(0.0..600.0))
        })
        .collect();
    let topo = Topology::from_positions(&positions, 250.0);
    let initial = vec![40u32; 25];
    let tft = noisy_converge(&topo, &initial, GraphReaction::Tft, 0.2, 30, 5).unwrap();
    let gtft = noisy_converge(
        &topo,
        &initial,
        GraphReaction::GenerousTft { memory: 4, tolerance: 0.75 },
        0.2,
        30,
        5,
    )
    .unwrap();
    let tft_min = *tft.final_windows().iter().min().unwrap();
    let gtft_min = *gtft.final_windows().iter().min().unwrap();
    assert!(
        gtft_min > tft_min,
        "GTFT min {gtft_min} should stay above TFT's ratcheted {tft_min}"
    );
    assert!(gtft_min >= 35);
}

/// The spatial repeated game driven end-to-end from local optima: the
/// converged window matches the static min-propagation prediction.
#[test]
fn spatial_repeated_game_matches_static_prediction() {
    let config = SpatialConfig { mobility: None, ..SpatialConfig::paper(7) };
    let n = 30;
    let engine =
        macgame::multihop::SpatialEngine::new(n, &vec![64; n], config.clone()).unwrap();
    let topo = engine.topology().clone();
    let local = macgame::multihop::local_optimal_windows(
        &topo,
        &config.params,
        &config.utility,
        2048,
        macgame::multihop::LocalRule::ExactArgmax,
    )
    .unwrap();
    let static_trace = macgame::multihop::tft_converge(&topo, &local).unwrap();
    let mut game =
        SpatialRepeatedGame::new(local, config, MicroSecs::from_seconds(2.0)).unwrap();
    let outcome = game.play_until_converged(20, 2).unwrap();
    // Static topology: the live game must land exactly where the
    // min-propagation analysis says (per component; compare the minima).
    let live_min = *game.windows().iter().min().unwrap();
    let static_min = *static_trace.final_windows.iter().min().unwrap();
    assert_eq!(live_min, static_min);
    assert!(outcome.stages_played <= 20);
}

/// A hill climber and a TFT crowd coexist: the adapter settles and the
/// network does not collapse.
#[test]
fn hill_climber_among_tft_settles() {
    let game = GameConfig::builder(4)
        .stage_duration(MicroSecs::from_seconds(10.0))
        .build()
        .unwrap();
    let w_star = efficient_ne(&game).unwrap().window;
    let players: Vec<Box<dyn Strategy>> = vec![
        Box::new(HillClimb::try_new(w_star, 8).unwrap()),
        Box::new(Tft::new(w_star)),
        Box::new(Tft::new(w_star)),
        Box::new(Tft::new(w_star)),
    ];
    let evaluator =
        Box::new(SimulatedEvaluator::new(game.clone(), 2).unwrap().with_exact_observation(true));
    let mut rg = RepeatedGame::new(game, players, evaluator).unwrap();
    rg.play(12).unwrap();
    let final_windows = &rg.history().last().unwrap().windows;
    // Nobody ended at a pathological extreme.
    for &w in final_windows {
        assert!((1..=4 * w_star).contains(&w), "windows {final_windows:?}");
    }
    // And the cell still carries traffic.
    let last_utilities = &rg.history().last().unwrap().utilities;
    assert!(last_utilities.iter().sum::<f64>() > 0.0);
}
