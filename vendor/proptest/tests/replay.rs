//! End-to-end check that persisted regressions replay before novel cases.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static RUNS: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    fn counted(w in 1u32..10) {
        RUNS.fetch_add(1, Ordering::SeqCst);
        prop_assert!((1..10).contains(&w));
    }
}

#[test]
fn replays_persisted_cases_before_novel_ones() {
    counted();
    // The checked-in sidecar holds 2 `cc` lines; with cases = 3 the body
    // must run exactly 2 + 3 times.
    assert_eq!(RUNS.load(Ordering::SeqCst), 5);
}
