//! Benchmarks the Figure 3 pipeline (RTS/CTS) and the shape extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use macgame_bench::figures::figure_series;
use macgame_dcf::AccessMode;
use std::hint::black_box;

fn bench_curve(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/full_series");
    group.sample_size(10);
    for n in [5usize, 20, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| figure_series(black_box(n), AccessMode::RtsCts, 2048).unwrap());
        });
    }
    group.finish();
}

fn bench_shape(c: &mut Criterion) {
    let series = figure_series(20, AccessMode::RtsCts, 2048).unwrap();
    c.bench_function("fig3/shape_extraction", |b| {
        b.iter(|| black_box(series.shape()));
    });
}

criterion_group!(benches, bench_curve, bench_shape);
criterion_main!(benches);
