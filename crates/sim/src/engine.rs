//! The single-hop slot-level simulation engine.
//!
//! Implements the slotted contention process that the analytical model
//! abstracts: in each virtual slot, every node whose backoff counter is
//! zero transmits; zero transmitters make an idle slot of length σ, one
//! makes a success of length `T_s`, several make a collision of length
//! `T_c`. Non-transmitting nodes step their counters once per slot, in the
//! Bianchi slot abstraction.
//!
//! The engine persists across game stages: [`Engine::set_windows`] applies
//! a new strategy profile and [`Engine::run_slots`]/[`Engine::run_for`]
//! measure one interval.

use macgame_dcf::MicroSecs;
use macgame_faults::ChannelFaults;
use macgame_telemetry as telemetry;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::delay::DelayTracker;
use crate::node::Node;
use crate::report::{ChannelCounts, StageReport};
use crate::traffic::TrafficModel;
use crate::SimError;

/// Outcome of one simulated slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotOutcome {
    /// Nobody transmitted.
    Idle,
    /// Exactly one node transmitted successfully.
    Success {
        /// The transmitting node.
        node: usize,
    },
    /// Two or more nodes collided.
    Collision {
        /// Number of simultaneous transmitters.
        transmitters: usize,
    },
    /// Fault injection only: a lone transmission was corrupted by channel
    /// noise. The sender backs off as if it had collided; the channel is
    /// occupied for a full success duration.
    ChannelError {
        /// The transmitting node whose frame was lost.
        node: usize,
    },
    /// Fault injection only: a collision was *captured* — one frame was
    /// received despite the overlap. The winner behaves as on success,
    /// every other transmitter backs off as on collision.
    Capture {
        /// The node whose frame survived.
        winner: usize,
        /// Number of simultaneous transmitters (including the winner).
        transmitters: usize,
    },
}

/// Private state of the slot-outcome fault injector: its configuration,
/// its own ChaCha8 stream (never the engine's backoff RNG), and counts of
/// what it has injected so far.
#[derive(Debug, Clone)]
struct FaultState {
    config: ChannelFaults,
    rng: ChaCha8Rng,
    errors: u64,
    captures: u64,
}

/// The single-hop DCF simulation engine.
///
/// # Examples
///
/// ```
/// use macgame_sim::{Engine, SimConfig};
///
/// let config = SimConfig::builder().symmetric(5, 76).seed(1).build()?;
/// let mut engine = Engine::new(&config);
/// let report = engine.run_slots(200_000);
/// // Per-node τ̂ should approximate the analytic fixed point (~0.0226).
/// assert!((report.tau_hat(0) - 0.0226).abs() < 0.004);
/// # Ok::<(), macgame_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    config: SimConfig,
    nodes: Vec<Node>,
    rng: ChaCha8Rng,
    clock: MicroSecs,
    total_slots: u64,
    transmit_buffer: Vec<usize>,
    delay: DelayTracker,
    queues: Vec<u64>,
    arrivals: Vec<u64>,
    last_slot_duration: MicroSecs,
    faults: Option<FaultState>,
    /// Per-node AIFS defer distances `d_i` (slots of consecutive idle
    /// beyond the baseline a node must observe before contending). All
    /// zeros for legacy configs, making the EDCA gate a no-op.
    defers: Vec<u32>,
    /// Per-node TXOP burst lengths in frames. All ones for legacy
    /// configs, making every success a plain `T_s`.
    txop: Vec<u32>,
    /// Consecutive idle slots observed so far (reset by any busy slot):
    /// the shared state the AIFS gate compares `d_i` against.
    idle_streak: u64,
}

impl Engine {
    /// Creates an engine from a configuration; per-node backoff states are
    /// seeded deterministically from `config.seed()`.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed());
        let m = config.params().max_backoff_stage();
        let nodes = config.windows().iter().map(|&w| Node::new(w, m, &mut rng)).collect();
        let delay = DelayTracker::new(config.node_count());
        let n = config.node_count();
        Engine {
            config: config.clone(),
            nodes,
            rng,
            clock: MicroSecs::ZERO,
            total_slots: 0,
            transmit_buffer: Vec::new(),
            delay,
            queues: vec![0; n],
            arrivals: vec![0; n],
            last_slot_duration: config.params().sigma(),
            faults: None,
            defers: config.aifs_defers(),
            txop: config.txop_bursts(),
            idle_streak: 0,
        }
    }

    /// Creates an engine with slot-outcome fault injection attached.
    ///
    /// The injector draws from its own ChaCha8 stream derived from
    /// `faults.seed` — never from the engine's backoff RNG — so attaching
    /// it cannot perturb the contention process except through the faults
    /// it actually injects. A no-op configuration
    /// ([`ChannelFaults::is_noop`]) attaches nothing at all: the engine is
    /// bitwise identical to [`Engine::new`] with the same config.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if either fault rate is not a
    /// probability.
    pub fn with_faults(config: &SimConfig, faults: ChannelFaults) -> Result<Self, SimError> {
        // Re-validate: the fields are public, so a hand-rolled struct may
        // bypass `ChannelFaults::new`.
        let faults = ChannelFaults::new(faults.error_rate, faults.capture_prob, faults.seed)
            .map_err(|e| SimError::InvalidConfig(e.to_string()))?;
        let mut engine = Engine::new(config);
        if !faults.is_noop() {
            engine.faults = Some(FaultState {
                rng: macgame_faults::rng::stream_rng(faults.seed, "sim.channel", 0),
                config: faults,
                errors: 0,
                captures: 0,
            });
        }
        Ok(engine)
    }

    /// The attached fault configuration, if any. `None` both for plain
    /// engines and for no-op fault configs.
    #[must_use]
    pub fn channel_faults(&self) -> Option<&ChannelFaults> {
        self.faults.as_ref().map(|f| &f.config)
    }

    /// Number of lone transmissions corrupted by injected channel errors
    /// so far (0 without fault injection).
    #[must_use]
    pub fn channel_error_count(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.errors)
    }

    /// Number of collisions resolved by injected capture so far (0
    /// without fault injection).
    #[must_use]
    pub fn capture_count(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.captures)
    }

    /// Current queue length of `node` (always 0 under saturated traffic —
    /// the backlog is conceptually infinite).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn queue_len(&self, node: usize) -> u64 {
        self.queues[node]
    }

    /// Total packet arrivals generated for `node` so far (0 under
    /// saturated traffic).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn total_arrivals(&self, node: usize) -> u64 {
        self.arrivals[node]
    }

    /// Number of simulated nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total channel time simulated so far.
    #[must_use]
    pub fn clock(&self) -> MicroSecs {
        self.clock
    }

    /// Total slots simulated so far.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Current window profile.
    #[must_use]
    pub fn windows(&self) -> Vec<u32> {
        self.nodes.iter().map(Node::window).collect()
    }

    /// Applies a new window profile (one entry per node), e.g. at a game
    /// stage boundary.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the profile length does not
    /// match the node count or contains a zero window.
    pub fn set_windows(&mut self, windows: &[u32]) -> Result<(), SimError> {
        if windows.len() != self.nodes.len() {
            return Err(SimError::InvalidConfig(format!(
                "profile has {} entries for {} nodes",
                windows.len(),
                self.nodes.len()
            )));
        }
        if windows.contains(&0) {
            return Err(SimError::InvalidConfig("contention windows must be at least 1".into()));
        }
        for (node, &w) in self.nodes.iter_mut().zip(windows) {
            if node.window() != w {
                node.set_window(w, &mut self.rng);
            }
        }
        Ok(())
    }

    /// Sets one node's window, leaving the rest untouched.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `node` is out of range or
    /// `window` is zero.
    pub fn set_window(&mut self, node: usize, window: u32) -> Result<(), SimError> {
        if node >= self.nodes.len() {
            return Err(SimError::InvalidConfig(format!("node {node} out of range")));
        }
        if window == 0 {
            return Err(SimError::InvalidConfig("contention windows must be at least 1".into()));
        }
        self.nodes[node].set_window(window, &mut self.rng);
        Ok(())
    }

    /// Simulates one slot and returns its outcome.
    pub fn step(&mut self) -> SlotOutcome {
        // Packet arrivals (Poisson mode): credited at slot boundaries,
        // using the previous slot's duration as the arrival window. A
        // packet reaching an empty queue re-arms the node with a fresh
        // stage-0 backoff (802.11 post-idle behaviour).
        if let model @ TrafficModel::Poisson { .. } = self.config.traffic() {
            let dt = self.last_slot_duration.value();
            for i in 0..self.nodes.len() {
                let arrived = model.sample_arrivals(dt, &mut self.rng);
                if arrived > 0 {
                    let was_empty = self.queues[i] == 0;
                    self.arrivals[i] += arrived;
                    self.queues[i] += arrived;
                    if was_empty {
                        let w = self.nodes[i].window();
                        self.nodes[i].set_window(w, &mut self.rng);
                    }
                }
            }
        }
        self.transmit_buffer.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            // EDCA AIFS gate: a deferring node contends only once it has
            // observed at least `d_i` consecutive idle slots. With all
            // defers zero (legacy DCF) the comparison is always true.
            if self.idle_streak >= u64::from(self.defers[i])
                && node.wants_to_transmit()
                && (self.config.traffic().is_saturated() || self.queues[i] > 0)
            {
                self.transmit_buffer.push(i);
            }
        }
        let timings = self.config.params().timings();
        let mut outcome = match self.transmit_buffer.len() {
            0 => SlotOutcome::Idle,
            1 => SlotOutcome::Success { node: self.transmit_buffer[0] },
            k => SlotOutcome::Collision { transmitters: k },
        };
        // Fault injection rewrites the ideal outcome before anything is
        // resolved. Decision draws are guarded by `rate > 0.0` so each
        // fault stream advances only for the faults it can inject.
        if let Some(faults) = self.faults.as_mut() {
            match outcome {
                SlotOutcome::Success { node }
                    if faults.config.error_rate > 0.0
                        && faults.rng.gen_bool(faults.config.error_rate) =>
                {
                    faults.errors += 1;
                    telemetry::counter("sim.engine.channel_errors", 1);
                    outcome = SlotOutcome::ChannelError { node };
                }
                SlotOutcome::Collision { transmitters }
                    if faults.config.capture_prob > 0.0
                        && faults.rng.gen_bool(faults.config.capture_prob) =>
                {
                    faults.captures += 1;
                    telemetry::counter("sim.engine.captures", 1);
                    let winner = self.transmit_buffer[faults.rng.gen_range(0..transmitters)];
                    outcome = SlotOutcome::Capture { winner, transmitters };
                }
                _ => {}
            }
        }
        // A successful access occupies the channel for its holder's TXOP
        // burst (plain `T_s` at the single-frame default). A corrupted
        // lone frame occupies a plain success duration only: the first
        // frame of the burst is lost, and with it the TXOP.
        let duration = match outcome {
            SlotOutcome::Idle => self.config.params().sigma(),
            SlotOutcome::Success { node } | SlotOutcome::Capture { winner: node, .. } => {
                self.config.params().txop_success_time(self.txop[node])
            }
            SlotOutcome::ChannelError { .. } => timings.success_time,
            SlotOutcome::Collision { .. } => timings.collision_time,
        };
        self.clock += duration;
        // Resolve transmitters first, then step everyone else's counter.
        match outcome {
            SlotOutcome::Idle => {}
            SlotOutcome::Success { node } | SlotOutcome::Capture { winner: node, .. } => {
                self.nodes[node].on_success(&mut self.rng);
                self.delay.record_success(node, self.total_slots);
                if !self.config.traffic().is_saturated() {
                    self.queues[node] -= 1;
                }
                if matches!(outcome, SlotOutcome::Capture { .. }) {
                    for idx in 0..self.transmit_buffer.len() {
                        let i = self.transmit_buffer[idx];
                        if i != node {
                            self.nodes[i].on_collision(&mut self.rng);
                        }
                    }
                }
            }
            SlotOutcome::ChannelError { node } => {
                self.nodes[node].on_collision(&mut self.rng);
            }
            SlotOutcome::Collision { .. } => {
                for idx in 0..self.transmit_buffer.len() {
                    let i = self.transmit_buffer[idx];
                    self.nodes[i].on_collision(&mut self.rng);
                }
            }
        }
        let saturated = self.config.traffic().is_saturated();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let active = saturated || self.queues[i] > 0;
            // The AIFS gate freezes a deferring node's backoff counter
            // too: the countdown only runs in slots the node was
            // eligible to contend in (802.11e AIFS semantics).
            let eligible = self.idle_streak >= u64::from(self.defers[i]);
            if active && eligible && !self.transmit_buffer.contains(&i) && !node.wants_to_transmit()
            {
                node.observe_slot();
            }
        }
        self.idle_streak =
            if matches!(outcome, SlotOutcome::Idle) { self.idle_streak + 1 } else { 0 };
        self.last_slot_duration = duration;
        self.total_slots += 1;
        outcome
    }

    /// Lifetime per-node service-interval statistics (slots between
    /// consecutive successes — the measured head-of-line access delay).
    #[must_use]
    pub fn delay_tracker(&self) -> &DelayTracker {
        &self.delay
    }

    /// Measured mean head-of-line access delay of `node` in channel time:
    /// mean service interval (slots) × mean observed slot length.
    /// `None` until the node has completed at least one interval.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn mean_access_delay(&self, node: usize) -> Option<MicroSecs> {
        let mean_slots = self.delay.mean_slots(node)?;
        if self.total_slots == 0 {
            return None;
        }
        let mean_slot = self.clock.value() / self.total_slots as f64;
        Some(MicroSecs::new(mean_slots * mean_slot))
    }

    /// Runs `slots` slots and reports the interval's measurements.
    #[must_use]
    pub fn run_slots(&mut self, slots: u64) -> StageReport {
        let _span = telemetry::span("sim.engine.run");
        let baseline: Vec<_> = self.nodes.iter().map(|n| *n.stats()).collect();
        let clock_start = self.clock;
        let mut channel = ChannelCounts::default();
        for _ in 0..slots {
            Self::count_outcome(&mut channel, self.step());
        }
        self.finish_report(&baseline, clock_start, channel)
    }

    /// Runs until at least `duration` of channel time elapses and reports
    /// the interval's measurements.
    #[must_use]
    pub fn run_for(&mut self, duration: MicroSecs) -> StageReport {
        let _span = telemetry::span("sim.engine.run");
        let baseline: Vec<_> = self.nodes.iter().map(|n| *n.stats()).collect();
        let clock_start = self.clock;
        let deadline = self.clock + duration;
        let mut channel = ChannelCounts::default();
        while self.clock < deadline {
            Self::count_outcome(&mut channel, self.step());
        }
        self.finish_report(&baseline, clock_start, channel)
    }

    /// Maps an outcome to the channel counters. Injected outcomes fold
    /// into the ideal categories by what the channel delivered: a capture
    /// delivered one frame (success), a channel error delivered none
    /// (collision) — so `ChannelCounts` keeps its shape and goldens.
    fn count_outcome(channel: &mut ChannelCounts, outcome: SlotOutcome) {
        match outcome {
            SlotOutcome::Idle => channel.idle += 1,
            SlotOutcome::Success { .. } | SlotOutcome::Capture { .. } => channel.success += 1,
            SlotOutcome::Collision { .. } | SlotOutcome::ChannelError { .. } => {
                channel.collision += 1
            }
        }
    }

    fn finish_report(
        &self,
        baseline: &[crate::node::NodeStats],
        clock_start: MicroSecs,
        channel: ChannelCounts,
    ) -> StageReport {
        telemetry::counter("sim.engine.runs", 1);
        telemetry::counter("sim.engine.slots", channel.total());
        telemetry::counter("sim.engine.collisions", channel.collision);
        telemetry::counter("sim.engine.successes", channel.success);
        StageReport {
            node_stats: self
                .nodes
                .iter()
                .zip(baseline)
                .map(|(n, b)| n.stats().delta_since(b))
                .collect(),
            channel,
            elapsed: self.clock - clock_start,
            windows: self.windows(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macgame_dcf::fixedpoint::solve_symmetric;
    use macgame_dcf::{AccessMode, DcfParams};

    fn engine(n: usize, w: u32, seed: u64) -> Engine {
        let config = SimConfig::builder().symmetric(n, w).seed(seed).build().unwrap();
        Engine::new(&config)
    }

    #[test]
    fn slots_partition_into_outcomes() {
        let mut e = engine(5, 32, 3);
        let r = e.run_slots(10_000);
        assert_eq!(r.channel.total(), 10_000);
        assert_eq!(e.total_slots(), 10_000);
    }

    #[test]
    fn attempts_equal_channel_events() {
        // Each success slot has exactly 1 attempting node; collisions ≥ 2.
        let mut e = engine(4, 16, 9);
        let r = e.run_slots(20_000);
        let successes: u64 = r.node_stats.iter().map(|s| s.successes).sum();
        let attempts: u64 = r.node_stats.iter().map(|s| s.attempts).sum();
        let collisions: u64 = r.node_stats.iter().map(|s| s.collisions).sum();
        assert_eq!(successes, r.channel.success);
        assert_eq!(attempts, successes + collisions);
        assert!(collisions >= 2 * r.channel.collision);
    }

    #[test]
    fn elapsed_matches_outcome_mix() {
        let p = DcfParams::default();
        let mut e = engine(3, 32, 1);
        let r = e.run_slots(5_000);
        let t = p.timings();
        let expect = r.channel.idle as f64 * p.sigma().value()
            + r.channel.success as f64 * t.success_time.value()
            + r.channel.collision as f64 * t.collision_time.value();
        assert!((r.elapsed.value() - expect).abs() < 1e-6);
    }

    #[test]
    fn deterministic_under_seed() {
        let r1 = engine(5, 64, 77).run_slots(5_000);
        let r2 = engine(5, 64, 77).run_slots(5_000);
        assert_eq!(r1, r2);
        let r3 = engine(5, 64, 78).run_slots(5_000);
        assert_ne!(r1, r3);
    }

    #[test]
    fn tau_hat_tracks_analytic_fixed_point() {
        let p = DcfParams::default();
        for &(n, w) in &[(5usize, 76u32), (10, 128), (3, 16)] {
            let sym = solve_symmetric(n, w, &p).unwrap();
            let mut e = engine(n, w, 1234);
            let r = e.run_slots(300_000);
            for i in 0..n {
                let rel = (r.tau_hat(i) - sym.tau).abs() / sym.tau;
                assert!(
                    rel < 0.06,
                    "n={n} W={w} node {i}: τ̂={} vs τ={} ({:.1}% off)",
                    r.tau_hat(i),
                    sym.tau,
                    rel * 100.0
                );
            }
        }
    }

    #[test]
    fn p_hat_tracks_analytic_fixed_point() {
        let p = DcfParams::default();
        let sym = solve_symmetric(5, 76, &p).unwrap();
        let mut e = engine(5, 76, 4321);
        let r = e.run_slots(400_000);
        for i in 0..5 {
            let rel = (r.p_hat(i) - sym.collision_prob).abs() / sym.collision_prob;
            assert!(rel < 0.1, "node {i}: p̂={} vs p={}", r.p_hat(i), sym.collision_prob);
        }
    }

    #[test]
    fn aggressive_node_wins_more() {
        // Lemma 1, operationally: the node with the smaller window gets
        // more successes and sees fewer collisions per attempt.
        let config = SimConfig::builder().windows(vec![16, 128]).seed(5).build().unwrap();
        let mut e = Engine::new(&config);
        let r = e.run_slots(100_000);
        assert!(r.node_stats[0].successes > 2 * r.node_stats[1].successes);
        assert!(r.p_hat(0) < r.p_hat(1));
    }

    #[test]
    fn rtscts_timing_applied() {
        let params =
            DcfParams::builder().access_mode(AccessMode::RtsCts).build().unwrap();
        let config =
            SimConfig::builder().params(params).symmetric(5, 16).seed(11).build().unwrap();
        let mut e = Engine::new(&config);
        let r = e.run_slots(10_000);
        let t = params.timings();
        let expect = r.channel.idle as f64 * params.sigma().value()
            + r.channel.success as f64 * t.success_time.value()
            + r.channel.collision as f64 * t.collision_time.value();
        assert!((r.elapsed.value() - expect).abs() < 1e-6);
    }

    #[test]
    fn run_for_respects_duration() {
        let mut e = engine(5, 32, 2);
        let r = e.run_for(MicroSecs::from_seconds(1.0));
        assert!(r.elapsed.value() >= 1e6);
        // Overshoot is bounded by one busy slot.
        assert!(r.elapsed.value() < 1e6 + 10_000.0);
    }

    #[test]
    fn set_windows_switches_profile() {
        let mut e = engine(3, 16, 8);
        e.set_windows(&[256, 256, 256]).unwrap();
        assert_eq!(e.windows(), vec![256, 256, 256]);
        let r = e.run_slots(50_000);
        // Wide windows ⇒ low attempt rate.
        assert!(r.tau_hat(0) < 0.02);
        assert!(e.set_windows(&[1, 2]).is_err());
        assert!(e.set_windows(&[0, 1, 2]).is_err());
        assert!(e.set_window(9, 8).is_err());
        assert!(e.set_window(0, 0).is_err());
    }

    #[test]
    fn single_node_never_collides() {
        let mut e = engine(1, 8, 3);
        let r = e.run_slots(10_000);
        assert_eq!(r.node_stats[0].collisions, 0);
        assert_eq!(r.channel.collision, 0);
    }

    #[test]
    fn default_edca_fields_are_bitwise_identical_to_legacy() {
        // Explicit all-baseline AIFS/TXOP profiles must not perturb the
        // slot process at all: no extra RNG draws, same outcomes, same
        // clock — the legacy engine is the degenerate EDCA engine.
        let plain_config = SimConfig::builder().symmetric(5, 32).seed(21).build().unwrap();
        let edca_config = SimConfig::builder()
            .symmetric(5, 32)
            .aifs(vec![3; 5])
            .txop(vec![1; 5])
            .seed(21)
            .build()
            .unwrap();
        let mut plain = Engine::new(&plain_config);
        let mut edca = Engine::new(&edca_config);
        for _ in 0..5_000 {
            assert_eq!(plain.step(), edca.step());
        }
        assert_eq!(plain.clock(), edca.clock());
        let ra = plain.run_slots(20_000);
        let rb = edca.run_slots(20_000);
        assert_eq!(ra, rb);
    }

    #[test]
    fn aifs_defer_thins_the_deferring_node() {
        // Same windows; node 3 defers 2 idle slots. It must attempt less
        // often than its equal-window peers, and strictly less than it
        // would in the equal-AIFS network.
        let base = SimConfig::builder().symmetric(4, 32).seed(9).build().unwrap();
        let cfg = SimConfig::builder()
            .symmetric(4, 32)
            .aifs(vec![0, 0, 0, 2])
            .seed(9)
            .build()
            .unwrap();
        let rb = Engine::new(&base).run_slots(200_000);
        let rd = Engine::new(&cfg).run_slots(200_000);
        assert!(
            rd.tau_hat(3) < 0.8 * rd.tau_hat(0),
            "deferring node τ̂ {} vs peer τ̂ {}",
            rd.tau_hat(3),
            rd.tau_hat(0)
        );
        assert!(rd.tau_hat(3) < rb.tau_hat(3));
        // The favored nodes see less contention than at equal AIFS.
        assert!(rd.p_hat(0) < rb.p_hat(0));
    }

    #[test]
    fn txop_bursts_extend_successful_slots_only() {
        let p = DcfParams::default();
        let cfg = SimConfig::builder()
            .symmetric(3, 32)
            .txop(vec![4, 1, 1])
            .seed(13)
            .build()
            .unwrap();
        let mut e = Engine::new(&cfg);
        let mut expect = 0.0f64;
        let t = p.timings();
        for _ in 0..50_000 {
            let outcome = e.step();
            expect += match outcome {
                SlotOutcome::Idle => p.sigma().value(),
                SlotOutcome::Success { node } | SlotOutcome::Capture { winner: node, .. } => {
                    p.txop_success_time(if node == 0 { 4 } else { 1 }).value()
                }
                SlotOutcome::ChannelError { .. } => t.success_time.value(),
                SlotOutcome::Collision { .. } => t.collision_time.value(),
            };
        }
        assert!((e.clock().value() - expect).abs() < 1e-6);
        // The burst does not change contention: τ̂ is window-driven, so
        // all three equal-window nodes attempt at similar rates.
        let r = Engine::new(&cfg).run_slots(200_000);
        let rel = (r.tau_hat(0) - r.tau_hat(1)).abs() / r.tau_hat(1);
        assert!(rel < 0.1, "τ̂₀ {} vs τ̂₁ {}", r.tau_hat(0), r.tau_hat(1));
    }

    #[test]
    fn noop_faults_are_bitwise_identical_to_no_faults() {
        let config = SimConfig::builder().symmetric(5, 32).seed(21).build().unwrap();
        let mut plain = Engine::new(&config);
        let mut faulted = Engine::with_faults(&config, ChannelFaults::noop()).unwrap();
        assert!(faulted.channel_faults().is_none());
        for _ in 0..5_000 {
            assert_eq!(plain.step(), faulted.step());
        }
        assert_eq!(plain.clock(), faulted.clock());
        let ra = plain.run_slots(20_000);
        let rb = faulted.run_slots(20_000);
        assert_eq!(ra, rb);
        assert_eq!(faulted.channel_error_count(), 0);
        assert_eq!(faulted.capture_count(), 0);
    }

    #[test]
    fn fault_injection_is_seed_deterministic() {
        let config = SimConfig::builder().symmetric(4, 16).seed(3).build().unwrap();
        let faults = ChannelFaults::new(0.1, 0.3, 17).unwrap();
        let mut a = Engine::with_faults(&config, faults).unwrap();
        let mut b = Engine::with_faults(&config, faults).unwrap();
        for _ in 0..10_000 {
            assert_eq!(a.step(), b.step());
        }
        assert_eq!(a.channel_error_count(), b.channel_error_count());
        assert_eq!(a.capture_count(), b.capture_count());
        assert!(a.channel_error_count() > 0, "error rate 0.1 must fire in 10k slots");
        assert!(a.capture_count() > 0, "capture prob 0.3 must fire in 10k slots");
    }

    #[test]
    fn certain_channel_error_kills_every_lone_transmission() {
        let config = SimConfig::builder().symmetric(3, 16).seed(6).build().unwrap();
        let faults = ChannelFaults::new(1.0, 0.0, 1).unwrap();
        let mut e = Engine::with_faults(&config, faults).unwrap();
        let r = e.run_slots(20_000);
        // Every would-be success is corrupted: nothing is ever delivered.
        assert_eq!(r.channel.success, 0);
        assert!(e.channel_error_count() > 0);
        assert_eq!(e.capture_count(), 0);
        let delivered: u64 = r.node_stats.iter().map(|s| s.successes).sum();
        assert_eq!(delivered, 0);
    }

    #[test]
    fn certain_capture_turns_collisions_into_deliveries() {
        let config = SimConfig::builder().symmetric(4, 4).seed(10).build().unwrap();
        let faults = ChannelFaults::new(0.0, 1.0, 2).unwrap();
        let mut e = Engine::with_faults(&config, faults).unwrap();
        let mut captures = 0u64;
        let mut winners_deliver = true;
        for _ in 0..20_000 {
            if let SlotOutcome::Capture { winner, transmitters } = e.step() {
                captures += 1;
                winners_deliver &= transmitters >= 2 && winner < 4;
            }
        }
        assert!(captures > 0, "W=4 with 4 nodes must collide, and every collision captures");
        assert!(winners_deliver);
        assert_eq!(e.capture_count(), captures);
    }

    #[test]
    fn with_faults_rejects_invalid_rates() {
        let config = SimConfig::builder().symmetric(2, 8).seed(1).build().unwrap();
        let bad = ChannelFaults { error_rate: 1.5, capture_prob: 0.0, seed: 0 };
        assert!(Engine::with_faults(&config, bad).is_err());
        let nan = ChannelFaults { error_rate: 0.0, capture_prob: f64::NAN, seed: 0 };
        assert!(Engine::with_faults(&config, nan).is_err());
    }

    #[test]
    fn poisson_light_load_delivers_offered_traffic() {
        use crate::traffic::TrafficModel;
        // 3 nodes at 2 packets/s each: offered load is a few percent of
        // the channel — everything should get through with few collisions.
        let config = SimConfig::builder()
            .symmetric(3, 32)
            .traffic(TrafficModel::Poisson { packets_per_second: 2.0 })
            .seed(77)
            .build()
            .unwrap();
        let mut e = Engine::new(&config);
        let r = e.run_for(MicroSecs::from_seconds(100.0));
        let delivered: u64 = r.node_stats.iter().map(|s| s.successes).sum();
        let offered: u64 = (0..3).map(|i| e.total_arrivals(i)).sum();
        let backlog: u64 = (0..3).map(|i| e.queue_len(i)).sum();
        // Conservation: every arrival is delivered or still queued.
        assert_eq!(offered, delivered + backlog);
        // Light load: backlog negligible, delivery ≈ offered ≈ 100 s × 6/s.
        assert!(backlog < 5, "backlog {backlog}");
        assert!((delivered as f64 - 600.0).abs() < 80.0, "delivered {delivered}");
        // And the channel is mostly idle.
        assert!(r.channel.idle > 50 * (r.channel.success + r.channel.collision));
    }

    #[test]
    fn poisson_heavy_load_approaches_saturation() {
        use crate::traffic::TrafficModel;
        // Offered load far beyond capacity: τ̂ should match the saturated
        // run with the same windows.
        let mk = |traffic| {
            let config = SimConfig::builder()
                .symmetric(4, 32)
                .traffic(traffic)
                .seed(5)
                .build()
                .unwrap();
            let mut e = Engine::new(&config);
            e.run_slots(200_000)
        };
        let saturated = mk(TrafficModel::Saturated);
        let flooded = mk(TrafficModel::Poisson { packets_per_second: 1000.0 });
        for i in 0..4 {
            let rel = (saturated.tau_hat(i) - flooded.tau_hat(i)).abs() / saturated.tau_hat(i);
            assert!(
                rel < 0.05,
                "node {i}: saturated τ̂ {} vs flooded τ̂ {}",
                saturated.tau_hat(i),
                flooded.tau_hat(i)
            );
        }
    }

    #[test]
    fn poisson_silent_network_stays_idle() {
        use crate::traffic::TrafficModel;
        let config = SimConfig::builder()
            .symmetric(3, 8)
            .traffic(TrafficModel::Poisson { packets_per_second: 0.0 })
            .seed(1)
            .build()
            .unwrap();
        let mut e = Engine::new(&config);
        let r = e.run_slots(5_000);
        assert_eq!(r.channel.success + r.channel.collision, 0);
        assert_eq!(r.channel.idle, 5_000);
    }

    #[test]
    fn measured_service_interval_tracks_analytic_delay() {
        // Mean slots between successes ≈ the chain's predicted mean access
        // slots at the fixed point.
        use macgame_dcf::delay::mean_access_slots;
        let p = DcfParams::default();
        let (n, w) = (5usize, 64u32);
        let sym = solve_symmetric(n, w, &p).unwrap();
        let mut e = engine(n, w, 2024);
        let _ = e.run_slots(400_000);
        let predicted =
            mean_access_slots(w, sym.collision_prob, p.max_backoff_stage()).unwrap();
        for i in 0..n {
            let measured = e.delay_tracker().mean_slots(i).expect("plenty of samples");
            let rel = (measured - predicted).abs() / predicted;
            assert!(
                rel < 0.1,
                "node {i}: measured {measured:.1} slots vs predicted {predicted:.1}"
            );
        }
        // Channel-time delay is the slot count scaled by the mean slot.
        let d = e.mean_access_delay(0).unwrap();
        assert!(d.value() > 0.0);
    }

    #[test]
    fn stage_report_payoff_consistent_with_utility_model() {
        // Measured payoff rate ≈ analytic u_i at the same operating point.
        use macgame_dcf::utility::{node_utility, UtilityParams};
        let p = DcfParams::default();
        let n = 5;
        let w = 76;
        let sym = solve_symmetric(n, w, &p).unwrap();
        let analytic = node_utility(
            0,
            &vec![sym.tau; n],
            &vec![sym.collision_prob; n],
            &p,
            &UtilityParams::default(),
        );
        let mut e = engine(n, w, 99);
        let r = e.run_slots(400_000);
        let measured = r.payoff_rate(0, &UtilityParams::default());
        let rel = (measured - analytic).abs() / analytic;
        assert!(rel < 0.08, "measured {measured} vs analytic {analytic}");
    }
}
