//! `served` — the NE-as-a-service front end.
//!
//! ```text
//! served                      # framed JSON on stdin/stdout
//! served --tcp 127.0.0.1:7411 # framed JSON over TCP, thread per connection
//! ```
//!
//! Options: `--threads N` (0 = auto from `MACGAME_THREADS`),
//! `--reply-cache N`, `--solve-cache N` (entries; 0 = no-op cache).

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

use macgame_serve::{serve_stdio, serve_tcp, Engine, EngineConfig};

const USAGE: &str = "usage: served [--tcp ADDR] [--threads N] [--reply-cache N] [--solve-cache N]
  (no --tcp: serve framed JSON on stdin/stdout)";

struct Args {
    tcp: Option<String>,
    config: EngineConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { tcp: None, config: EngineConfig::default() };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--threads" => {
                args.config.threads =
                    value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--reply-cache" => {
                args.config.reply_cache_capacity =
                    value("--reply-cache")?.parse().map_err(|e| format!("--reply-cache: {e}"))?;
            }
            "--solve-cache" => {
                args.config.solve_cache_capacity =
                    value("--solve-cache")?.parse().map_err(|e| format!("--solve-cache: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let engine = Engine::new(args.config).map_err(|e| e.to_string())?;
    match args.tcp {
        Some(addr) => {
            let listener = TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
            eprintln!(
                "served: listening on {}",
                listener.local_addr().map_err(|e| e.to_string())?
            );
            serve_tcp(&Arc::new(engine), &listener).map_err(|e| e.to_string())
        }
        None => serve_stdio(&engine).map_err(|e| e.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
