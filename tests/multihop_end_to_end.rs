//! End-to-end multi-hop pipeline (paper Sections VI–VII.B) at reduced
//! scale: local games → TFT convergence → Theorem 3 NE → quasi-optimality.

use macgame::dcf::MicroSecs;
use macgame::game::GameConfig;
use macgame::multihop::convergence::{check_multihop_ne, tft_converge};
use macgame::multihop::localgame::{local_optimal_windows, LocalRule};
use macgame::multihop::metrics::{evaluate_quasi_optimality, unilateral_quality};
use macgame::multihop::spatialsim::{SpatialConfig, SpatialEngine};

fn scenario(n: usize, seed: u64) -> (Vec<macgame::multihop::Point>, macgame::multihop::Topology, SpatialConfig) {
    let config = SpatialConfig::paper(seed);
    let engine = SpatialEngine::new(n, &vec![64; n], config.clone()).unwrap();
    (engine.positions().to_vec(), engine.topology().clone(), config)
}

/// The full Section VI pipeline: every node's local optimum, min-spread by
/// TFT within the graph diameter, and the Theorem 3 equilibrium check.
#[test]
fn local_games_converge_to_a_multihop_ne() {
    let (_, topo, config) = scenario(60, 7);
    let local = local_optimal_windows(
        &topo,
        &config.params,
        &config.utility,
        2048,
        LocalRule::ExactArgmax,
    )
    .unwrap();
    let trace = tft_converge(&topo, &local).unwrap();
    // Monotone min-propagation, bounded by the diameter when connected.
    if let Some(d) = topo.diameter() {
        assert!(trace.rounds_needed <= d.max(1));
        let w_m = trace.converged_window().expect("connected graph converges uniformly");
        assert_eq!(w_m, *local.iter().min().unwrap());
        // Theorem 3: nobody profits from unilateral deviation at W_m.
        let template = GameConfig::builder(2).params(config.params).build().unwrap();
        let check = check_multihop_ne(&topo, &local, w_m, &template, 1e-4).unwrap();
        assert!(check.is_ne, "worst: {:?}", check.worst);
    }
}

/// Section VII.B quasi-optimality at reduced scale: the converged window
/// captures most of the best global payoff, and mobility averaging keeps
/// per-node payoffs near their best common-window value.
#[test]
fn converged_window_is_quasi_optimal() {
    let (positions, topo, config) = scenario(60, 7);
    let local = local_optimal_windows(
        &topo,
        &config.params,
        &config.utility,
        2048,
        LocalRule::ExactArgmax,
    )
    .unwrap();
    let trace = tft_converge(&topo, &local).unwrap();
    let w_m = trace
        .converged_window()
        .unwrap_or_else(|| *trace.final_windows.iter().min().unwrap());
    let sweep: Vec<u32> =
        [w_m / 2, w_m, w_m * 2, w_m * 4].into_iter().filter(|&w| w >= 1).collect();
    let sample: Vec<usize> = (0..topo.len()).filter(|&i| topo.degree(i) >= 2).take(4).collect();
    let quality = evaluate_quasi_optimality(
        &positions,
        w_m,
        &sweep,
        &sample,
        &sweep,
        &config, // mobile measurement, as in the paper
        MicroSecs::from_seconds(60.0),
    )
    .unwrap();
    assert!(
        quality.global_fraction > 0.8,
        "global fraction {:.2}",
        quality.global_fraction
    );
    assert!(
        quality.min_local_fraction() > 0.4,
        "min local fraction {:.2} (rises toward the paper's 96% with longer runs)",
        quality.min_local_fraction()
    );
}

/// The hidden-node degradation factor stays in a narrow band across CWs
/// (the Section VI.A approximation) and worsens as windows shrink only
/// moderately.
#[test]
fn hidden_node_factor_is_roughly_cw_independent() {
    let (positions, _, config) = scenario(60, 7);
    let static_config = SpatialConfig { mobility: None, ..config };
    let mut samples = Vec::new();
    for w in [8u32, 16, 32, 64] {
        let mut engine = SpatialEngine::with_positions(
            positions.clone(),
            &vec![w; positions.len()],
            static_config.clone(),
        )
        .unwrap();
        let report = engine.run_for(MicroSecs::from_seconds(20.0));
        samples.push(report.network_p_hn().expect("traffic exists"));
    }
    for p_hn in &samples {
        assert!((0.5..=1.0).contains(p_hn), "p_hn = {p_hn}");
    }
    let spread = samples.iter().cloned().fold(f64::MIN, f64::max)
        - samples.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 0.3, "p_hn spread {spread} too wide for the approximation");
}

/// The unilateral temptation exists (one node undercutting a pinned crowd
/// profits) — the quantity TFT's punishment must outweigh.
#[test]
fn unilateral_deviation_tempts_without_tft() {
    let (positions, topo, config) = scenario(50, 9);
    let static_config = SpatialConfig { mobility: None, ..config };
    let node = (0..topo.len()).max_by_key(|&i| topo.degree(i)).unwrap();
    let quality = unilateral_quality(
        &positions,
        48,
        &[node],
        &[6, 12, 24, 48],
        &static_config,
        MicroSecs::from_seconds(20.0),
    )
    .unwrap();
    assert!(
        quality[0].fraction < 0.95,
        "densest node saw no temptation (fraction {:.2})",
        quality[0].fraction
    );
    assert!(quality[0].best.0 < 48);
}

/// Mobility + topology refresh keep the spatial engine self-consistent
/// over long horizons (no drift in conservation laws).
#[test]
fn long_mobile_run_remains_consistent() {
    let config = SpatialConfig::paper(11);
    let mut engine = SpatialEngine::new(40, &[32; 40], config).unwrap();
    let report = engine.run_for(MicroSecs::from_seconds(300.0));
    for (i, s) in report.node_stats.iter().enumerate() {
        assert_eq!(s.attempts, s.successes + s.collisions, "node {i}");
    }
    assert!(report.elapsed.value() >= 300.0 * 1e6);
    assert_eq!(report.local_elapsed.len(), 40);
    for t in &report.local_elapsed {
        assert!(t.value() > 0.0);
    }
}
