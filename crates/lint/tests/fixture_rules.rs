//! Rule-by-rule coverage over the checked-in fixture corpus.
//!
//! The fixtures live under `tests/fixtures/` on purpose: Cargo only
//! compiles direct children of `tests/`, and the workspace linter skips
//! the same subdirectories, so the corpus can contain every forbidden
//! pattern without tripping either the compiler or `repro -- lint`.

use std::path::Path;

use macgame_lint::manifest::{check_manifest, RULE_EXTERNAL_DEP, RULE_WORKSPACE_FIELD};
use macgame_lint::rules::{
    check_source, RULE_DEPRECATED, RULE_EMPTY_MARKER, RULE_ENTROPY, RULE_HASH, RULE_PANIC,
    RULE_RELAXED, RULE_WALL_CLOCK,
};
use macgame_lint::{FileContext, FileKind, Finding};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lint_fixture(name: &str, kind: FileKind) -> Vec<Finding> {
    let rel = format!("crates/demo/src/{name}");
    let ctx = FileContext { rel_path: &rel, kind, wall_clock_allow: &[], relaxed_allow: &[] };
    check_source(&ctx, &fixture(name))
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn determinism_rules_fire_on_positive_fixture() {
    let findings = lint_fixture("determinism_positive.rs", FileKind::Library);
    let rules = rules_of(&findings);
    assert_eq!(rules.iter().filter(|r| **r == RULE_WALL_CLOCK).count(), 2, "{findings:?}");
    assert!(rules.iter().filter(|r| **r == RULE_HASH).count() >= 4, "{findings:?}");
    assert_eq!(rules.iter().filter(|r| **r == RULE_ENTROPY).count(), 2, "{findings:?}");
    let instant = findings.iter().find(|f| f.snippet.contains("Instant")).unwrap();
    assert_eq!(instant.line, 6);
    assert_eq!(instant.path, "crates/demo/src/determinism_positive.rs");
}

#[test]
fn determinism_rules_stay_silent_on_negative_fixture() {
    let findings = lint_fixture("determinism_negative.rs", FileKind::Library);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn wall_clock_quarantine_allowlists_exact_paths() {
    let source = fixture("determinism_positive.rs");
    let allow = vec!["crates/demo/src/determinism_positive.rs".to_string()];
    let ctx = FileContext {
        rel_path: "crates/demo/src/determinism_positive.rs",
        kind: FileKind::Library,
        wall_clock_allow: &allow,
        relaxed_allow: &[],
    };
    let findings = check_source(&ctx, &source);
    assert!(findings.iter().all(|f| f.rule != RULE_WALL_CLOCK), "{findings:?}");
    // The other determinism rules are unaffected by the quarantine.
    assert!(findings.iter().any(|f| f.rule == RULE_HASH));
}

#[test]
fn panic_policy_fires_on_every_unmarked_site() {
    let findings = lint_fixture("panic_positive.rs", FileKind::Library);
    let unmarked: Vec<u32> =
        findings.iter().filter(|f| f.rule == RULE_PANIC).map(|f| f.line).collect();
    assert_eq!(unmarked, vec![3, 4, 5, 6, 8, 11], "{findings:?}");
    let empty: Vec<u32> =
        findings.iter().filter(|f| f.rule == RULE_EMPTY_MARKER).map(|f| f.line).collect();
    assert_eq!(empty, vec![17], "{findings:?}");
}

#[test]
fn panic_policy_accepts_markers_and_test_code() {
    let findings = lint_fixture("panic_negative.rs", FileKind::Library);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_policy_skips_dev_code_entirely() {
    let findings = lint_fixture("panic_positive.rs", FileKind::Dev);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn api_rules_fire_on_positive_fixture() {
    let findings = lint_fixture("api_positive.rs", FileKind::Library);
    let rules = rules_of(&findings);
    assert_eq!(rules.iter().filter(|r| **r == RULE_DEPRECATED).count(), 2, "{findings:?}");
    assert_eq!(rules.iter().filter(|r| **r == RULE_RELAXED).count(), 2, "{findings:?}");
}

#[test]
fn deprecated_constructors_are_flagged_even_in_dev_code() {
    let findings = lint_fixture("api_positive.rs", FileKind::Dev);
    let rules = rules_of(&findings);
    assert_eq!(rules.iter().filter(|r| **r == RULE_DEPRECATED).count(), 2, "{findings:?}");
    // Dev code is exempt from the ordering rule.
    assert!(!rules.contains(&RULE_RELAXED), "{findings:?}");
}

#[test]
fn api_rules_stay_silent_on_negative_fixture() {
    let findings = lint_fixture("api_negative.rs", FileKind::Library);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn relaxed_ordering_allowlist_is_a_prefix_match() {
    let source = fixture("api_positive.rs");
    let allow = vec!["crates/demo/src/".to_string()];
    let ctx = FileContext {
        rel_path: "crates/demo/src/api_positive.rs",
        kind: FileKind::Library,
        wall_clock_allow: &[],
        relaxed_allow: &allow,
    };
    let findings = check_source(&ctx, &source);
    assert!(findings.iter().all(|f| f.rule != RULE_RELAXED), "{findings:?}");
    assert!(findings.iter().any(|f| f.rule == RULE_DEPRECATED));
}

#[test]
fn manifest_rules_fire_on_bad_manifest() {
    let findings =
        check_manifest("crates/demo/Cargo.toml", &fixture("manifest_bad.toml"), false, false);
    let rules = rules_of(&findings);
    assert_eq!(rules.iter().filter(|r| **r == RULE_WORKSPACE_FIELD).count(), 2, "{findings:?}");
    assert_eq!(rules.iter().filter(|r| **r == RULE_EXTERNAL_DEP).count(), 1, "{findings:?}");
}

#[test]
fn manifest_rules_stay_silent_on_good_manifest() {
    let findings =
        check_manifest("crates/demo/Cargo.toml", &fixture("manifest_good.toml"), false, false);
    assert!(findings.is_empty(), "{findings:?}");
}
