//! Detection-gated punishment strategies.
//!
//! The paper's TFT (Section IV) punishes on *any* observed deviation —
//! which under noisy observation means punishing phantom cheaters.
//! These strategies interpose a [`WindowedDetector`]: punishment fires
//! only on a typed [`Verdict`](crate::detect::Verdict), trading a
//! detection delay (the detector memory) for robustness to observation
//! faults.
//!
//! * [`DetectorTft`] — plays the cooperative window until the detector
//!   convicts a peer, then mirrors the minimum observed window (the
//!   paper's punishment) for a fixed number of stages before forgiving
//!   and clearing the detector state.
//! * [`Throttle`] — selective, measured enforcement: while a verdict
//!   stands it matches the *convicted* node's mean observed window
//!   instead of dragging the whole channel to the minimum; when the
//!   cheater reverts, the bounded detector memory clears the verdict
//!   and the throttler returns to cooperation on its own.
//!
//! In the repeated-game plane, strategies see one observation vector
//! per stage, so the detectors are fed with `slots = 1`:
//! `Verdict::slots_observed` counts *stages* here (see
//! [`Verdict`](crate::detect::Verdict) docs).

use crate::detect::sequential::WindowedDetector;
use crate::error::GameError;
use crate::game::GameConfig;
use crate::history::History;
use crate::strategy::Strategy;

/// TFT whose trigger fires only on a detector verdict.
#[derive(Debug, Clone)]
pub struct DetectorTft {
    w_star: u32,
    memory: usize,
    threshold: f64,
    punish_stages: usize,
    detector: Option<WindowedDetector>,
    punishing: usize,
}

impl DetectorTft {
    /// Creates a detection-gated TFT: cooperate at `w_star`, convict on
    /// a windowed detector with the given `memory` and ratio
    /// `threshold`, punish for `punish_stages` stages, then forgive.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidConfig`] if `w_star == 0`,
    /// `memory == 0`, `threshold` is outside `(0, 1]`, or
    /// `punish_stages == 0`.
    pub fn try_new(
        w_star: u32,
        memory: usize,
        threshold: f64,
        punish_stages: usize,
    ) -> Result<Self, GameError> {
        // Validate the detector parameters eagerly (node count comes
        // from the first observed stage).
        WindowedDetector::try_new(1, w_star, memory, threshold)?;
        if punish_stages == 0 {
            return Err(GameError::InvalidConfig("punishment must last at least one stage".into()));
        }
        Ok(DetectorTft {
            w_star,
            memory,
            threshold,
            punish_stages,
            detector: None,
            punishing: 0,
        })
    }
}

impl Strategy for DetectorTft {
    fn initial_window(&self, _player: usize, game: &GameConfig) -> u32 {
        self.w_star.clamp(1, game.w_max())
    }

    fn next_window(
        &mut self,
        player: usize,
        game: &GameConfig,
        history: &History,
    ) -> Result<u32, GameError> {
        let last = history
            .last()
            .ok_or_else(|| GameError::InvalidConfig("next_window before stage 0".into()))?;
        let n = last.observed.len();
        if !self.detector.as_ref().is_some_and(|d| matches_nodes(d, n)) {
            self.detector = Some(WindowedDetector::try_new(n, self.w_star, self.memory, self.threshold)?);
        }
        let detector = self.detector.as_mut().ok_or_else(|| {
            GameError::InvalidConfig("detector initialization failed".into())
        })?;
        let verdicts = detector.observe_windows(&last.observed, 1)?;
        let convicted = verdicts.iter().any(|v| v.node != player);

        if self.punishing > 0 {
            self.punishing -= 1;
            if self.punishing == 0 {
                // Forgive: punishment-era observations (everyone low)
                // must not convict anew on the next stage.
                detector.reset_all();
            }
            let min = last.observed.iter().copied().min().unwrap_or(self.w_star);
            return Ok(min.clamp(1, game.w_max()));
        }
        if convicted {
            self.punishing = self.punish_stages - 1;
            let min = last.observed.iter().copied().min().unwrap_or(self.w_star);
            if self.punishing == 0 {
                detector.reset_all();
            }
            return Ok(min.clamp(1, game.w_max()));
        }
        Ok(self.w_star.clamp(1, game.w_max()))
    }

    fn name(&self) -> &'static str {
        "detector-tft"
    }
}

/// Selective throttling: match the convicted cheater, not the channel.
#[derive(Debug, Clone)]
pub struct Throttle {
    w_star: u32,
    memory: usize,
    threshold: f64,
    detector: Option<WindowedDetector>,
}

impl Throttle {
    /// Creates a selective throttler: cooperate at `w_star`; while a
    /// windowed-detector verdict stands, play the convicted node's mean
    /// observed window.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidConfig`] if `w_star == 0`,
    /// `memory == 0`, or `threshold` is outside `(0, 1]`.
    pub fn try_new(w_star: u32, memory: usize, threshold: f64) -> Result<Self, GameError> {
        WindowedDetector::try_new(1, w_star, memory, threshold)?;
        Ok(Throttle { w_star, memory, threshold, detector: None })
    }
}

impl Strategy for Throttle {
    fn initial_window(&self, _player: usize, game: &GameConfig) -> u32 {
        self.w_star.clamp(1, game.w_max())
    }

    fn next_window(
        &mut self,
        player: usize,
        game: &GameConfig,
        history: &History,
    ) -> Result<u32, GameError> {
        let last = history
            .last()
            .ok_or_else(|| GameError::InvalidConfig("next_window before stage 0".into()))?;
        let n = last.observed.len();
        if !self.detector.as_ref().is_some_and(|d| matches_nodes(d, n)) {
            self.detector = Some(WindowedDetector::try_new(n, self.w_star, self.memory, self.threshold)?);
        }
        let detector = self.detector.as_mut().ok_or_else(|| {
            GameError::InvalidConfig("detector initialization failed".into())
        })?;
        let verdicts = detector.observe_windows(&last.observed, 1)?;
        // The worst standing offender: lowest statistic, ties to the
        // lowest index — a deterministic pick.
        let worst = verdicts
            .iter()
            .filter(|v| v.node != player)
            .min_by(|a, b| a.statistic.total_cmp(&b.statistic).then(a.node.cmp(&b.node)));
        if let Some(verdict) = worst {
            let matched = detector
                .mean_window(verdict.node)
                .map_or(self.w_star, |m| m.round().max(1.0) as u32);
            return Ok(matched.clamp(1, game.w_max()));
        }
        Ok(self.w_star.clamp(1, game.w_max()))
    }

    fn name(&self) -> &'static str {
        "throttle"
    }
}

fn matches_nodes(detector: &WindowedDetector, n: usize) -> bool {
    detector.node_count() == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::StageRecord;

    fn game(n: usize) -> GameConfig {
        GameConfig::builder(n).build().unwrap()
    }

    fn push(history: &mut History, observed: Vec<u32>) {
        let n = observed.len();
        history.push(StageRecord {
            windows: observed.clone(),
            observed,
            utilities: vec![0.0; n],
        });
    }

    #[test]
    fn detector_tft_ignores_honest_peers() {
        let g = game(3);
        let mut s = DetectorTft::try_new(64, 2, 0.5, 3).unwrap();
        let mut h = History::new();
        assert_eq!(s.initial_window(0, &g), 64);
        for _ in 0..10 {
            push(&mut h, vec![64, 64, 64]);
            assert_eq!(s.next_window(0, &g, &h).unwrap(), 64);
        }
    }

    #[test]
    fn detector_tft_waits_for_conviction_then_punishes_then_forgives() {
        let g = game(2);
        let mut s = DetectorTft::try_new(64, 2, 0.5, 3).unwrap();
        let mut h = History::new();
        // Stage 1 observation: cheater at 8. Memory 2 → no verdict yet.
        push(&mut h, vec![64, 8]);
        assert_eq!(s.next_window(0, &g, &h).unwrap(), 64, "no verdict before warmup");
        // Second cheating observation convicts: punish at the minimum.
        push(&mut h, vec![64, 8]);
        assert_eq!(s.next_window(0, &g, &h).unwrap(), 8);
        // Punishment persists for punish_stages = 3 stages total.
        push(&mut h, vec![8, 8]);
        assert_eq!(s.next_window(0, &g, &h).unwrap(), 8);
        push(&mut h, vec![8, 8]);
        assert_eq!(s.next_window(0, &g, &h).unwrap(), 8);
        // Forgiveness: detector was reset; an honest stage restores W*.
        push(&mut h, vec![64, 64]);
        assert_eq!(s.next_window(0, &g, &h).unwrap(), 64);
    }

    #[test]
    fn detector_tft_does_not_convict_itself() {
        let g = game(2);
        let mut s = DetectorTft::try_new(64, 1, 0.5, 2).unwrap();
        let mut h = History::new();
        // Player 0's own window reads low (e.g. its own punishment);
        // verdicts against oneself must not trigger punishment.
        push(&mut h, vec![8, 64]);
        assert_eq!(s.next_window(0, &g, &h).unwrap(), 64);
    }

    #[test]
    fn throttle_matches_the_cheater_not_the_channel() {
        let g = game(3);
        let mut s = Throttle::try_new(64, 2, 0.5).unwrap();
        let mut h = History::new();
        push(&mut h, vec![64, 16, 64]);
        assert_eq!(s.next_window(0, &g, &h).unwrap(), 64, "single low stage: no verdict yet");
        push(&mut h, vec![64, 16, 64]);
        // Convicted: mean observed window of node 1 is 16.
        assert_eq!(s.next_window(0, &g, &h).unwrap(), 16);
        // Cheater reverts; ring refills with 64s and the verdict clears.
        push(&mut h, vec![64, 64, 64]);
        push(&mut h, vec![64, 64, 64]);
        assert_eq!(s.next_window(0, &g, &h).unwrap(), 64);
    }

    #[test]
    fn constructors_validate() {
        assert!(DetectorTft::try_new(0, 2, 0.5, 3).is_err());
        assert!(DetectorTft::try_new(64, 0, 0.5, 3).is_err());
        assert!(DetectorTft::try_new(64, 2, 1.5, 3).is_err());
        assert!(DetectorTft::try_new(64, 2, 0.5, 0).is_err());
        assert!(Throttle::try_new(64, 2, 0.0).is_err());
        assert!(Throttle::try_new(0, 2, 0.5).is_err());
    }
}
