//! The detection-plane experiment behind `repro -- detect`: ROC sweeps
//! of the sequential detectors under observation-fault grids, and the
//! adversarial tournament of detection-gated strategies, condensed into
//! `artifacts/DETECT.json`.
//!
//! Everything in the payload is a pure function of the settings: ROC
//! trials and arena matches are self-contained units of work with
//! per-index derived seeds, fanned out with the fixed-chunk
//! `map_in_order` discipline and aggregated in plan order —
//! `artifacts/DETECT.json` is byte-identical at every `MACGAME_THREADS`
//! setting, and CI compares the bytes at 1 and 2 workers.

use macgame_core::detect::{
    adversarial_round_robin, cusum_roc, windowed_roc, ArenaReport, ArenaSettings, CusumRocSettings,
    DetectorTft, FaultCell, RocCurve, Throttle, WindowedRocSettings,
};
use macgame_core::equilibrium::efficient_ne;
use macgame_core::strategy::{BestResponse, Constant};
use macgame_core::tournament::Entrant;
use macgame_core::GameConfig;
use serde::{Deserialize, Serialize};

use crate::BenchError;

/// Workload knobs for the detection experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectSettings {
    /// Population observed by the detectors in the ROC sweeps.
    pub n: usize,
    /// Observed stages per ROC trial.
    pub stages: usize,
    /// Windowed-detector memory (observations averaged per node).
    pub memory: usize,
    /// Channel slots per observed stage.
    pub slots_per_stage: u64,
    /// Window-ratio thresholds for the windowed sweep, each in `(0, 1]`.
    pub thresholds: Vec<f64>,
    /// Score thresholds for the CUSUM sweep, each > 0.
    pub cusum_thresholds: Vec<f64>,
    /// CUSUM slack per observed stage.
    pub cusum_allowance: f64,
    /// Honest + selfish trials per ROC cell.
    pub replications: usize,
    /// Stages per arena match.
    pub arena_stages: usize,
    /// Arena repetitions per (pair, cell).
    pub arena_repetitions: usize,
    /// Replicator generations for the equilibrium-mix summary.
    pub generations: usize,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Worker threads (`0` = the `MACGAME_THREADS` default). Never
    /// affects payload bytes.
    pub threads: usize,
}

impl DetectSettings {
    /// Fast CI workload.
    #[must_use]
    pub fn quick() -> Self {
        DetectSettings {
            n: 5,
            stages: 24,
            memory: 4,
            slots_per_stage: 2_000,
            thresholds: vec![0.2, 0.4, 0.6, 0.8, 0.95],
            cusum_thresholds: vec![0.002, 0.005, 0.015, 0.04, 0.12],
            cusum_allowance: 0.003,
            replications: 8,
            arena_stages: 16,
            arena_repetitions: 4,
            generations: 200,
            base_seed: 2007,
            threads: 0,
        }
    }

    /// Paper-strength workload: thousands of arena matches.
    #[must_use]
    pub fn full() -> Self {
        DetectSettings {
            n: 5,
            stages: 48,
            memory: 4,
            slots_per_stage: 8_000,
            thresholds: vec![0.2, 0.4, 0.6, 0.8, 0.95],
            cusum_thresholds: vec![0.001, 0.003, 0.008, 0.02, 0.08],
            cusum_allowance: 0.001,
            replications: 32,
            arena_stages: 40,
            arena_repetitions: 20,
            generations: 500,
            base_seed: 2007,
            threads: 0,
        }
    }

    /// The observation-fault grid both the ROC sweep and the arena use.
    #[must_use]
    pub fn fault_grid() -> Vec<FaultCell> {
        vec![
            FaultCell::ZERO,
            FaultCell { multiplicative: 0.1, additive: 1.0, stale_prob: 0.0, drop_prob: 0.0 },
            FaultCell { multiplicative: 0.25, additive: 2.0, stale_prob: 0.1, drop_prob: 0.1 },
            FaultCell { multiplicative: 0.4, additive: 4.0, stale_prob: 0.2, drop_prob: 0.25 },
        ]
    }
}

/// The full `artifacts/DETECT.json` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectPayload {
    /// The workload that produced this payload.
    pub settings: DetectSettings,
    /// The cooperative reference window `W_c*` the detectors defend.
    pub w_star: u32,
    /// The cheater's window in selfish ROC trials.
    pub w_selfish: u32,
    /// Windowed-detector ROC curves, one per fault cell.
    pub windowed_roc: Vec<RocCurve>,
    /// CUSUM ROC curve against finite-sample counter noise.
    pub cusum_roc: RocCurve,
    /// The adversarial tournament + equilibrium-mix summary.
    pub arena: ArenaReport,
}

/// Builds the five-population arena field: honest constant play, a
/// selfish undercutter, a short-sighted best responder, and the two
/// detection-gated punishers.
///
/// # Panics
///
/// The detector factories panic on parameters `WindowedDetector`
/// rejects: `w_star == 0`, `memory == 0`, or `threshold ∉ (0, 1]`.
#[must_use]
pub fn arena_field(w_star: u32, memory: usize, threshold: f64) -> Vec<Entrant> {
    let w_selfish = (w_star / 4).max(1);
    vec![
        Entrant::new("honest", move || Box::new(Constant::new(w_star))),
        Entrant::new("selfish", move || Box::new(Constant::new(w_selfish))),
        Entrant::new("short-sighted", move || Box::new(BestResponse::new(w_star))),
        Entrant::new("detector-tft", move || {
            Box::new(
                DetectorTft::try_new(w_star, memory, threshold, 4).expect("valid detector TFT"), // PANIC-POLICY: documented # Panics contract (programmer-error guard)
            )
        }),
        Entrant::new("throttle", move || {
            Box::new(Throttle::try_new(w_star, memory, threshold).expect("valid throttle")) // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        }),
    ]
}

/// Runs the detection experiment.
///
/// # Errors
///
/// Propagates model, game, and simulator failures.
pub fn run_detect(settings: &DetectSettings) -> Result<DetectPayload, BenchError> {
    let game = GameConfig::builder(settings.n).discount(0.995).build()?;
    let w_star = efficient_ne(&game)?.window;
    let w_selfish = (w_star / 4).max(1);
    let cells = DetectSettings::fault_grid();

    // ── Windowed-detector ROC over the fault grid ──────────────────────
    let windowed = windowed_roc(&WindowedRocSettings {
        n: settings.n,
        w_ref: w_star,
        w_selfish,
        w_max: game.w_max(),
        stages: settings.stages,
        memory: settings.memory,
        slots_per_stage: settings.slots_per_stage,
        thresholds: settings.thresholds.clone(),
        cells: cells.clone(),
        replications: settings.replications,
        base_seed: settings.base_seed,
        threads: settings.threads,
    })?;

    // ── CUSUM ROC against finite-sample counter noise ──────────────────
    let cusum = cusum_roc(
        game.params(),
        &CusumRocSettings {
            n: settings.n,
            w_ref: w_star,
            w_selfish,
            stages: settings.stages,
            slots_per_stage: settings.slots_per_stage,
            allowance: settings.cusum_allowance,
            thresholds: settings.cusum_thresholds.clone(),
            replications: settings.replications,
            base_seed: settings.base_seed,
            threads: settings.threads,
        },
    )?;

    // ── The adversarial tournament ─────────────────────────────────────
    // The detector threshold sits mid-sweep: tight enough to convict the
    // W*/4 undercutter (ratio 0.25), loose enough to survive the noisy
    // cells.
    let arena = adversarial_round_robin(
        &arena_field(w_star, settings.memory, 0.6),
        &game,
        &ArenaSettings {
            stages: settings.arena_stages,
            repetitions: settings.arena_repetitions,
            cells,
            base_seed: settings.base_seed,
            generations: settings.generations,
            threads: settings.threads,
        },
    )?;

    Ok(DetectPayload {
        settings: settings.clone(),
        w_star,
        w_selfish,
        windowed_roc: windowed,
        cusum_roc: cusum,
        arena,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DetectSettings {
        DetectSettings {
            stages: 10,
            memory: 3,
            slots_per_stage: 500,
            replications: 3,
            arena_stages: 8,
            arena_repetitions: 2,
            generations: 50,
            ..DetectSettings::quick()
        }
    }

    #[test]
    fn payload_is_internally_consistent() {
        let p = run_detect(&small()).unwrap();
        // ≥ 3 fault grids × ≥ 5 thresholds.
        assert!(p.windowed_roc.len() >= 3);
        for curve in &p.windowed_roc {
            assert!(curve.points.len() >= 5);
        }
        // The zero-fault all-honest cell has FP rate exactly 0.
        let zero = p.windowed_roc.iter().find(|c| c.cell.is_zero()).unwrap();
        for point in &zero.points {
            assert_eq!(point.false_positives, 0, "{point:?}");
            assert_eq!(point.fp_rate, 0.0);
        }
        // ≥ 4 strategy populations in the payoff matrix.
        assert!(p.arena.tournament.names.len() >= 4);
        assert_eq!(p.arena.matches, 5 * 5 * 4 * small().arena_repetitions);
        assert!((p.arena.mix.final_shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn payload_bytes_are_reproducible_and_thread_invariant() {
        let settings = small();
        let base = serde_json::to_string(&run_detect(&settings).unwrap()).unwrap();
        for threads in [1usize, 2, 8] {
            let pinned = DetectSettings { threads, ..settings.clone() };
            let mut other = run_detect(&pinned).unwrap();
            // The thread knob is workload metadata, not a result; pin it
            // back so the byte comparison covers every computed section.
            other.settings.threads = settings.threads;
            let bytes = serde_json::to_string(&other).unwrap();
            assert_eq!(bytes, base, "payload bytes changed at threads = {threads}");
        }
    }
}
