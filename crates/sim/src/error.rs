//! Error types for the simulator.

use core::fmt;

/// Errors produced by the simulation layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value was rejected.
    InvalidConfig(String),
    /// An analytical-model error surfaced through the simulator.
    Model(macgame_dcf::DcfError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(reason) => write!(f, "invalid simulation config: {reason}"),
            SimError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            SimError::InvalidConfig(_) => None,
        }
    }
}

impl From<macgame_dcf::DcfError> for SimError {
    fn from(e: macgame_dcf::DcfError) -> Self {
        SimError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = SimError::InvalidConfig("boom".into());
        assert_eq!(e.to_string(), "invalid simulation config: boom");
        assert!(e.source().is_none());
        let inner = macgame_dcf::DcfError::invalid("w", "bad");
        let e = SimError::from(inner.clone());
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<SimError>();
    }
}
