//! End-to-end tests of the `macgame` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_macgame"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn ne_subcommand_reports_the_efficient_window() {
    let (stdout, _, ok) = run(&["ne", "--n", "5"]);
    assert!(ok);
    assert!(stdout.contains("W_c* = 79"), "stdout: {stdout}");
    assert!(stdout.contains("NE interval"));
}

#[test]
fn rtscts_flag_changes_the_answer() {
    let (basic, _, _) = run(&["ne", "--n", "5"]);
    let (rtscts, _, ok) = run(&["ne", "--n", "5", "--rtscts"]);
    assert!(ok);
    assert_ne!(basic, rtscts);
    assert!(rtscts.contains("RTS/CTS"));
}

#[test]
fn sweep_emits_csv() {
    let (stdout, _, ok) = run(&["sweep", "--n", "3", "--w-max", "64"]);
    assert!(ok);
    let mut lines = stdout.lines();
    assert_eq!(lines.next(), Some("w,u_per_node,u_over_c"));
    let first = lines.next().expect("data rows");
    assert!(first.starts_with("1,"), "first row: {first}");
}

#[test]
fn search_subcommand_finds_the_optimum() {
    let (stdout, _, ok) = run(&["search", "--n", "5", "--start", "60"]);
    assert!(ok);
    assert!(stdout.contains("found W_m = 79"), "stdout: {stdout}");
}

#[test]
fn bad_usage_exits_nonzero_with_usage() {
    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
    let (_, stderr, ok) = run(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
    let (_, stderr, ok) = run(&["simulate", "--n", "3"]);
    assert!(!ok);
    assert!(stderr.contains("--w"));
}
