//! Error types for the multi-hop layer.

use core::fmt;

/// Errors produced by the multi-hop layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MultihopError {
    /// An input (profile, topology, parameter) was rejected.
    InvalidInput(String),
    /// An analytical-model error.
    Model(macgame_dcf::DcfError),
    /// A game-layer error.
    Game(macgame_core::GameError),
}

impl fmt::Display for MultihopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultihopError::InvalidInput(reason) => write!(f, "invalid multihop input: {reason}"),
            MultihopError::Model(e) => write!(f, "model error: {e}"),
            MultihopError::Game(e) => write!(f, "game error: {e}"),
        }
    }
}

impl std::error::Error for MultihopError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MultihopError::Model(e) => Some(e),
            MultihopError::Game(e) => Some(e),
            MultihopError::InvalidInput(_) => None,
        }
    }
}

impl From<macgame_dcf::DcfError> for MultihopError {
    fn from(e: macgame_dcf::DcfError) -> Self {
        MultihopError::Model(e)
    }
}

impl From<macgame_core::GameError> for MultihopError {
    fn from(e: macgame_core::GameError) -> Self {
        MultihopError::Game(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = MultihopError::InvalidInput("x".into());
        assert!(e.to_string().contains("invalid multihop input"));
        assert!(e.source().is_none());
        let e = MultihopError::from(macgame_dcf::DcfError::invalid("n", "bad"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<MultihopError>();
    }
}
