//! Serializable snapshot of one fixed-point solution.
//!
//! [`SolutionRecord`] packages everything a conformance fixture needs to
//! pin a solve: the window profile, the solution `(τ, p)`, the implied
//! normalized throughput, and the residual certificate. It deliberately
//! excludes solver diagnostics (iteration counts) that legitimately drift
//! when the solver internals change without changing the solution.

use serde::{Deserialize, Serialize};

use crate::error::DcfError;
use crate::fixedpoint::Equilibrium;
use crate::params::DcfParams;
use crate::throughput::normalized_throughput;

/// One window profile's fixed-point solution in fixture form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolutionRecord {
    /// The solved window profile.
    pub windows: Vec<u32>,
    /// Per-node transmission probabilities `τ_i`.
    pub taus: Vec<f64>,
    /// Per-node conditional collision probabilities `p_i`.
    pub collision_probs: Vec<f64>,
    /// Normalized saturation throughput `S` of the profile.
    pub throughput: f64,
    /// Max residual of Eqs. (2)–(3) at the solution — a quality
    /// certificate that travels with the fixture.
    pub residual: f64,
}

impl SolutionRecord {
    /// Builds the record for `equilibrium`, which must have been solved
    /// for exactly `windows` under `params`.
    ///
    /// # Errors
    ///
    /// Returns [`DcfError::InvalidParameter`] if `windows` disagrees in
    /// length with the solution.
    pub fn new(
        windows: &[u32],
        equilibrium: &Equilibrium,
        params: &DcfParams,
    ) -> Result<Self, DcfError> {
        let residual = equilibrium.residual(windows, params)?;
        Ok(SolutionRecord {
            windows: windows.to_vec(),
            taus: equilibrium.taus.clone(),
            collision_probs: equilibrium.collision_probs.clone(),
            throughput: normalized_throughput(&equilibrium.taus, params),
            residual,
        })
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the profile is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixedpoint::{solve, SolveOptions};

    #[test]
    fn record_captures_solution_and_certificate() {
        let params = DcfParams::default();
        let windows = [32u32, 64, 128];
        let eq = solve(&windows, &params, SolveOptions::default()).unwrap();
        let record = SolutionRecord::new(&windows, &eq, &params).unwrap();
        assert_eq!(record.windows, windows);
        assert_eq!(record.taus, eq.taus);
        assert_eq!(record.collision_probs, eq.collision_probs);
        assert_eq!(record.len(), 3);
        assert!(!record.is_empty());
        assert!(record.residual < 1e-9, "residual {}", record.residual);
        assert!(record.throughput > 0.0 && record.throughput < 1.0);
    }

    #[test]
    fn record_rejects_mismatched_windows() {
        let params = DcfParams::default();
        let eq = solve(&[32, 32], &params, SolveOptions::default()).unwrap();
        assert!(SolutionRecord::new(&[32, 32, 32], &eq, &params).is_err());
    }

    #[test]
    fn record_roundtrips_through_json() {
        let params = DcfParams::default();
        let windows = [76u32; 5];
        let eq = solve(&windows, &params, SolveOptions::default()).unwrap();
        let record = SolutionRecord::new(&windows, &eq, &params).unwrap();
        let json = serde_json::to_string(&record).unwrap();
        let back: SolutionRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }
}
