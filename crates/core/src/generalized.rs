//! A small generic finite-game framework.
//!
//! The paper closes by claiming its model "is a general framework that can
//! be extended to model other selfish behaviors such as rate control by
//! redefining the proper utility function". This module is that framework
//! made concrete: an `n`-player game over an arbitrary finite action set
//! with a pluggable utility, plus best-response dynamics and pure-NE
//! checks. [`crate::ratecontrol`] instantiates it for PHY-rate selection.

use core::fmt;

use macgame_dcf::parallel::resolve_threads;

use crate::error::GameError;

/// Boxed utility function: `(player, profile of action indices) → payoff`.
/// `Send + Sync` so payoff tables can be built in parallel.
type UtilityFn = Box<dyn Fn(usize, &[usize]) -> f64 + Send + Sync>;

/// An `n`-player one-shot game over a shared finite action set.
///
/// Profiles are given as action *indices* into [`FiniteGame::actions`].
pub struct FiniteGame<A> {
    players: usize,
    actions: Vec<A>,
    utility: UtilityFn,
}

impl<A: fmt::Debug> fmt::Debug for FiniteGame<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FiniteGame")
            .field("players", &self.players)
            .field("actions", &self.actions)
            .finish_non_exhaustive()
    }
}

/// Outcome of best-response dynamics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrOutcome {
    /// The final profile (action indices).
    pub profile: Vec<usize>,
    /// Whether the dynamics reached a fixed point (a pure NE).
    pub converged: bool,
    /// Full sweeps performed.
    pub rounds: usize,
}

impl<A> FiniteGame<A> {
    /// Creates a game.
    ///
    /// `utility(player, profile)` must be defined for every profile of
    /// action indices.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidConfig`] if there are no players or no
    /// actions.
    pub fn new(
        players: usize,
        actions: Vec<A>,
        utility: impl Fn(usize, &[usize]) -> f64 + Send + Sync + 'static,
    ) -> Result<Self, GameError> {
        if players == 0 {
            return Err(GameError::InvalidConfig("need at least one player".into()));
        }
        if actions.is_empty() {
            return Err(GameError::InvalidConfig("need at least one action".into()));
        }
        Ok(FiniteGame { players, actions, utility: Box::new(utility) })
    }

    /// Number of players.
    #[must_use]
    pub fn player_count(&self) -> usize {
        self.players
    }

    /// The shared action set.
    #[must_use]
    pub fn actions(&self) -> &[A] {
        &self.actions
    }

    fn validate_profile(&self, profile: &[usize]) {
        assert_eq!(profile.len(), self.players, "profile length must equal player count"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        assert!( // PANIC-POLICY: documented # Panics contract (programmer-error guard)
            profile.iter().all(|&a| a < self.actions.len()),
            "profile contains an out-of-range action index"
        );
    }

    /// Utility of `player` under `profile`.
    ///
    /// # Panics
    ///
    /// Panics on a malformed profile or player index.
    #[must_use]
    pub fn utility_of(&self, player: usize, profile: &[usize]) -> f64 {
        self.validate_profile(profile);
        assert!(player < self.players, "player index out of range"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        (self.utility)(player, profile)
    }

    /// Sum of all players' utilities under `profile`.
    ///
    /// # Panics
    ///
    /// Panics on a malformed profile.
    #[must_use]
    pub fn social_welfare(&self, profile: &[usize]) -> f64 {
        (0..self.players).map(|i| self.utility_of(i, profile)).sum()
    }

    /// `player`'s best response to the others' actions in `profile`
    /// (its own entry is ignored). Ties break toward the *current* action,
    /// so best-response dynamics cannot oscillate between equal optima.
    ///
    /// # Panics
    ///
    /// Panics on a malformed profile or player index.
    #[must_use]
    pub fn best_response(&self, player: usize, profile: &[usize]) -> usize {
        self.validate_profile(profile);
        let mut work = profile.to_vec();
        let current = profile[player];
        let mut best = current;
        work[player] = current;
        let mut best_u = (self.utility)(player, &work);
        for a in 0..self.actions.len() {
            if a == current {
                continue;
            }
            work[player] = a;
            let u = (self.utility)(player, &work);
            if u > best_u {
                best_u = u;
                best = a;
            }
        }
        best
    }

    /// Whether `profile` is a pure-strategy Nash equilibrium.
    ///
    /// # Panics
    ///
    /// Panics on a malformed profile.
    #[must_use]
    pub fn is_pure_nash(&self, profile: &[usize]) -> bool {
        (0..self.players).all(|i| self.best_response(i, profile) == profile[i])
    }

    /// Runs sequential best-response dynamics from `start` for at most
    /// `max_rounds` full sweeps, stopping at the first fixed point.
    ///
    /// # Panics
    ///
    /// Panics on a malformed starting profile.
    #[must_use]
    pub fn best_response_dynamics(&self, start: &[usize], max_rounds: usize) -> BrOutcome {
        self.validate_profile(start);
        let mut profile = start.to_vec();
        for round in 0..max_rounds {
            let mut changed = false;
            for i in 0..self.players {
                let br = self.best_response(i, &profile);
                if br != profile[i] {
                    profile[i] = br;
                    changed = true;
                }
            }
            if !changed {
                return BrOutcome { profile, converged: true, rounds: round + 1 };
            }
        }
        BrOutcome { profile, converged: false, rounds: max_rounds }
    }

    /// Decodes profile `code` in mixed radix `actions.len()`.
    fn decode(&self, code: usize) -> Vec<usize> {
        let a = self.actions.len();
        let mut profile = vec![0usize; self.players];
        let mut c = code;
        for slot in profile.iter_mut() {
            *slot = c % a;
            c /= a;
        }
        profile
    }

    /// Exhaustively enumerates all pure Nash equilibria. Exponential in the
    /// player count — intended for the small instances of analyses/tests.
    #[must_use]
    pub fn enumerate_pure_nash(&self) -> Vec<Vec<usize>> {
        let total =
            self.actions.len().checked_pow(self.players as u32).expect("profile space too large"); // PANIC-POLICY: documented # Panics contract: profile-space overflow guard
        (0..total)
            .map(|code| self.decode(code))
            .filter(|profile| self.is_pure_nash(profile))
            .collect()
    }

    /// Builds the full payoff table — every profile with every player's
    /// utility, in profile-code order (player 0's action varies fastest) —
    /// fanning the independent evaluations over `threads` workers (`0` =
    /// auto from `MACGAME_THREADS`). Utilities are pure functions of the
    /// profile, so the table is identical for every thread count.
    ///
    /// Exponential in the player count, like [`Self::enumerate_pure_nash`]
    /// — which is exactly why the fan-out pays: for the MAC instantiation
    /// each cell costs a fixed-point solve.
    ///
    /// # Panics
    ///
    /// Panics if the profile space overflows `usize`.
    #[must_use]
    pub fn payoff_table(&self, threads: usize) -> Vec<(Vec<usize>, Vec<f64>)> {
        let a = self.actions.len();
        let players = self.players;
        let total = a.checked_pow(players as u32).expect("profile space too large"); // PANIC-POLICY: documented # Panics contract: profile-space overflow guard
        let codes: Vec<usize> = (0..total).collect();
        // Capture only the utility closure, not `self`, so the action type
        // `A` needs no `Sync` bound.
        let utility = &self.utility;
        rayon::map_in_order(codes, resolve_threads(threads), move |code| {
            let mut profile = vec![0usize; players];
            let mut c = code;
            for slot in profile.iter_mut() {
                *slot = c % a;
                c /= a;
            }
            let utilities = (0..players).map(|i| utility(i, &profile)).collect();
            (profile, utilities)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Prisoner's dilemma: action 0 = cooperate, 1 = defect.
    fn prisoners_dilemma() -> FiniteGame<&'static str> {
        FiniteGame::new(2, vec!["cooperate", "defect"], |i, profile| {
            let me = profile[i];
            let other = profile[1 - i];
            match (me, other) {
                (0, 0) => 3.0,
                (0, 1) => 0.0,
                (1, 0) => 5.0,
                (1, 1) => 1.0,
                _ => unreachable!(),
            }
        })
        .unwrap()
    }

    #[test]
    fn pd_has_defect_defect_as_unique_ne() {
        let g = prisoners_dilemma();
        assert!(g.is_pure_nash(&[1, 1]));
        assert!(!g.is_pure_nash(&[0, 0]));
        assert_eq!(g.enumerate_pure_nash(), vec![vec![1, 1]]);
        // And best-response dynamics find it from cooperation.
        let out = g.best_response_dynamics(&[0, 0], 10);
        assert!(out.converged);
        assert_eq!(out.profile, vec![1, 1]);
    }

    #[test]
    fn pd_welfare_is_maximized_off_equilibrium() {
        let g = prisoners_dilemma();
        assert!(g.social_welfare(&[0, 0]) > g.social_welfare(&[1, 1]));
    }

    #[test]
    fn coordination_game_has_two_equilibria() {
        let g = FiniteGame::new(2, vec![0u8, 1], |i, p| {
            if p[0] == p[1] {
                if p[i] == 1 { 2.0 } else { 1.0 }
            } else {
                0.0
            }
        })
        .unwrap();
        let nes = g.enumerate_pure_nash();
        assert_eq!(nes, vec![vec![0, 0], vec![1, 1]]);
    }

    #[test]
    fn tie_breaking_keeps_current_action() {
        // Constant utility: everything is a NE; BR must not churn.
        let g = FiniteGame::new(3, vec![0u8, 1, 2], |_, _| 1.0).unwrap();
        let out = g.best_response_dynamics(&[2, 0, 1], 5);
        assert!(out.converged);
        assert_eq!(out.profile, vec![2, 0, 1]);
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn payoff_table_covers_every_profile() {
        let g = prisoners_dilemma();
        let table = g.payoff_table(1);
        assert_eq!(table.len(), 4);
        // Code order: player 0 varies fastest.
        assert_eq!(table[0].0, vec![0, 0]);
        assert_eq!(table[1].0, vec![1, 0]);
        for (profile, us) in &table {
            for (i, &u) in us.iter().enumerate() {
                assert_eq!(u, g.utility_of(i, profile));
            }
        }
    }

    #[test]
    fn payoff_table_is_thread_count_invariant() {
        let g = FiniteGame::new(3, vec![0u8, 1, 2], |i, p| {
            (p[i] as f64) - 0.25 * p.iter().sum::<usize>() as f64
        })
        .unwrap();
        let serial = g.payoff_table(1);
        for threads in [2, 4] {
            assert_eq!(serial, g.payoff_table(threads), "threads = {threads}");
        }
    }

    #[test]
    fn validation() {
        assert!(FiniteGame::new(0, vec![1u8], |_, _| 0.0).is_err());
        assert!(FiniteGame::<u8>::new(2, vec![], |_, _| 0.0).is_err());
    }

    #[test]
    #[should_panic(expected = "out-of-range action")]
    fn bad_profile_panics() {
        let g = prisoners_dilemma();
        let _ = g.utility_of(0, &[0, 9]);
    }
}
