//! Neighbor topology induced by node positions and a common transmission
//! range.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::geometry::Point;

/// An undirected unit-disk neighbor graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    adjacency: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds the topology: nodes `i ≠ j` are neighbors iff their distance
    /// is at most `range` meters.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty or `range` is not positive.
    #[must_use]
    pub fn from_positions(positions: &[Point], range: f64) -> Self {
        assert!(!positions.is_empty(), "need at least one node"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        assert!(range > 0.0, "transmission range must be positive"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        let n = positions.len();
        let mut adjacency = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if positions[i].distance_to(&positions[j]) <= range {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                }
            }
        }
        Topology { adjacency }
    }

    /// Builds directly from adjacency lists (for synthetic graphs in
    /// tests/experiments). Lists are symmetrized and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if any neighbor index is out of range or self-referential.
    #[must_use]
    pub fn from_adjacency(lists: Vec<Vec<usize>>) -> Self {
        let n = lists.len();
        let mut adjacency = vec![Vec::new(); n];
        for (i, list) in lists.iter().enumerate() {
            for &j in list {
                assert!(j < n, "neighbor index {j} out of range"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
                assert_ne!(i, j, "self-loops are not allowed"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
                if !adjacency[i].contains(&j) {
                    adjacency[i].push(j);
                }
                if !adjacency[j].contains(&i) {
                    adjacency[j].push(i);
                }
            }
        }
        Topology { adjacency }
    }

    /// A path graph `0 − 1 − … − (n−1)`: the canonical chain topology of
    /// the paper's multi-hop discussion, and the slowest-converging case
    /// for TFT min-propagation (`diameter = n − 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn line(n: usize) -> Self {
        assert!(n > 0, "need at least one node"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        Topology::from_adjacency((0..n).map(|i| if i + 1 < n { vec![i + 1] } else { vec![] }).collect())
    }

    /// A `rows × cols` 4-neighbor grid, row-major node numbering
    /// (`node = r·cols + c`). Useful as a dense-but-not-complete fixture
    /// between the line and the clique.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        let mut lists = vec![Vec::new(); rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    lists[i].push(i + 1);
                }
                if r + 1 < rows {
                    lists[i].push(i + cols);
                }
            }
        }
        Topology::from_adjacency(lists)
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the graph has no nodes (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Neighbors of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adjacency[i]
    }

    /// Degree of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn degree(&self, i: usize) -> usize {
        self.adjacency[i].len()
    }

    /// The node's *contention-domain size*: itself plus its neighbors —
    /// the `n` of its local single-hop game.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn local_population(&self, i: usize) -> usize {
        self.degree(i) + 1
    }

    /// Whether every node can reach every other node.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.bfs_distances(0).iter().all(|d| d.is_some())
    }

    /// Hop distances from `source` (`None` for unreachable nodes).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    #[must_use]
    pub fn bfs_distances(&self, source: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.len()];
        dist[source] = Some(0);
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued nodes have distances"); // PANIC-POLICY: invariant: queued nodes have distances
            for &v in &self.adjacency[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Graph diameter (longest shortest path); `None` if disconnected.
    #[must_use]
    pub fn diameter(&self) -> Option<usize> {
        let mut best = 0;
        for s in 0..self.len() {
            for d in self.bfs_distances(s) {
                best = best.max(d?);
            }
        }
        Some(best)
    }

    /// Connected components, each sorted ascending.
    #[must_use]
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.len()];
        let mut out = Vec::new();
        for s in 0..self.len() {
            if seen[s] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([s]);
            seen[s] = true;
            while let Some(u) = queue.pop_front() {
                comp.push(u);
                for &v in &self.adjacency[u] {
                    if !seen[v] {
                        seen[v] = true;
                        queue.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// Nodes within range of `receiver` but *not* within range of
    /// `sender` — the hidden terminals threatening a `sender → receiver`
    /// transmission.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn hidden_terminals(&self, sender: usize, receiver: usize) -> Vec<usize> {
        self.adjacency[receiver]
            .iter()
            .copied()
            .filter(|&h| h != sender && !self.adjacency[sender].contains(&h))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Topology {
        // 0 - 1 - 2 - … - (n−1), unit spacing, range 1.
        let positions: Vec<Point> = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        Topology::from_positions(&positions, 1.0)
    }

    #[test]
    fn unit_disk_adjacency() {
        let t = line(4);
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.degree(2), 2);
        assert_eq!(t.local_population(1), 3);
    }

    #[test]
    fn connectivity_and_diameter() {
        let t = line(5);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn disconnected_graph_detected() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
        let t = Topology::from_positions(&positions, 1.0);
        assert!(!t.is_connected());
        assert_eq!(t.diameter(), None);
        assert_eq!(t.components().len(), 2);
    }

    #[test]
    fn from_adjacency_symmetrizes() {
        let t = Topology::from_adjacency(vec![vec![1], vec![], vec![1]]);
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert!(t.is_connected());
    }

    #[test]
    fn hidden_terminals_found() {
        // Line 0-1-2: node 2 is hidden from 0 w.r.t. receiver 1.
        let t = line(3);
        assert_eq!(t.hidden_terminals(0, 1), vec![2]);
        assert_eq!(t.hidden_terminals(1, 0), Vec::<usize>::new());
    }

    #[test]
    fn bfs_distances_on_line() {
        let t = line(4);
        let d = t.bfs_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn line_constructor_matches_unit_disk_line() {
        assert_eq!(Topology::line(4), line(4));
        assert_eq!(Topology::line(5).diameter(), Some(4));
        let single = Topology::line(1);
        assert_eq!(single.len(), 1);
        assert_eq!(single.degree(0), 0);
    }

    #[test]
    fn grid_constructor_adjacency_and_diameter() {
        let g = Topology::grid(2, 3);
        assert_eq!(g.len(), 6);
        // Corner, edge, and interior degrees of a 2×3 grid.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2, 4]);
        assert_eq!(g.neighbors(4), &[1, 3, 5]);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(3));
        // Degenerate grids collapse to lines.
        assert_eq!(Topology::grid(1, 4), Topology::line(4));
        assert_eq!(Topology::grid(4, 1), Topology::line(4));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_line_rejected() {
        let _ = Topology::line(0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn empty_grid_rejected() {
        let _ = Topology::grid(0, 3);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let _ = Topology::from_adjacency(vec![vec![0]]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_rejected() {
        let _ = Topology::from_positions(&[Point::new(0.0, 0.0)], 0.0);
    }
}
