//! Evolutionary population dynamics over strategies.
//!
//! Axelrod's second question: a strategy that wins one tournament may
//! still fail to *invade* or *persist* in a population. This module runs
//! discrete-time replicator dynamics over the pairwise payoff matrix a
//! [`crate::tournament::round_robin`] produces: strategy shares grow in
//! proportion to their payoff against the current population mix,
//!
//! ```text
//! x_i ← x_i · f_i(x) / f̄(x),   f_i(x) = Σ_j x_j·π(i, j)
//! ```
//!
//! Payoffs `π` must be positive for the ratio form; callers with possibly
//! negative payoff matrices can shift them uniformly (a positive affine
//! shift does not change the dynamics' fixed points' stability ordering
//! for the discrete replicator used here, but it does change speeds —
//! [`replicator`] therefore shifts internally and reports it).

use serde::{Deserialize, Serialize};

use crate::error::GameError;
use crate::tournament::TournamentResult;

/// A population state: one share per strategy, summing to 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationState {
    /// Strategy shares.
    pub shares: Vec<f64>,
}

impl PopulationState {
    /// The uniform mix over `k` strategies.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn uniform(k: usize) -> Self {
        assert!(k > 0, "need at least one strategy"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        PopulationState { shares: vec![1.0 / k as f64; k] }
    }

    /// Share of strategy `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn share(&self, i: usize) -> f64 {
        self.shares[i]
    }

    /// Index of the most common strategy.
    ///
    /// # Panics
    ///
    /// Panics on an empty state (unreachable through constructors).
    #[must_use]
    pub fn dominant(&self) -> usize {
        self.shares
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("nonempty") // PANIC-POLICY: invariant: nonempty
            .0
    }
}

/// Trace of a replicator run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatorTrace {
    /// Strategy names (from the tournament result).
    pub names: Vec<String>,
    /// Population state per generation, starting with the initial state.
    pub generations: Vec<PopulationState>,
    /// The uniform payoff shift applied to make the matrix positive.
    pub shift: f64,
}

impl ReplicatorTrace {
    /// The final population state.
    ///
    /// # Panics
    ///
    /// Never — the initial state is always recorded.
    #[must_use]
    pub fn final_state(&self) -> &PopulationState {
        self.generations.last().expect("initial state always present") // PANIC-POLICY: invariant: initial state always present
    }

    /// Shares below this threshold count as extinct.
    pub const EXTINCTION: f64 = 1e-3;

    /// Names of strategies that went (effectively) extinct.
    #[must_use]
    pub fn extinct(&self) -> Vec<&str> {
        self.final_state()
            .shares
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s < Self::EXTINCTION)
            .map(|(i, _)| self.names[i].as_str())
            .collect()
    }
}

/// Runs `generations` steps of discrete replicator dynamics from `start`
/// over the tournament's pairwise payoff matrix.
///
/// # Errors
///
/// Returns [`GameError::InvalidConfig`] if `start` does not match the
/// tournament's strategy count, has negative shares, or does not sum to 1
/// (within 1e-9).
pub fn replicator(
    tournament: &TournamentResult,
    start: &PopulationState,
    generations: usize,
) -> Result<ReplicatorTrace, GameError> {
    let k = tournament.names.len();
    if start.shares.len() != k {
        return Err(GameError::InvalidConfig(format!(
            "{} shares for {k} strategies",
            start.shares.len()
        )));
    }
    if start.shares.iter().any(|&s| s < 0.0) {
        return Err(GameError::InvalidConfig("shares must be non-negative".into()));
    }
    let total: f64 = start.shares.iter().sum();
    if (total - 1.0).abs() > 1e-9 {
        return Err(GameError::InvalidConfig(format!("shares must sum to 1 (got {total})")));
    }
    // Shift the payoff matrix positive for the ratio-form replicator.
    let min_payoff = tournament
        .scores
        .iter()
        .flatten()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let shift = if min_payoff <= 0.0 { -min_payoff + 1.0 } else { 0.0 };

    let mut state = start.clone();
    let mut trace = vec![state.clone()];
    for _ in 0..generations {
        let fitness: Vec<f64> = (0..k)
            .map(|i| {
                (0..k)
                    .map(|j| state.shares[j] * (tournament.scores[i][j] + shift))
                    .sum::<f64>()
            })
            .collect();
        let mean: f64 =
            (0..k).map(|i| state.shares[i] * fitness[i]).sum::<f64>();
        if mean <= 0.0 {
            break; // degenerate: population has no fitness mass left
        }
        let mut next: Vec<f64> =
            (0..k).map(|i| state.shares[i] * fitness[i] / mean).collect();
        // Renormalize against floating-point drift.
        let norm: f64 = next.iter().sum();
        next.iter_mut().for_each(|s| *s /= norm);
        state = PopulationState { shares: next };
        trace.push(state.clone());
    }
    Ok(ReplicatorTrace { names: tournament.names.clone(), generations: trace, shift })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::efficient_ne;
    use crate::strategy::{Constant, GenerousTft, Tft};
    use crate::tournament::{round_robin, Entrant};
    use crate::GameConfig;

    fn toy_tournament(scores: Vec<Vec<f64>>) -> TournamentResult {
        let k = scores.len();
        TournamentResult {
            names: (0..k).map(|i| format!("s{i}")).collect(),
            scores,
            stages: 1,
        }
    }

    #[test]
    fn shares_stay_normalized() {
        let t = toy_tournament(vec![vec![3.0, 0.0], vec![5.0, 1.0]]);
        let trace = replicator(&t, &PopulationState::uniform(2), 50).unwrap();
        for state in &trace.generations {
            let total: f64 = state.shares.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(state.shares.iter().all(|&s| s >= 0.0));
        }
    }

    #[test]
    fn prisoners_dilemma_defection_takes_over() {
        // PD payoff matrix (row player): defect strictly dominates.
        let t = toy_tournament(vec![vec![3.0, 0.0], vec![5.0, 1.0]]);
        let trace = replicator(&t, &PopulationState::uniform(2), 200).unwrap();
        assert_eq!(trace.final_state().dominant(), 1);
        assert_eq!(trace.extinct(), vec!["s0"]);
    }

    #[test]
    fn neutral_matrix_is_a_fixed_point() {
        let t = toy_tournament(vec![vec![2.0, 2.0], vec![2.0, 2.0]]);
        let start = PopulationState { shares: vec![0.3, 0.7] };
        let trace = replicator(&t, &start, 20).unwrap();
        for state in &trace.generations {
            assert!((state.share(0) - 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_payoffs_are_shifted() {
        let t = toy_tournament(vec![vec![-1.0, -3.0], vec![-0.5, -2.0]]);
        let trace = replicator(&t, &PopulationState::uniform(2), 50).unwrap();
        assert!(trace.shift > 0.0);
        // Row 1 dominates row 0 entrywise; it must take over.
        assert_eq!(trace.final_state().dominant(), 1);
    }

    #[test]
    fn mac_game_population_dynamics() {
        // Evolutionary check on the real MAC-game tournament: the blunt
        // aggressor (dominated in a reciprocal field) must lose ground.
        let template = GameConfig::builder(2).discount(0.999).build().unwrap();
        let two = GameConfig::builder(2).build().unwrap();
        let w_star = efficient_ne(&two).unwrap().window;
        let field: Vec<Entrant> = vec![
            Entrant::new("tft", move || Box::new(Tft::new(w_star))),
            Entrant::new("gtft", move || Box::new(GenerousTft::try_new(w_star, 2, 0.9).expect("valid GTFT parameters"))),
            Entrant::new("aggressor", move || {
                Box::new(Constant::new((w_star / 8).max(1)))
            }),
        ];
        let tournament = round_robin(&field, &template, 25).unwrap();
        let trace = replicator(&tournament, &PopulationState::uniform(3), 500).unwrap();
        let agg_idx = trace.names.iter().position(|n| n == "aggressor").unwrap();
        let final_share = trace.final_state().share(agg_idx);
        let initial_share = 1.0 / 3.0;
        assert!(
            final_share < initial_share,
            "aggressor share grew: {final_share}"
        );
    }

    #[test]
    fn validation() {
        let t = toy_tournament(vec![vec![1.0, 1.0], vec![1.0, 1.0]]);
        let bad_len = PopulationState { shares: vec![1.0] };
        assert!(replicator(&t, &bad_len, 5).is_err());
        let bad_sum = PopulationState { shares: vec![0.3, 0.3] };
        assert!(replicator(&t, &bad_sum, 5).is_err());
        let negative = PopulationState { shares: vec![1.5, -0.5] };
        assert!(replicator(&t, &negative, 5).is_err());
    }
}
