//! The spatial slot-level simulator: multi-hop contention with hidden
//! terminals and (optionally) node mobility.
//!
//! Extends the single-hop slot abstraction of `macgame_sim` to a plane:
//! a transmission `t → r` (receiver drawn uniformly among `t`'s current
//! neighbors) succeeds iff no *other* transmitter is within range of `r`
//! and no co-transmitter is within range of `t`. Failures caused only by
//! transmitters `r` hears but `t` does not are **hidden-terminal losses**
//! (the `1 − p_hn` of paper Section VI.A); the sender cannot distinguish
//! them from ordinary collisions, so both escalate its backoff.

use macgame_dcf::{DcfParams, MicroSecs, UtilityParams};
use macgame_sim::Node;
use macgame_telemetry as telemetry;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::error::MultihopError;
use crate::geometry::Point;
use crate::mobility::{Mobility, WaypointConfig};
use crate::topology::Topology;

/// Configuration of a spatial simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialConfig {
    /// Protocol parameters (the paper's multi-hop scenario uses RTS/CTS).
    pub params: DcfParams,
    /// Utility parameters for payoff accounting.
    pub utility: UtilityParams,
    /// Common transmission range in meters (paper: 250 m).
    pub range: f64,
    /// Mobility model; `None` freezes nodes at their initial placement.
    pub mobility: Option<WaypointConfig>,
    /// How often positions/topology are refreshed during a run.
    pub topology_refresh: MicroSecs,
    /// RNG seed.
    pub seed: u64,
}

impl SpatialConfig {
    /// The paper's Section VII.B scenario (without the node count, which
    /// [`SpatialEngine::new`] takes separately): RTS/CTS, 250 m range,
    /// random waypoint `U[0, 5]` m/s in 1 km², 1 s topology refresh.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        SpatialConfig {
            params: DcfParams::builder()
                .access_mode(macgame_dcf::AccessMode::RtsCts)
                .build()
                .expect("paper parameters are valid"), // PANIC-POLICY: constant parameters are valid by construction
            utility: UtilityParams::default(),
            range: 250.0,
            mobility: Some(WaypointConfig::paper()),
            topology_refresh: MicroSecs::from_seconds(1.0),
            seed,
        }
    }
}

/// Per-node hidden-terminal accounting (on top of the basic
/// attempts/successes/collisions of [`macgame_sim::NodeStats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HiddenStats {
    /// Attempts with no co-transmitter in the sender's own range
    /// (i.e. attempts "exposed" only to hidden terminals).
    pub exposed_attempts: u64,
    /// Of those, attempts lost to a hidden terminal at the receiver.
    pub hidden_losses: u64,
}

impl HiddenStats {
    /// Estimate of the paper's degradation factor `p_hn`: the fraction of
    /// hidden-exposed attempts that *survive*. `None` with no data.
    #[must_use]
    pub fn p_hn(&self) -> Option<f64> {
        if self.exposed_attempts == 0 {
            None
        } else {
            Some(1.0 - self.hidden_losses as f64 / self.exposed_attempts as f64)
        }
    }
}

/// Measurements from a spatial run interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialReport {
    /// Per-node attempt/success/collision counts for the interval.
    pub node_stats: Vec<macgame_sim::NodeStats>,
    /// Per-node hidden-terminal accounting for the interval.
    pub hidden: Vec<HiddenStats>,
    /// Global (scheduler) time elapsed.
    pub elapsed: MicroSecs,
    /// Per-node *locally observed* channel time: each slot costs a node
    /// `T_s`/`T_c`/σ according to what happened in its own neighborhood.
    /// This respects spatial reuse — a quiet region accumulates idle time
    /// while a distant busy one accumulates frame time — and is the
    /// denominator of per-node payoff rates.
    pub local_elapsed: Vec<MicroSecs>,
    /// Slots simulated.
    pub slots: u64,
}

impl SpatialReport {
    /// Node `i`'s measured payoff rate `(n_s·g − n_e·e)/t_i` per µs of its
    /// locally observed channel time.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty or `node` out of range.
    #[must_use]
    pub fn payoff_rate(&self, node: usize, utility: &UtilityParams) -> f64 {
        let t = self.local_elapsed[node].value();
        assert!(t > 0.0, "empty interval"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        let s = &self.node_stats[node];
        (s.successes as f64 * utility.gain - s.attempts as f64 * utility.cost) / t
    }

    /// Sum of all nodes' payoff rates.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    #[must_use]
    pub fn global_payoff_rate(&self, utility: &UtilityParams) -> f64 {
        (0..self.node_stats.len()).map(|i| self.payoff_rate(i, utility)).sum()
    }

    /// Network-wide `p_hn` estimate: pooled over all nodes.
    #[must_use]
    pub fn network_p_hn(&self) -> Option<f64> {
        let exposed: u64 = self.hidden.iter().map(|h| h.exposed_attempts).sum();
        let lost: u64 = self.hidden.iter().map(|h| h.hidden_losses).sum();
        if exposed == 0 {
            None
        } else {
            Some(1.0 - lost as f64 / exposed as f64)
        }
    }
}

/// The spatial simulation engine.
#[derive(Debug, Clone)]
pub struct SpatialEngine {
    config: SpatialConfig,
    mobility: Option<Mobility>,
    positions: Vec<Point>,
    topology: Topology,
    nodes: Vec<Node>,
    hidden: Vec<HiddenStats>,
    local_clock: Vec<MicroSecs>,
    rng: ChaCha8Rng,
    clock: MicroSecs,
    slots: u64,
    since_refresh: MicroSecs,
}

impl SpatialEngine {
    /// Creates an engine with `n` nodes on window profile `windows`
    /// (length `n`). Positions come from the mobility model's initial
    /// placement, or uniformly at random in the paper arena when mobility
    /// is disabled.
    ///
    /// # Errors
    ///
    /// Returns [`MultihopError::InvalidInput`] for an empty network, a
    /// window/n mismatch, or a zero window.
    pub fn new(n: usize, windows: &[u32], config: SpatialConfig) -> Result<Self, MultihopError> {
        if n == 0 {
            return Err(MultihopError::InvalidInput("need at least one node".into()));
        }
        if windows.len() != n {
            return Err(MultihopError::InvalidInput(format!(
                "{} windows for {n} nodes",
                windows.len()
            )));
        }
        if windows.contains(&0) {
            return Err(MultihopError::InvalidInput("windows must be at least 1".into()));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let (mobility, positions) = match config.mobility {
            Some(wp) => {
                let m = Mobility::new(n, wp, config.seed.wrapping_add(1));
                let p = m.positions();
                (Some(m), p)
            }
            None => {
                let arena = crate::geometry::Arena::paper();
                (None, (0..n).map(|_| arena.random_point(&mut rng)).collect())
            }
        };
        let topology = Topology::from_positions(&positions, config.range);
        let m = config.params.max_backoff_stage();
        let nodes = windows.iter().map(|&w| Node::new(w, m, &mut rng)).collect();
        Ok(SpatialEngine {
            config,
            mobility,
            positions,
            topology,
            nodes,
            hidden: vec![HiddenStats::default(); n],
            local_clock: vec![MicroSecs::ZERO; n],
            rng,
            clock: MicroSecs::ZERO,
            slots: 0,
            since_refresh: MicroSecs::ZERO,
        })
    }

    /// Creates an engine with explicit (static) positions.
    ///
    /// # Errors
    ///
    /// Same as [`SpatialEngine::new`], plus a positions/windows length
    /// mismatch.
    pub fn with_positions(
        positions: Vec<Point>,
        windows: &[u32],
        config: SpatialConfig,
    ) -> Result<Self, MultihopError> {
        if positions.len() != windows.len() {
            return Err(MultihopError::InvalidInput(format!(
                "{} positions for {} windows",
                positions.len(),
                windows.len()
            )));
        }
        let mut engine = SpatialEngine::new(positions.len(), windows, config)?;
        engine.topology = Topology::from_positions(&positions, engine.config.range);
        engine.positions = positions;
        engine.mobility = None;
        Ok(engine)
    }

    /// The current topology snapshot.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The current positions.
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Total simulated channel time.
    #[must_use]
    pub fn clock(&self) -> MicroSecs {
        self.clock
    }

    /// Applies a new window profile.
    ///
    /// # Errors
    ///
    /// Returns [`MultihopError::InvalidInput`] on length mismatch or zero
    /// window.
    pub fn set_windows(&mut self, windows: &[u32]) -> Result<(), MultihopError> {
        if windows.len() != self.nodes.len() {
            return Err(MultihopError::InvalidInput(format!(
                "{} windows for {} nodes",
                windows.len(),
                self.nodes.len()
            )));
        }
        if windows.contains(&0) {
            return Err(MultihopError::InvalidInput("windows must be at least 1".into()));
        }
        for (node, &w) in self.nodes.iter_mut().zip(windows) {
            if node.window() != w {
                node.set_window(w, &mut self.rng);
            }
        }
        Ok(())
    }

    /// Sets one node's window.
    ///
    /// # Errors
    ///
    /// Returns [`MultihopError::InvalidInput`] for a bad index or window.
    pub fn set_window(&mut self, node: usize, window: u32) -> Result<(), MultihopError> {
        if node >= self.nodes.len() {
            return Err(MultihopError::InvalidInput(format!("node {node} out of range")));
        }
        if window == 0 {
            return Err(MultihopError::InvalidInput("windows must be at least 1".into()));
        }
        self.nodes[node].set_window(window, &mut self.rng);
        Ok(())
    }

    fn refresh_topology(&mut self) {
        if let Some(mobility) = &mut self.mobility {
            mobility.step(self.since_refresh);
            self.positions = mobility.positions();
            self.topology = Topology::from_positions(&self.positions, self.config.range);
        }
        self.since_refresh = MicroSecs::ZERO;
    }

    /// Simulates one slot.
    fn step(&mut self) {
        let transmitters: Vec<usize> =
            (0..self.nodes.len()).filter(|&i| self.nodes[i].wants_to_transmit()).collect();
        let is_tx = {
            let mut flags = vec![false; self.nodes.len()];
            for &t in &transmitters {
                flags[t] = true;
            }
            flags
        };
        let mut any_success = false;
        let mut succeeded = vec![false; self.nodes.len()];
        // Resolve each transmission.
        for &t in &transmitters {
            let neighbors = self.topology.neighbors(t);
            if neighbors.is_empty() {
                // No receiver in range: trivially "successful" broadcast,
                // keeps isolated nodes' state machines live.
                self.nodes[t].on_success(&mut self.rng);
                succeeded[t] = true;
                any_success = true;
                continue;
            }
            let receiver = neighbors[self.rng.gen_range(0..neighbors.len())];
            let visible = neighbors.iter().any(|&j| is_tx[j]);
            let hidden_hit = !visible
                && self
                    .topology
                    .neighbors(receiver)
                    .iter()
                    .any(|&j| j != t && is_tx[j] && !neighbors.contains(&j));
            if visible {
                self.nodes[t].on_collision(&mut self.rng);
            } else if hidden_hit {
                self.hidden[t].exposed_attempts += 1;
                self.hidden[t].hidden_losses += 1;
                self.nodes[t].on_collision(&mut self.rng);
            } else {
                self.hidden[t].exposed_attempts += 1;
                self.nodes[t].on_success(&mut self.rng);
                succeeded[t] = true;
                any_success = true;
            }
        }
        // Everyone else steps its counter.
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !is_tx[i] {
                node.observe_slot();
            }
        }
        // Advance the clocks. Each node's *local* channel time reflects its
        // own neighborhood: a slot costs it T_s when it hears a successful
        // frame (or sent one), T_c when it only hears colliding/failed
        // attempts, and σ when its neighborhood is silent — so spatially
        // separated regions account their airtime independently.
        let timings = self.config.params.timings();
        let sigma = self.config.params.sigma();
        for i in 0..self.nodes.len() {
            let hears_tx = is_tx[i] || self.topology.neighbors(i).iter().any(|&j| is_tx[j]);
            let hears_success =
                succeeded[i] || self.topology.neighbors(i).iter().any(|&j| succeeded[j]);
            self.local_clock[i] += if hears_success {
                timings.success_time
            } else if hears_tx {
                timings.collision_time
            } else {
                sigma
            };
        }
        // The global (scheduler) clock keeps the coarse network-wide slot.
        let dt = if transmitters.is_empty() {
            sigma
        } else if any_success {
            timings.success_time
        } else {
            timings.collision_time
        };
        self.clock += dt;
        self.since_refresh += dt;
        self.slots += 1;
        if self.since_refresh >= self.config.topology_refresh {
            self.refresh_topology();
        }
    }

    /// Runs until at least `duration` elapses, reporting the interval.
    #[must_use]
    pub fn run_for(&mut self, duration: MicroSecs) -> SpatialReport {
        let _span = telemetry::span("multihop.spatial.run");
        let stats_base: Vec<_> = self.nodes.iter().map(|n| *n.stats()).collect();
        let hidden_base = self.hidden.clone();
        let local_base = self.local_clock.clone();
        let slots_base = self.slots;
        let clock_base = self.clock;
        let deadline = self.clock + duration;
        while self.clock < deadline {
            self.step();
        }
        let report = SpatialReport {
            node_stats: self
                .nodes
                .iter()
                .zip(&stats_base)
                .map(|(n, b)| n.stats().delta_since(b))
                .collect(),
            hidden: self
                .hidden
                .iter()
                .zip(&hidden_base)
                .map(|(h, b)| HiddenStats {
                    exposed_attempts: h.exposed_attempts - b.exposed_attempts,
                    hidden_losses: h.hidden_losses - b.hidden_losses,
                })
                .collect(),
            elapsed: self.clock - clock_base,
            local_elapsed: self
                .local_clock
                .iter()
                .zip(&local_base)
                .map(|(a, b)| *a - *b)
                .collect(),
            slots: self.slots - slots_base,
        };
        telemetry::counter("multihop.spatial.runs", 1);
        telemetry::counter("multihop.spatial.slots", report.slots);
        telemetry::counter(
            "multihop.spatial.hidden_losses",
            report.hidden.iter().map(|h| h.hidden_losses).sum(),
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn static_config(seed: u64) -> SpatialConfig {
        SpatialConfig { mobility: None, ..SpatialConfig::paper(seed) }
    }

    fn line_positions(n: usize, spacing: f64) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64 * spacing, 500.0)).collect()
    }

    #[test]
    fn isolated_pair_behaves_like_single_hop() {
        // Two nodes in range of each other and nobody else: no hidden
        // terminals, p_hn = 1.
        let config = static_config(3);
        let engine = SpatialEngine::with_positions(
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
            &[32, 32],
            config.clone(),
        );
        let mut engine = engine.unwrap();
        let report = engine.run_for(MicroSecs::from_seconds(20.0));
        assert_eq!(report.network_p_hn(), Some(1.0));
        assert!(report.node_stats[0].successes > 0);
    }

    #[test]
    fn chain_exhibits_hidden_losses() {
        // 0-1-2 line with 200 m spacing and 250 m range: 0 and 2 are
        // mutually hidden; transmissions to the middle node suffer.
        let config = static_config(5);
        let mut engine = SpatialEngine::with_positions(
            line_positions(3, 200.0),
            &[16, 16, 16],
            config,
        )
        .unwrap();
        let report = engine.run_for(MicroSecs::from_seconds(50.0));
        let p_hn = report.network_p_hn().expect("plenty of exposed attempts");
        assert!(p_hn < 0.999, "expected hidden losses, p_hn = {p_hn}");
        let lost: u64 = report.hidden.iter().map(|h| h.hidden_losses).sum();
        assert!(lost > 0);
    }

    #[test]
    fn conservation_laws() {
        let config = static_config(9);
        let mut engine =
            SpatialEngine::with_positions(line_positions(4, 150.0), &[32; 4], config).unwrap();
        let report = engine.run_for(MicroSecs::from_seconds(10.0));
        for (i, s) in report.node_stats.iter().enumerate() {
            assert_eq!(
                s.attempts,
                s.successes + s.collisions,
                "node {i}: attempts must partition"
            );
            assert!(report.hidden[i].hidden_losses <= report.hidden[i].exposed_attempts);
        }
        assert!(report.elapsed.value() >= 10.0 * 1e6);
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = |seed| {
            let mut e = SpatialEngine::new(20, &[64; 20], SpatialConfig::paper(seed)).unwrap();
            e.run_for(MicroSecs::from_seconds(3.0))
        };
        assert_eq!(mk(11), mk(11));
        assert_ne!(mk(11), mk(12));
    }

    #[test]
    fn mobility_changes_topology_over_time() {
        let mut engine = SpatialEngine::new(30, &[64; 30], SpatialConfig::paper(4)).unwrap();
        let before = engine.topology().clone();
        let _ = engine.run_for(MicroSecs::from_seconds(120.0));
        let after = engine.topology().clone();
        assert_ne!(before, after, "two minutes at ≤5 m/s must alter the neighbor graph");
    }

    #[test]
    fn aggressive_node_still_wins_locally() {
        // Two contenders near each other: smaller window wins more (the
        // single-hop Lemma 1 survives spatially).
        let config = static_config(8);
        let mut engine = SpatialEngine::with_positions(
            vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0), Point::new(100.0, 0.0)],
            &[16, 64, 64],
            config,
        )
        .unwrap();
        let report = engine.run_for(MicroSecs::from_seconds(30.0));
        assert!(report.node_stats[0].successes > report.node_stats[1].successes);
    }

    #[test]
    fn validation_errors() {
        let c = static_config(0);
        assert!(SpatialEngine::new(0, &[], c.clone()).is_err());
        assert!(SpatialEngine::new(2, &[8], c.clone()).is_err());
        assert!(SpatialEngine::new(2, &[8, 0], c.clone()).is_err());
        let mut e = SpatialEngine::new(2, &[8, 8], c.clone()).unwrap();
        assert!(e.set_windows(&[1]).is_err());
        assert!(e.set_windows(&[0, 1]).is_err());
        assert!(e.set_window(5, 4).is_err());
        assert!(e.set_window(0, 0).is_err());
        assert!(
            SpatialEngine::with_positions(vec![Point::new(0.0, 0.0)], &[8, 8], c).is_err()
        );
    }
}
