//! Sequential cheater-detection rules over noisy MAC observations.
//!
//! Two complementary statistics, both emitting typed [`Verdict`]s:
//!
//! * [`CusumDetector`] — a Page-style cumulative-sum accumulator over
//!   per-node attempt counters. Each observed stage contributes the
//!   node's measured rate excess over the honest reference rate (minus a
//!   slack `allowance`), floored at zero; a node whose score crosses the
//!   threshold `h` is flagged. This is the classical sequential test for
//!   a persistent upward shift in transmission rate and works directly
//!   on [`macgame_sim::NodeStats`] counters — no window inversion needed.
//! * [`WindowedDetector`] — a windowed threshold rule over
//!   [`macgame_sim::estimate_windows_partial`] output: keep the last
//!   `memory` observed windows per node and flag when their mean drops
//!   below `threshold × w_ref`. The statistic reported is the ratio
//!   `mean(Ŵ)/w_ref`, so thresholds are scale-free in `(0, 1]`.
//!
//! Threshold semantics are strict on both rules (`>` for CUSUM scores,
//! `<` for window ratios): under exact observation of an honest
//! population the CUSUM score is identically `0` and the window ratio
//! identically `1`, so *no* valid threshold can produce a false
//! positive. ROC sweeps therefore measure the cost of noise, not of the
//! rule itself.

use macgame_sim::{NodeStats, WindowEstimate};
use serde::{Deserialize, Serialize};

use crate::error::GameError;

/// A detection verdict: `node` was flagged because `statistic` crossed
/// `threshold` after observing `slots_observed` channel slots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// The flagged node's index.
    pub node: usize,
    /// The detector statistic at the moment of crossing (CUSUM score, or
    /// windowed mean-window ratio).
    pub statistic: f64,
    /// The threshold the statistic crossed.
    pub threshold: f64,
    /// Total channel slots observed by the detector when it fired. In
    /// the repeated-game plane, where strategies see per-stage
    /// observations rather than slot counters, this counts stages.
    pub slots_observed: u64,
}

/// Page's CUSUM rule over per-node attempt rates.
#[derive(Debug, Clone, PartialEq)]
pub struct CusumDetector {
    tau_ref: f64,
    allowance: f64,
    threshold: f64,
    scores: Vec<f64>,
    slots: u64,
}

impl CusumDetector {
    /// Creates a detector for `nodes` nodes against the honest reference
    /// rate `tau_ref` (the symmetric fixed-point `τ` at the cooperative
    /// window), with slack `allowance` and decision threshold
    /// `threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidConfig`] if `nodes == 0`, `tau_ref`
    /// is not in `(0, 1)`, `allowance` is negative or non-finite, or
    /// `threshold` is not strictly positive and finite.
    pub fn try_new(
        nodes: usize,
        tau_ref: f64,
        allowance: f64,
        threshold: f64,
    ) -> Result<Self, GameError> {
        if nodes == 0 {
            return Err(GameError::InvalidConfig("need at least one node".into()));
        }
        if !(tau_ref > 0.0 && tau_ref < 1.0) {
            return Err(GameError::InvalidConfig(format!(
                "reference rate must be in (0, 1), got {tau_ref}"
            )));
        }
        if !allowance.is_finite() || allowance < 0.0 {
            return Err(GameError::InvalidConfig(format!(
                "allowance must be finite and non-negative, got {allowance}"
            )));
        }
        if !threshold.is_finite() || threshold <= 0.0 {
            return Err(GameError::InvalidConfig(format!(
                "CUSUM threshold must be finite and positive, got {threshold}"
            )));
        }
        Ok(CusumDetector { tau_ref, allowance, threshold, scores: vec![0.0; nodes], slots: 0 })
    }

    /// Feeds one observed stage of per-node counters measured over
    /// `slots` channel slots; returns the verdicts that fired this
    /// stage (a node already above threshold keeps firing until
    /// [`reset`](Self::reset)).
    ///
    /// A zero-slot stage carries no information and leaves every score
    /// untouched.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidConfig`] if `stats` does not match
    /// the detector's node count.
    pub fn observe_stage(
        &mut self,
        stats: &[NodeStats],
        slots: u64,
    ) -> Result<Vec<Verdict>, GameError> {
        if stats.len() != self.scores.len() {
            return Err(GameError::InvalidConfig(format!(
                "{} nodes observed, detector tracks {}",
                stats.len(),
                self.scores.len()
            )));
        }
        if slots == 0 {
            return Ok(Vec::new());
        }
        self.slots += slots;
        let mut verdicts = Vec::new();
        for (node, s) in stats.iter().enumerate() {
            let excess = s.tau_hat(slots) - self.tau_ref - self.allowance;
            self.scores[node] = (self.scores[node] + excess).max(0.0);
            if self.scores[node] > self.threshold {
                verdicts.push(Verdict {
                    node,
                    statistic: self.scores[node],
                    threshold: self.threshold,
                    slots_observed: self.slots,
                });
            }
        }
        Ok(verdicts)
    }

    /// The current CUSUM score of `node`, or `None` if out of range.
    #[must_use]
    pub fn statistic(&self, node: usize) -> Option<f64> {
        self.scores.get(node).copied()
    }

    /// The decision threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Clears `node`'s accumulated score (e.g. after punishment).
    /// Out-of-range indices are ignored.
    pub fn reset(&mut self, node: usize) {
        if let Some(s) = self.scores.get_mut(node) {
            *s = 0.0;
        }
    }
}

/// Windowed threshold rule over observed contention windows.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedDetector {
    w_ref: u32,
    memory: usize,
    threshold: f64,
    recent: Vec<Vec<f64>>,
    slots: u64,
}

impl WindowedDetector {
    /// Creates a detector for `nodes` nodes against the cooperative
    /// reference window `w_ref`, averaging the last `memory`
    /// observations and flagging when `mean(Ŵ)/w_ref < threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidConfig`] if `nodes == 0`,
    /// `w_ref == 0`, `memory == 0`, or `threshold` is outside `(0, 1]`.
    pub fn try_new(
        nodes: usize,
        w_ref: u32,
        memory: usize,
        threshold: f64,
    ) -> Result<Self, GameError> {
        if nodes == 0 {
            return Err(GameError::InvalidConfig("need at least one node".into()));
        }
        if w_ref == 0 {
            return Err(GameError::InvalidConfig("reference window must be positive".into()));
        }
        if memory == 0 {
            return Err(GameError::InvalidConfig("detector memory must be positive".into()));
        }
        if !(threshold.is_finite() && threshold > 0.0 && threshold <= 1.0) {
            return Err(GameError::InvalidConfig(format!(
                "window-ratio threshold must be in (0, 1], got {threshold}"
            )));
        }
        Ok(WindowedDetector {
            w_ref,
            memory,
            threshold,
            recent: vec![Vec::new(); nodes],
            slots: 0,
        })
    }

    /// Feeds one stage of observed windows (one per node, e.g. from an
    /// observation channel) measured over `slots` channel slots.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidConfig`] if `observed` does not match
    /// the detector's node count.
    pub fn observe_windows(
        &mut self,
        observed: &[u32],
        slots: u64,
    ) -> Result<Vec<Verdict>, GameError> {
        if observed.len() != self.recent.len() {
            return Err(GameError::InvalidConfig(format!(
                "{} windows observed, detector tracks {}",
                observed.len(),
                self.recent.len()
            )));
        }
        let values: Vec<Option<f64>> = observed.iter().map(|&w| Some(f64::from(w))).collect();
        Ok(self.ingest(&values, slots))
    }

    /// Feeds one stage of per-node window estimates from
    /// [`macgame_sim::estimate_windows_partial`]. A `None` (starved or
    /// fully-dropped peer) contributes no new observation for that node;
    /// its ring keeps its previous content. Saturated estimates are used
    /// as-is: a low-side clamp already means "at least this aggressive".
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidConfig`] if `estimates` does not
    /// match the detector's node count.
    pub fn observe_estimates(
        &mut self,
        estimates: &[Option<WindowEstimate>],
        slots: u64,
    ) -> Result<Vec<Verdict>, GameError> {
        if estimates.len() != self.recent.len() {
            return Err(GameError::InvalidConfig(format!(
                "{} estimates observed, detector tracks {}",
                estimates.len(),
                self.recent.len()
            )));
        }
        let values: Vec<Option<f64>> =
            estimates.iter().map(|e| e.map(|e| f64::from(e.window))).collect();
        Ok(self.ingest(&values, slots))
    }

    fn ingest(&mut self, values: &[Option<f64>], slots: u64) -> Vec<Verdict> {
        self.slots += slots;
        let mut verdicts = Vec::new();
        for (node, value) in values.iter().enumerate() {
            if let Some(w) = *value {
                let ring = &mut self.recent[node];
                ring.push(w);
                if ring.len() > self.memory {
                    ring.remove(0);
                }
            }
            // Decide only on a full memory: the rule is sequential — it
            // waits for `memory` observations before it can fire.
            if self.recent[node].len() == self.memory {
                // Ring is nonempty here (memory >= 1), so the statistic
                // is defined.
                if let Some(stat) = self.statistic(node) {
                    if stat < self.threshold {
                        verdicts.push(Verdict {
                            node,
                            statistic: stat,
                            threshold: self.threshold,
                            slots_observed: self.slots,
                        });
                    }
                }
            }
        }
        verdicts
    }

    /// The current statistic `mean(last memory Ŵ)/w_ref` for `node`, or
    /// `None` if the node is out of range or has no observations yet.
    #[must_use]
    pub fn statistic(&self, node: usize) -> Option<f64> {
        let ring = self.recent.get(node)?;
        if ring.is_empty() {
            return None;
        }
        let mean = ring.iter().sum::<f64>() / ring.len() as f64;
        Some(mean / f64::from(self.w_ref))
    }

    /// The mean observed window of `node` over its ring, or `None` if
    /// out of range or unobserved.
    #[must_use]
    pub fn mean_window(&self, node: usize) -> Option<f64> {
        let ring = self.recent.get(node)?;
        if ring.is_empty() {
            return None;
        }
        Some(ring.iter().sum::<f64>() / ring.len() as f64)
    }

    /// The decision threshold (a window ratio in `(0, 1]`).
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The number of nodes this detector tracks.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.recent.len()
    }

    /// Whether `node`'s ring holds a full `memory` of observations.
    #[must_use]
    pub fn warmed_up(&self, node: usize) -> bool {
        self.recent.get(node).is_some_and(|r| r.len() == self.memory)
    }

    /// Clears `node`'s observation ring. Out-of-range indices are
    /// ignored.
    pub fn reset(&mut self, node: usize) {
        if let Some(r) = self.recent.get_mut(node) {
            r.clear();
        }
    }

    /// Clears every node's observation ring (e.g. when a punishment
    /// phase ends and punishment-era observations would be stale).
    pub fn reset_all(&mut self) {
        for ring in &mut self.recent {
            ring.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(attempts: &[u64]) -> Vec<NodeStats> {
        attempts
            .iter()
            .map(|&a| NodeStats { attempts: a, successes: a / 2, collisions: a - a / 2 })
            .collect()
    }

    #[test]
    fn cusum_stays_silent_on_reference_rate() {
        // Exactly the reference rate: excess is -allowance <= 0, score
        // pinned at 0, no verdict at any positive threshold.
        let mut det = CusumDetector::try_new(3, 0.05, 0.01, 0.001).unwrap();
        for _ in 0..100 {
            let v = det.observe_stage(&stats(&[50, 50, 50]), 1000).unwrap();
            assert!(v.is_empty());
        }
        assert_eq!(det.statistic(0), Some(0.0));
    }

    #[test]
    fn cusum_flags_persistent_excess() {
        let mut det = CusumDetector::try_new(3, 0.05, 0.01, 0.1).unwrap();
        let mut fired = None;
        for stage in 0..100 {
            // Node 1 transmits at rate 0.15: excess 0.09 per stage.
            let v = det.observe_stage(&stats(&[50, 150, 50]), 1000).unwrap();
            if let Some(first) = v.first() {
                fired = Some((stage, *first));
                break;
            }
        }
        let (stage, verdict) = fired.expect("persistent cheater must be flagged");
        assert_eq!(verdict.node, 1);
        assert!(verdict.statistic > verdict.threshold);
        assert_eq!(verdict.slots_observed, (stage as u64 + 1) * 1000);
        // ~0.09 excess per stage crosses 0.1 on the second stage.
        assert_eq!(stage, 1);
    }

    #[test]
    fn cusum_reset_clears_score() {
        let mut det = CusumDetector::try_new(1, 0.05, 0.0, 0.5).unwrap();
        det.observe_stage(&stats(&[300]), 1000).unwrap();
        assert!(det.statistic(0).unwrap() > 0.0);
        det.reset(0);
        assert_eq!(det.statistic(0), Some(0.0));
    }

    #[test]
    fn cusum_zero_slot_stage_is_inert() {
        let mut det = CusumDetector::try_new(2, 0.05, 0.0, 0.5).unwrap();
        let v = det.observe_stage(&stats(&[0, 0]), 0).unwrap();
        assert!(v.is_empty());
        assert_eq!(det.statistic(0), Some(0.0));
    }

    #[test]
    fn cusum_validation() {
        assert!(CusumDetector::try_new(0, 0.05, 0.0, 0.1).is_err());
        assert!(CusumDetector::try_new(2, 0.0, 0.0, 0.1).is_err());
        assert!(CusumDetector::try_new(2, 1.0, 0.0, 0.1).is_err());
        assert!(CusumDetector::try_new(2, 0.05, -0.1, 0.1).is_err());
        assert!(CusumDetector::try_new(2, 0.05, 0.0, 0.0).is_err());
        let mut det = CusumDetector::try_new(2, 0.05, 0.0, 0.1).unwrap();
        assert!(det.observe_stage(&stats(&[1, 2, 3]), 100).is_err());
    }

    #[test]
    fn windowed_exact_honest_observation_never_fires() {
        // The zero-FP-by-construction invariant: exact observation of
        // the reference window keeps the statistic at exactly 1.0, and
        // 1.0 < θ is false for every θ in (0, 1].
        for &threshold in &[0.1, 0.5, 0.9999, 1.0] {
            let mut det = WindowedDetector::try_new(4, 64, 3, threshold).unwrap();
            for _ in 0..50 {
                let v = det.observe_windows(&[64, 64, 64, 64], 100).unwrap();
                assert!(v.is_empty(), "false positive at threshold {threshold}");
            }
            assert_eq!(det.statistic(0), Some(1.0));
        }
    }

    #[test]
    fn windowed_flags_a_cheater_after_warmup() {
        let mut det = WindowedDetector::try_new(2, 64, 4, 0.5).unwrap();
        for stage in 0..4u64 {
            let v = det.observe_windows(&[16, 64], 100).unwrap();
            if stage < 3 {
                assert!(v.is_empty(), "fired before the memory warmed up");
            } else {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].node, 0);
                assert!((v[0].statistic - 0.25).abs() < 1e-12);
                assert_eq!(v[0].slots_observed, 400);
            }
        }
    }

    #[test]
    fn windowed_none_estimates_do_not_advance_the_ring() {
        let mut det = WindowedDetector::try_new(2, 64, 2, 0.5).unwrap();
        let est = |w: u32| -> Option<WindowEstimate> {
            Some(WindowEstimate { window: w, tau_hat: 0.05, p_hat: 0.1, saturated: false })
        };
        det.observe_estimates(&[est(16), None], 100).unwrap();
        det.observe_estimates(&[est(16), None], 100).unwrap();
        assert!(det.warmed_up(0));
        assert!(!det.warmed_up(1), "unobserved node must not warm up");
        assert_eq!(det.statistic(1), None);
    }

    #[test]
    fn windowed_ring_is_bounded_and_recovers() {
        let mut det = WindowedDetector::try_new(1, 64, 2, 0.5).unwrap();
        for _ in 0..5 {
            det.observe_windows(&[8], 10).unwrap();
        }
        assert!(det.statistic(0).unwrap() < 0.5);
        // The cheater reverts; the bounded ring forgets the cheating era.
        for _ in 0..2 {
            det.observe_windows(&[64], 10).unwrap();
        }
        assert_eq!(det.statistic(0), Some(1.0));
    }

    #[test]
    fn windowed_reset_clears_rings() {
        let mut det = WindowedDetector::try_new(2, 64, 1, 0.5).unwrap();
        det.observe_windows(&[8, 8], 10).unwrap();
        det.reset_all();
        assert_eq!(det.statistic(0), None);
        assert_eq!(det.statistic(1), None);
        assert!(!det.warmed_up(0));
    }

    #[test]
    fn windowed_validation() {
        assert!(WindowedDetector::try_new(0, 64, 2, 0.5).is_err());
        assert!(WindowedDetector::try_new(2, 0, 2, 0.5).is_err());
        assert!(WindowedDetector::try_new(2, 64, 0, 0.5).is_err());
        assert!(WindowedDetector::try_new(2, 64, 2, 0.0).is_err());
        assert!(WindowedDetector::try_new(2, 64, 2, 1.5).is_err());
        let mut det = WindowedDetector::try_new(2, 64, 2, 0.5).unwrap();
        assert!(det.observe_windows(&[64], 10).is_err());
    }
}
