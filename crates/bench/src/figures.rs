//! Figures 2 and 3: normalized global payoff `U/C` versus the common
//! contention window.
//!
//! The paper plots, for several populations, the global discounted payoff
//! normalized by `C = g·T/(σ(1−δ))` as the (converged, common) CW varies —
//! Figure 2 for basic access, Figure 3 for RTS/CTS. The qualitative claims
//! the text makes about these figures are checked by
//! [`FigureSeries::shape`].

use macgame_dcf::fixedpoint::solve_symmetric;
use macgame_dcf::utility::normalized_global_payoff;
use macgame_dcf::{AccessMode, DcfParams, MicroSecs, UtilityParams};
use macgame_sim::{Engine, SimConfig};
use serde::{Deserialize, Serialize};

use crate::BenchError;

/// One `(window, U/C)` point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PayoffPoint {
    /// Common contention window.
    pub window: u32,
    /// Normalized global payoff `U/C = σ·Σ_i u_i / g`.
    pub u_over_c: f64,
}

/// One curve of Figure 2/3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Population `n`.
    pub n: usize,
    /// Access mode (Figure 2 = basic, Figure 3 = RTS/CTS).
    pub mode: AccessMode,
    /// Curve samples in increasing window order.
    pub points: Vec<PayoffPoint>,
}

/// Shape summary used to compare against the paper's qualitative claims.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FigureShape {
    /// The window maximizing `U/C` on the sampled grid.
    pub argmax_window: u32,
    /// Maximum `U/C`.
    pub max_value: f64,
    /// `U/C` at the grid's smallest window.
    pub at_min_window: f64,
    /// `U/C` at the grid's largest window.
    pub at_max_window: f64,
    /// Relative payoff loss within ±20 % of the argmax window (the
    /// "robustness" of the optimum the paper highlights).
    pub flatness_near_optimum: f64,
}

impl FigureSeries {
    /// Computes the shape summary.
    ///
    /// # Panics
    ///
    /// Panics on an empty series.
    #[must_use]
    pub fn shape(&self) -> FigureShape {
        assert!(!self.points.is_empty(), "empty series"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        let best = self
            .points
            .iter()
            .max_by(|a, b| a.u_over_c.total_cmp(&b.u_over_c))
            .expect("nonempty"); // PANIC-POLICY: invariant: nonempty
        let lo_w = (f64::from(best.window) * 0.8) as u32;
        let hi_w = (f64::from(best.window) * 1.2) as u32;
        let near_min = self
            .points
            .iter()
            .filter(|p| (lo_w..=hi_w).contains(&p.window))
            .map(|p| p.u_over_c)
            .fold(f64::INFINITY, f64::min);
        FigureShape {
            argmax_window: best.window,
            max_value: best.u_over_c,
            at_min_window: self.points.first().expect("nonempty").u_over_c, // PANIC-POLICY: invariant: nonempty
            at_max_window: self.points.last().expect("nonempty").u_over_c, // PANIC-POLICY: invariant: nonempty
            flatness_near_optimum: if best.u_over_c != 0.0 {
                (best.u_over_c - near_min) / best.u_over_c.abs()
            } else {
                0.0
            },
        }
    }
}

/// The window grid used for the figures: dense near small windows,
/// geometric afterwards, always including `1` and `w_max`.
#[must_use]
pub fn window_grid(w_max: u32) -> Vec<u32> {
    let mut grid = Vec::new();
    let mut w = 1u32;
    while w <= w_max {
        grid.push(w);
        // ~12 % geometric steps with a floor of +1.
        let next = w + (w / 8).max(1);
        w = next;
    }
    if *grid.last().expect("nonempty") != w_max { // PANIC-POLICY: invariant: nonempty
        grid.push(w_max);
    }
    grid
}

/// Computes one curve of Figure 2/3 analytically.
///
/// # Errors
///
/// Propagates fixed-point failures.
pub fn figure_series(
    n: usize,
    mode: AccessMode,
    w_max: u32,
) -> Result<FigureSeries, BenchError> {
    let params = DcfParams::builder().access_mode(mode).build()?;
    let utility = UtilityParams::default();
    let mut points = Vec::new();
    for w in window_grid(w_max) {
        let sym = solve_symmetric(n, w, &params)?;
        let taus = vec![sym.tau; n];
        let ps = vec![sym.collision_prob; n];
        let u_over_c = normalized_global_payoff(&taus, &ps, &params, &utility);
        points.push(PayoffPoint { window: w, u_over_c });
    }
    Ok(FigureSeries { n, mode, points })
}

/// All three curves of one figure (n ∈ {5, 20, 50} as in the paper).
///
/// # Errors
///
/// Propagates fixed-point failures.
pub fn figure(mode: AccessMode, w_max: u32) -> Result<Vec<FigureSeries>, BenchError> {
    [5usize, 20, 50].iter().map(|&n| figure_series(n, mode, w_max)).collect()
}


/// Simulated `U/C` samples overlaying the analytic curve: measure the
/// global payoff rate at a handful of windows on the slot simulator and
/// normalize the same way (`U/C = σ·Σu_i/g`).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn simulated_overlay(
    n: usize,
    mode: AccessMode,
    windows: &[u32],
    duration: MicroSecs,
    seed: u64,
) -> Result<Vec<PayoffPoint>, BenchError> {
    let params = DcfParams::builder().access_mode(mode).build()?;
    let utility = UtilityParams::default();
    let mut out = Vec::with_capacity(windows.len());
    for &w in windows {
        let config = SimConfig::builder()
            .params(params)
            .utility(utility)
            .symmetric(n, w)
            .seed(seed ^ u64::from(w))
            .build()?;
        let mut engine = Engine::new(&config);
        let report = engine.run_for(duration);
        let global_rate: f64 =
            (0..n).map(|i| report.payoff_rate(i, &utility)).sum();
        out.push(PayoffPoint {
            window: w,
            u_over_c: global_rate * params.sigma().value() / utility.gain,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use macgame_dcf::optimal::efficient_cw;

    #[test]
    fn grid_is_increasing_and_bounded() {
        let grid = window_grid(1024);
        assert_eq!(grid[0], 1);
        assert_eq!(*grid.last().unwrap(), 1024);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert!(grid.len() < 120, "grid should stay coarse ({} points)", grid.len());
    }

    #[test]
    fn figure2_peaks_at_efficient_window() {
        let series = figure_series(5, AccessMode::Basic, 1024).unwrap();
        let shape = series.shape();
        let w_star = efficient_cw(
            5,
            &DcfParams::default(),
            &UtilityParams::default(),
            1024,
        )
        .unwrap()
        .window;
        let rel = (f64::from(shape.argmax_window) - f64::from(w_star)).abs() / f64::from(w_star);
        assert!(rel < 0.15, "grid argmax {} vs W_c* {}", shape.argmax_window, w_star);
        // The curve is unimodal-ish: both ends below the peak.
        assert!(shape.at_min_window < shape.max_value);
        assert!(shape.at_max_window < shape.max_value);
    }

    #[test]
    fn optimum_is_flat_per_the_papers_robustness_remark() {
        for mode in AccessMode::ALL {
            let series = figure_series(20, mode, 2048).unwrap();
            let shape = series.shape();
            assert!(
                shape.flatness_near_optimum < 0.05,
                "{mode:?}: ±20% around W* loses {:.1}% payoff",
                100.0 * shape.flatness_near_optimum
            );
        }
    }

    #[test]
    fn rtscts_is_far_less_sensitive_at_small_windows() {
        // The paper's Figure 3 observation: with cheap collisions the
        // payoff varies much less across the whole CW range.
        let basic = figure_series(20, AccessMode::Basic, 2048).unwrap().shape();
        let rtscts = figure_series(20, AccessMode::RtsCts, 2048).unwrap().shape();
        let basic_drop = (basic.max_value - basic.at_min_window) / basic.max_value;
        let rtscts_drop = (rtscts.max_value - rtscts.at_min_window) / rtscts.max_value;
        assert!(
            rtscts_drop < 0.5 * basic_drop,
            "basic drop {basic_drop:.2} vs RTS/CTS drop {rtscts_drop:.2}"
        );
    }

    #[test]
    fn figure_has_three_populations() {
        let fig = figure(AccessMode::RtsCts, 512).unwrap();
        let ns: Vec<usize> = fig.iter().map(|s| s.n).collect();
        assert_eq!(ns, vec![5, 20, 50]);
    }

    #[test]
    fn simulated_overlay_tracks_the_analytic_curve() {
        let n = 5;
        let analytic = figure_series(n, AccessMode::Basic, 1024).unwrap();
        let probe_windows = [20u32, 79, 300];
        let overlay = simulated_overlay(
            n,
            AccessMode::Basic,
            &probe_windows,
            MicroSecs::from_seconds(60.0),
            9,
        )
        .unwrap();
        for point in &overlay {
            // Nearest analytic sample.
            let nearest = analytic
                .points
                .iter()
                .min_by_key(|p| p.window.abs_diff(point.window))
                .unwrap();
            let rel = (point.u_over_c - nearest.u_over_c).abs() / nearest.u_over_c;
            assert!(
                rel < 0.12,
                "W={}: simulated {} vs analytic {} ({:.1}% off)",
                point.window,
                point.u_over_c,
                nearest.u_over_c,
                100.0 * rel
            );
        }
    }
}
