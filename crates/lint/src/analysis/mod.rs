//! Call-graph reachability analyses over the workspace (`lint` v2).
//!
//! Where [`crate::rules`] checks *sites* (a token stream in one file),
//! this module checks *paths*: it parses every library file
//! ([`crate::parser`]), stitches the results into a workspace call graph
//! ([`crate::graph`]), and runs three analyses:
//!
//! * [`taint`] — `analysis/determinism-taint`: functions reachable from
//!   the artifact-writing roots (the `repro` experiment driver, serve
//!   reply encoding, conformance claim evaluation) must not reach a
//!   nondeterminism source (wall-clock reads outside the telemetry
//!   quarantine, entropy-seeded RNG, thread-identity reads, raw
//!   `thread::spawn`, hash-container iteration).
//! * [`panics`] — `analysis/panic-path`: panic sites (`panic!` family,
//!   `.unwrap()`, `.expect()`) reachable from public library APIs must
//!   carry a `// PANIC-POLICY:` marker or a waiver; findings carry the
//!   caller-to-site path.
//! * [`locks`] — `analysis/lock-order`: zero-argument `.lock()` /
//!   `.read()` / `.write()` acquisitions are labeled by owner and
//!   receiver; an inconsistent acquisition order (a cycle in the
//!   may-precede relation, intra- or inter-procedural) is reported as a
//!   potential deadlock.
//!
//! Every finding includes a concrete root → … → sink witness so waivers
//! can be reviewed against an actual path, and the rendered
//! `ANALYSIS.json` is byte-stable: file order, fn ids, BFS order, and
//! every container in between are deterministic (DESIGN.md §18).

pub mod locks;
pub mod panics;
pub mod taint;

use std::collections::BTreeMap;

use crate::graph::CallGraph;
use crate::parser::{parse, ParsedFile};
use crate::report::json_string;
use crate::rules::Finding;

/// Rule id: nondeterminism source reachable from an artifact root.
pub const RULE_TAINT: &str = "analysis/determinism-taint";
/// Rule id: unmarked panic site reachable from a public library API.
pub const RULE_PANIC_PATH: &str = "analysis/panic-path";
/// Rule id: inconsistent lock-acquisition order (potential deadlock).
pub const RULE_LOCK_ORDER: &str = "analysis/lock-order";

/// Selects taint-analysis roots: functions in files with a given prefix,
/// optionally narrowed to one function name.
#[derive(Debug, Clone)]
pub struct RootSpec {
    /// Workspace-relative path prefix (exact file or directory).
    pub file_prefix: String,
    /// Restrict to this function name; `None` roots every non-test fn in
    /// matching files.
    pub fn_name: Option<String>,
}

impl RootSpec {
    /// Roots every non-test fn in files matching `prefix`.
    #[must_use]
    pub fn file(prefix: &str) -> RootSpec {
        RootSpec { file_prefix: prefix.to_string(), fn_name: None }
    }

    /// Roots the fn named `name` in files matching `prefix`.
    #[must_use]
    pub fn fn_in(prefix: &str, name: &str) -> RootSpec {
        RootSpec { file_prefix: prefix.to_string(), fn_name: Some(name.to_string()) }
    }
}

/// Configuration for one analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Artifact-writing roots for the determinism-taint pass.
    pub taint_roots: Vec<RootSpec>,
    /// Exact workspace-relative paths whose wall-clock reads are
    /// quarantined (mirrors [`crate::LintConfig::wall_clock_allow`]).
    pub wall_clock_allow: Vec<String>,
    /// Path prefixes whose `pub fn`s count as public library API for the
    /// panic-path pass.
    pub panic_api_prefixes: Vec<String>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            // Every fn in the repro driver writes or formats artifacts;
            // serve's reply encoders and the conformance evaluator are the
            // other two byte-stability contracts (DESIGN.md §10, §15).
            taint_roots: vec![
                RootSpec::file("crates/bench/src/bin/repro.rs"),
                RootSpec::fn_in("crates/serve/src/", "handle_batch"),
                RootSpec::fn_in("crates/serve/src/", "handle_payload"),
                RootSpec::fn_in("crates/conformance/src/", "run_conformance"),
            ],
            wall_clock_allow: vec!["crates/telemetry/src/global.rs".to_string()],
            panic_api_prefixes: vec!["crates/".to_string()],
        }
    }
}

/// Workspace-shape counters surfaced in the `ANALYSIS.json` summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisStats {
    /// Library files parsed into the graph.
    pub files: usize,
    /// Function nodes in the graph.
    pub functions: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Determinism-taint roots matched by the config.
    pub taint_roots: usize,
    /// Public-API roots of the panic-path pass.
    pub public_roots: usize,
    /// Lock-acquisition sites labeled by the lock-order pass.
    pub lock_sites: usize,
}

/// The outcome of analyzing a workspace: findings plus graph-shape stats.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Every finding, waived or not, sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Graph-shape counters.
    pub stats: AnalysisStats,
}

/// Shared per-run context handed to the three passes.
pub(crate) struct Ctx<'a> {
    pub graph: &'a CallGraph,
    pub config: &'a AnalysisConfig,
    /// path → (line → rationale) `PANIC-POLICY` markers.
    pub markers: &'a BTreeMap<String, BTreeMap<u32, String>>,
    /// path → source lines, for snippets.
    pub lines: &'a BTreeMap<String, Vec<String>>,
}

impl Ctx<'_> {
    /// The trimmed, truncated source line at `path:line` (same shape as
    /// the token rules' snippets).
    fn snippet(&self, path: &str, line: u32) -> String {
        let text = self
            .lines
            .get(path)
            .and_then(|ls| ls.get(line as usize - 1))
            .map_or("", |l| l.trim());
        let mut s: String = text.chars().take(96).collect();
        if text.chars().count() > 96 {
            s.push('…');
        }
        s
    }

    /// Assembles a finding with its witness path.
    pub(crate) fn finding(
        &self,
        rule: &'static str,
        path: &str,
        line: u32,
        message: String,
        witness: Vec<String>,
    ) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message,
            snippet: self.snippet(path, line),
            waived: false,
            reason: None,
            witness,
        }
    }
}

/// Runs all three analyses over `(workspace-relative path, source)` pairs.
/// Pure: no filesystem access, and the output — findings, witnesses, JSON
/// bytes — is invariant under the input order.
#[must_use]
pub fn analyze(files: &[(String, String)], config: &AnalysisConfig) -> AnalysisReport {
    let parsed: Vec<(String, ParsedFile)> =
        files.iter().map(|(p, s)| (p.clone(), parse(s))).collect();
    let graph = CallGraph::build(&parsed);
    let markers: BTreeMap<String, BTreeMap<u32, String>> =
        parsed.iter().map(|(p, f)| (p.clone(), f.markers.clone())).collect();
    let lines: BTreeMap<String, Vec<String>> = files
        .iter()
        .map(|(p, s)| (p.clone(), s.lines().map(str::to_string).collect()))
        .collect();
    let ctx = Ctx { graph: &graph, config, markers: &markers, lines: &lines };

    let mut stats = AnalysisStats {
        files: files.len(),
        functions: graph.fns.len(),
        edges: graph.edges,
        ..AnalysisStats::default()
    };
    let mut findings = Vec::new();
    let (mut f, n) = taint::run(&ctx);
    stats.taint_roots = n;
    findings.append(&mut f);
    let (mut f, n) = panics::run(&ctx);
    stats.public_roots = n;
    findings.append(&mut f);
    let (mut f, n) = locks::run(&ctx);
    stats.lock_sites = n;
    findings.append(&mut f);

    let mut report = AnalysisReport { findings, stats };
    report.sort();
    report
        .findings
        .dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    report
}

impl AnalysisReport {
    /// Sorts findings into their canonical artifact order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
        });
    }

    /// Findings not covered by a waiver — the CI-failing set.
    #[must_use]
    pub fn unwaived(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| !f.waived).collect()
    }

    /// Whether the workspace passes (every finding waived with rationale).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.iter().all(|f| f.waived)
    }

    /// Per-rule `(total, waived)` counts, sorted by rule id.
    #[must_use]
    pub fn rule_counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for f in &self.findings {
            let entry = counts.entry(f.rule).or_default();
            entry.0 += 1;
            if f.waived {
                entry.1 += 1;
            }
        }
        counts
    }

    /// Renders the deterministic `ANALYSIS.json` bytes: sorted findings
    /// with their full witness paths, no timestamps, no absolute paths.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(8192);
        out.push_str("{\n  \"schema\": \"macgame-analysis/1\",\n");
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!("    \"files\": {},\n", self.stats.files));
        out.push_str(&format!("    \"functions\": {},\n", self.stats.functions));
        out.push_str(&format!("    \"edges\": {},\n", self.stats.edges));
        out.push_str(&format!("    \"taint_roots\": {},\n", self.stats.taint_roots));
        out.push_str(&format!("    \"public_roots\": {},\n", self.stats.public_roots));
        out.push_str(&format!("    \"lock_sites\": {},\n", self.stats.lock_sites));
        out.push_str(&format!("    \"findings\": {},\n", self.findings.len()));
        out.push_str(&format!(
            "    \"waived\": {},\n",
            self.findings.iter().filter(|f| f.waived).count()
        ));
        out.push_str(&format!("    \"unwaived\": {},\n", self.unwaived().len()));
        out.push_str("    \"rules\": {");
        let counts = self.rule_counts();
        let mut first = true;
        for (rule, (total, waived)) in &counts {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n      {}: {{\"total\": {total}, \"waived\": {waived}}}",
                json_string(rule)
            ));
        }
        if !counts.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("}\n  },\n");
        out.push_str("  \"findings\": [");
        let mut first = true;
        for f in &self.findings {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_string(f.rule)));
            out.push_str(&format!("\"path\": {}, ", json_string(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"waived\": {}, ", f.waived));
            match &f.reason {
                Some(r) => out.push_str(&format!("\"reason\": {}, ", json_string(r))),
                None => out.push_str("\"reason\": null, "),
            }
            out.push_str(&format!("\"message\": {}, ", json_string(&f.message)));
            out.push_str(&format!("\"snippet\": {}, ", json_string(&f.snippet)));
            out.push_str("\"witness\": [");
            let mut first_step = true;
            for step in &f.witness {
                if !first_step {
                    out.push_str(", ");
                }
                first_step = false;
                out.push_str(&json_string(step));
            }
            out.push_str("]}");
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Rows for a `rule | location | status | detail` table, unwaived
    /// first; the detail column carries the witness depth so the table
    /// stays narrow (full paths live in the JSON).
    #[must_use]
    pub fn table_rows(&self) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for pass in [false, true] {
            for f in self.findings.iter().filter(|f| f.waived == pass) {
                let detail = if f.waived {
                    format!("waived: {}", f.reason.as_deref().unwrap_or(""))
                } else {
                    f.message.clone()
                };
                rows.push(vec![
                    f.rule.to_string(),
                    format!("{}:{}", f.path, f.line),
                    if f.waived { "allow".to_string() } else { "FAIL".to_string() },
                    detail,
                ]);
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(files: &[(&str, &str)]) -> Vec<(String, String)> {
        files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect()
    }

    #[test]
    fn clean_workspace_produces_empty_stable_report() {
        let files = src(&[(
            "crates/a/src/lib.rs",
            "pub fn api() -> u32 { helper() }\nfn helper() -> u32 { 1 }\n",
        )]);
        let report = analyze(&files, &AnalysisConfig::default());
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.stats.functions, 2);
        assert_eq!(report.to_json(), report.to_json());
    }

    #[test]
    fn json_bytes_are_input_order_invariant() {
        let a = ("crates/a/src/lib.rs", "pub fn api() { b_entry(); }\n");
        let b = (
            "crates/a/src/other.rs",
            "pub fn b_entry() { let x: Option<u32> = None; let _ = x.unwrap(); }\n",
        );
        let config = AnalysisConfig::default();
        let one = analyze(&src(&[a, b]), &config).to_json();
        let two = analyze(&src(&[b, a]), &config).to_json();
        assert_eq!(one, two);
        assert!(one.contains("analysis/panic-path"), "{one}");
    }
}
