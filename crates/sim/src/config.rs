//! Simulation configuration.

use macgame_dcf::{DcfParams, UtilityParams};
use serde::{Deserialize, Serialize};

use crate::traffic::TrafficModel;

/// Configuration of a single-hop saturated DCF simulation.
///
/// # Examples
///
/// ```
/// use macgame_sim::SimConfig;
///
/// let config = SimConfig::builder()
///     .windows(vec![32, 32, 64])
///     .seed(7)
///     .build()?;
/// assert_eq!(config.node_count(), 3);
/// # Ok::<(), macgame_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    params: DcfParams,
    utility: UtilityParams,
    windows: Vec<u32>,
    seed: u64,
    traffic: TrafficModel,
    /// Per-node AIFS slot counts (EDCA). Empty means "all equal": every
    /// node contends in every slot, exactly the legacy DCF engine.
    aifs: Vec<u32>,
    /// Per-node TXOP burst lengths in frames (EDCA). Empty means "all
    /// single-frame": every success occupies one plain `T_s`.
    txop: Vec<u32>,
}

impl SimConfig {
    /// Starts a builder with Table I parameters, two nodes at `W = 32` and
    /// seed 0.
    #[must_use]
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Protocol parameters.
    #[must_use]
    pub fn params(&self) -> &DcfParams {
        &self.params
    }

    /// Utility (gain/cost) parameters used for payoff accounting.
    #[must_use]
    pub fn utility(&self) -> &UtilityParams {
        &self.utility
    }

    /// Initial per-node contention windows.
    #[must_use]
    pub fn windows(&self) -> &[u32] {
        &self.windows
    }

    /// RNG seed; equal seeds give bit-identical runs.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of simulated nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.windows.len()
    }

    /// Traffic generation model.
    #[must_use]
    pub fn traffic(&self) -> TrafficModel {
        self.traffic
    }

    /// Raw per-node AIFS slot counts: empty when unset (legacy configs).
    #[must_use]
    pub fn aifs(&self) -> &[u32] {
        &self.aifs
    }

    /// Raw per-node TXOP burst lengths: empty when unset (legacy configs).
    #[must_use]
    pub fn txop(&self) -> &[u32] {
        &self.txop
    }

    /// Per-node AIFS *defer* distances `d_i = AIFS_i − min_j AIFS_j` — the
    /// number of consecutive idle slots a node must observe beyond the
    /// baseline before it may contend. All zeros for legacy configs (or
    /// any equal-AIFS profile).
    #[must_use]
    pub fn aifs_defers(&self) -> Vec<u32> {
        if self.aifs.is_empty() {
            return vec![0; self.windows.len()];
        }
        // PANIC-POLICY: build() validates aifs against the non-empty window count.
        let min = *self.aifs.iter().min().expect("validated non-empty");
        self.aifs.iter().map(|&a| a - min).collect()
    }

    /// Per-node TXOP burst lengths with the single-frame default filled
    /// in: always one entry per node.
    #[must_use]
    pub fn txop_bursts(&self) -> Vec<u32> {
        if self.txop.is_empty() {
            return vec![1; self.windows.len()];
        }
        self.txop.clone()
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    params: DcfParams,
    utility: UtilityParams,
    windows: Vec<u32>,
    seed: u64,
    traffic: TrafficModel,
    aifs: Vec<u32>,
    txop: Vec<u32>,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            params: DcfParams::default(),
            utility: UtilityParams::default(),
            windows: vec![32, 32],
            seed: 0,
            traffic: TrafficModel::Saturated,
            aifs: Vec::new(),
            txop: Vec::new(),
        }
    }
}

impl SimConfigBuilder {
    /// Sets the protocol parameters.
    pub fn params(&mut self, params: DcfParams) -> &mut Self {
        self.params = params;
        self
    }

    /// Sets the utility parameters.
    pub fn utility(&mut self, utility: UtilityParams) -> &mut Self {
        self.utility = utility;
        self
    }

    /// Sets the per-node contention windows (one entry per node).
    pub fn windows(&mut self, windows: Vec<u32>) -> &mut Self {
        self.windows = windows;
        self
    }

    /// Convenience: `n` nodes all on window `w`.
    pub fn symmetric(&mut self, n: usize, w: u32) -> &mut Self {
        self.windows = vec![w; n];
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the traffic model (default: saturated, as in the paper).
    pub fn traffic(&mut self, traffic: TrafficModel) -> &mut Self {
        self.traffic = traffic;
        self
    }

    /// Sets per-node AIFS slot counts (one entry per node). An empty
    /// vector restores the legacy equal-AIFS behaviour.
    pub fn aifs(&mut self, aifs: Vec<u32>) -> &mut Self {
        self.aifs = aifs;
        self
    }

    /// Sets per-node TXOP burst lengths in frames (one entry per node).
    /// An empty vector restores the legacy single-frame behaviour.
    pub fn txop(&mut self, txop: Vec<u32>) -> &mut Self {
        self.txop = txop;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::InvalidConfig`] if there are no nodes,
    /// any window is zero, a Poisson rate is negative/non-finite, or a
    /// non-empty AIFS/TXOP profile disagrees with the node count or is
    /// out of range (AIFS ≤ 64 slots, TXOP in `1..=64` frames).
    pub fn build(&self) -> Result<SimConfig, crate::SimError> {
        if self.windows.is_empty() {
            return Err(crate::SimError::InvalidConfig("need at least one node".into()));
        }
        if self.windows.contains(&0) {
            return Err(crate::SimError::InvalidConfig(
                "contention windows must be at least 1".into(),
            ));
        }
        if let TrafficModel::Poisson { packets_per_second } = self.traffic {
            if !(packets_per_second.is_finite() && packets_per_second >= 0.0) {
                return Err(crate::SimError::InvalidConfig(
                    "arrival rate must be finite and non-negative".into(),
                ));
            }
        }
        if !self.aifs.is_empty() {
            if self.aifs.len() != self.windows.len() {
                return Err(crate::SimError::InvalidConfig(format!(
                    "AIFS profile has {} entries for {} nodes",
                    self.aifs.len(),
                    self.windows.len()
                )));
            }
            if self.aifs.iter().any(|&a| a > 64) {
                return Err(crate::SimError::InvalidConfig(
                    "AIFS must be at most 64 slots".into(),
                ));
            }
        }
        if !self.txop.is_empty() {
            if self.txop.len() != self.windows.len() {
                return Err(crate::SimError::InvalidConfig(format!(
                    "TXOP profile has {} entries for {} nodes",
                    self.txop.len(),
                    self.windows.len()
                )));
            }
            if self.txop.iter().any(|&k| k == 0 || k > 64) {
                return Err(crate::SimError::InvalidConfig(
                    "TXOP burst lengths must be in 1..=64 frames".into(),
                ));
            }
        }
        Ok(SimConfig {
            params: self.params,
            utility: self.utility,
            windows: self.windows.clone(),
            seed: self.seed,
            traffic: self.traffic,
            aifs: self.aifs.clone(),
            txop: self.txop.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let c = SimConfig::builder().build().unwrap();
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.seed(), 0);
    }

    #[test]
    fn symmetric_helper() {
        let c = SimConfig::builder().symmetric(5, 76).build().unwrap();
        assert_eq!(c.windows(), &[76; 5]);
    }

    #[test]
    fn rejects_empty_and_zero_windows() {
        assert!(SimConfig::builder().windows(vec![]).build().is_err());
        assert!(SimConfig::builder().windows(vec![8, 0]).build().is_err());
    }

    #[test]
    fn edca_defaults_fill_in() {
        let c = SimConfig::builder().symmetric(3, 32).build().unwrap();
        assert!(c.aifs().is_empty());
        assert!(c.txop().is_empty());
        assert_eq!(c.aifs_defers(), vec![0; 3]);
        assert_eq!(c.txop_bursts(), vec![1; 3]);
    }

    #[test]
    fn edca_defers_are_relative_to_the_minimum() {
        let c = SimConfig::builder()
            .symmetric(3, 32)
            .aifs(vec![2, 2, 5])
            .txop(vec![1, 4, 1])
            .build()
            .unwrap();
        assert_eq!(c.aifs_defers(), vec![0, 0, 3]);
        assert_eq!(c.txop_bursts(), vec![1, 4, 1]);
    }

    #[test]
    fn edca_fields_round_trip() {
        let plain = SimConfig::builder().symmetric(2, 32).build().unwrap();
        let json = serde_json::to_string(&plain).unwrap();
        assert_eq!(serde_json::from_str::<SimConfig>(&json).unwrap(), plain);

        let edca = SimConfig::builder()
            .symmetric(2, 32)
            .aifs(vec![0, 2])
            .txop(vec![4, 1])
            .build()
            .unwrap();
        let json = serde_json::to_string(&edca).unwrap();
        assert_eq!(serde_json::from_str::<SimConfig>(&json).unwrap(), edca);
    }

    #[test]
    fn rejects_malformed_edca_profiles() {
        assert!(SimConfig::builder().symmetric(3, 32).aifs(vec![1, 2]).build().is_err());
        assert!(SimConfig::builder().symmetric(3, 32).aifs(vec![1, 2, 65]).build().is_err());
        assert!(SimConfig::builder().symmetric(3, 32).txop(vec![1]).build().is_err());
        assert!(SimConfig::builder().symmetric(3, 32).txop(vec![1, 0, 1]).build().is_err());
        assert!(SimConfig::builder().symmetric(3, 32).txop(vec![1, 65, 1]).build().is_err());
    }
}
