//! Typed analytic queries and query → evaluator routing.
//!
//! This is the domain half of the NE-as-a-service stack: `macgame-serve`
//! owns framing, batching, coalescing and transport, while this module
//! owns *what a query means* — each [`Query`] variant names one analytic
//! product of the paper (the efficient NE `W_c*`, the Theorem 2 NE
//! interval, a Section V.D short-sighted deviation payoff, one cell of a
//! robustness grid) and [`evaluate_query`] routes it to the evaluator
//! that computes it.
//!
//! Every route is a pure function of the query (no wall clock, no
//! entropy), so evaluation is deterministic: the same query always yields
//! the same [`QueryResult`], bitwise, which is what lets the serve layer
//! promise byte-identical reply streams under any thread count.
//!
//! Heterogeneous and homogeneous stage solves route through a per-mode
//! [`SolveCache`] ([`SolveCaches`]) — one sharded, capacity-bounded cache
//! per [`AccessMode`], because cached solutions are only valid for the
//! parameter set they were computed under.

use macgame_dcf::cache::SolveCache;
use macgame_dcf::fixedpoint::SolveOptions;
use macgame_dcf::{AccessMode, DcfParams, EdcaTuple};
use serde::{Deserialize, Serialize};

use crate::deviation::{shortsighted_deviation_cached, symmetric_stage_cached};
use crate::edca::{edca_wc_star, EdcaStageMemo};
use crate::equilibrium::{check_symmetric_ne, efficient_ne, ne_interval};
use crate::error::GameError;
use crate::game::GameConfig;

/// One typed analytic query, the unit of the serve-layer batch protocol.
///
/// All variants are fully specified — there are no defaulted fields — so
/// a query's canonical JSON doubles as its cache/coalescing key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// The efficient symmetric NE window `W_c*` (paper Section V.B) for
    /// `players` nodes under `mode`, searched over `1..=w_max`.
    WcStar {
        /// Number of contending nodes.
        players: usize,
        /// Basic or RTS/CTS access.
        mode: AccessMode,
        /// Upper bound of the window strategy space.
        w_max: u32,
    },
    /// The efficient symmetric window at TXOP burst length `txop` — the
    /// EDCA tuple-space analog of [`Query::WcStar`] (AIFS 0, protocol
    /// stage cap). `txop = 1` is exactly `WcStar` and routes through the
    /// same scalar optimizer, so its answer is bitwise-identical.
    EdcaWcStar {
        /// Number of contending nodes.
        players: usize,
        /// Basic or RTS/CTS access.
        mode: AccessMode,
        /// TXOP burst length in frames (`1..=64`).
        txop: u32,
        /// Upper bound of the window strategy space.
        w_max: u32,
    },
    /// The Theorem 2 NE interval `[W_c⁰, W_c*]`.
    NeInterval {
        /// Number of contending nodes.
        players: usize,
        /// Basic or RTS/CTS access.
        mode: AccessMode,
        /// Upper bound of the window strategy space.
        w_max: u32,
    },
    /// A Section V.D short-sighted deviation payoff: one deviator drops
    /// from the common `w_star` to `w_dev` against a TFT crowd reacting
    /// after `reaction_stages`, discounting at `delta_s`.
    DeviationPayoff {
        /// Number of contending nodes.
        players: usize,
        /// Basic or RTS/CTS access.
        mode: AccessMode,
        /// The common (equilibrium) window being deviated from.
        w_star: u32,
        /// The deviator's window.
        w_dev: u32,
        /// TFT reaction lag in stages (≥ 1).
        reaction_stages: u32,
        /// The deviator's discount factor in `[0, 1)`.
        delta_s: f64,
    },
    /// One cell of an `(n, W)` robustness grid: is the common window
    /// still an ε-NE, and how much welfare does it retain relative to
    /// the efficient NE `W_c*`?
    RobustnessCell {
        /// Number of contending nodes.
        players: usize,
        /// Basic or RTS/CTS access.
        mode: AccessMode,
        /// The common window under test.
        window: u32,
        /// TFT reaction lag in stages (≥ 1).
        reaction_stages: u32,
        /// Relative NE tolerance (see [`crate::equilibrium::DEFAULT_NE_EPSILON`]).
        epsilon: f64,
    },
}

impl Query {
    /// The access mode this query evaluates under.
    #[must_use]
    pub fn mode(&self) -> AccessMode {
        match *self {
            Query::WcStar { mode, .. }
            | Query::EdcaWcStar { mode, .. }
            | Query::NeInterval { mode, .. }
            | Query::DeviationPayoff { mode, .. }
            | Query::RobustnessCell { mode, .. } => mode,
        }
    }
}

/// The result of evaluating one [`Query`], variant-matched to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryResult {
    /// Answer to [`Query::WcStar`].
    WcStar {
        /// The efficient NE window `W_c*`.
        window: u32,
        /// The per-node stage utility rate at `W_c*` (per µs).
        utility: f64,
    },
    /// Answer to [`Query::EdcaWcStar`].
    EdcaWcStar {
        /// The efficient window at this burst length.
        window: u32,
        /// The per-node stage utility rate there (per µs).
        utility: f64,
        /// The burst length (echoed).
        txop: u32,
    },
    /// Answer to [`Query::NeInterval`].
    NeInterval {
        /// Lower end `W_c⁰` (break-even window).
        lower: u32,
        /// Upper end `W_c*` (efficient NE).
        upper: u32,
        /// Number of windows in the closed interval.
        count: u32,
    },
    /// Answer to [`Query::DeviationPayoff`].
    DeviationPayoff {
        /// The deviator's window (echoed).
        w_s: u32,
        /// Deviator's total discounted payoff under the deviation.
        deviant_payoff: f64,
        /// Deviator's payoff had it complied with `w_star`.
        compliant_payoff: f64,
        /// Each victim's discounted payoff while the deviation plays out.
        victim_payoff: f64,
        /// `deviant_payoff - compliant_payoff`.
        gain: f64,
        /// Whether the deviation strictly profits.
        profitable: bool,
    },
    /// Answer to [`Query::RobustnessCell`].
    RobustnessCell {
        /// The window under test (echoed).
        window: u32,
        /// Whether the window is an ε-NE.
        is_ne: bool,
        /// The most profitable deviation window, if any deviation gains.
        best_deviation_window: Option<u32>,
        /// That deviation's discounted gain, if any.
        best_deviation_gain: Option<f64>,
        /// Per-node stage welfare at `window` relative to `W_c*`.
        welfare_fraction: f64,
    },
}

/// One sharded [`SolveCache`] per [`AccessMode`]: cached class solutions
/// are only valid for the DCF parameter set they were computed under, and
/// the query space spans both channel models.
#[derive(Debug)]
pub struct SolveCaches {
    basic: SolveCache,
    rtscts: SolveCache,
}

impl SolveCaches {
    /// Builds one bounded cache per access mode (Table I default
    /// parameters, default solver options); `capacity` is the per-mode
    /// resident bound, with `0` the documented no-op cache — see
    /// [`SolveCache::with_capacity`].
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation failures.
    pub fn with_capacity(capacity: usize) -> Result<Self, GameError> {
        let basic = DcfParams::builder().access_mode(AccessMode::Basic).build()?;
        let rtscts = DcfParams::builder().access_mode(AccessMode::RtsCts).build()?;
        Ok(SolveCaches {
            basic: SolveCache::with_capacity(basic, SolveOptions::default(), capacity),
            rtscts: SolveCache::with_capacity(rtscts, SolveOptions::default(), capacity),
        })
    }

    /// The cache bound to `mode`'s parameters.
    #[must_use]
    pub fn for_mode(&self, mode: AccessMode) -> &SolveCache {
        match mode {
            AccessMode::Basic => &self.basic,
            AccessMode::RtsCts => &self.rtscts,
        }
    }

    /// Aggregate `(hits, misses, evictions)` across both caches.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.basic.hits() + self.rtscts.hits(),
            self.basic.misses() + self.rtscts.misses(),
            self.basic.evictions() + self.rtscts.evictions(),
        )
    }
}

/// Builds the game a query evaluates on. `w_max` is the strategy-space
/// bound for the interval/optimum searches; deviation and robustness
/// queries use the default bound.
fn game_for(players: usize, mode: AccessMode, w_max: Option<u32>) -> Result<GameConfig, GameError> {
    let params = DcfParams::builder().access_mode(mode).build()?;
    let mut builder = GameConfig::builder(players);
    builder.params(params);
    if let Some(w_max) = w_max {
        builder.w_max(w_max);
    }
    builder.build()
}

/// Routes one [`Query`] to its evaluator. Pure and deterministic: the
/// same query yields the same result bitwise, with or without cache hits
/// (a [`SolveCache`] hit shares the solution a fresh solve would have
/// produced).
///
/// # Errors
///
/// Returns [`GameError::InvalidConfig`] for out-of-range query fields;
/// propagates solver failures.
pub fn evaluate_query(query: &Query, caches: &SolveCaches) -> Result<QueryResult, GameError> {
    let cache = caches.for_mode(query.mode());
    match *query {
        Query::WcStar { players, mode, w_max } => {
            let game = game_for(players, mode, Some(w_max))?;
            let ne = efficient_ne(&game)?;
            Ok(QueryResult::WcStar { window: ne.window, utility: ne.utility })
        }
        Query::EdcaWcStar { players, mode, txop, w_max } => {
            let game = game_for(players, mode, Some(w_max))?;
            // Validate the burst length up front so both branches reject
            // out-of-range tuples with a structured error.
            EdcaTuple::new(1, game.params().max_backoff_stage(), 0, txop)?;
            if txop == 1 {
                // Degenerate burst: this *is* WcStar; reuse the scalar
                // optimizer so the two queries agree bitwise.
                let ne = efficient_ne(&game)?;
                return Ok(QueryResult::EdcaWcStar {
                    window: ne.window,
                    utility: ne.utility,
                    txop,
                });
            }
            let mut memo = EdcaStageMemo::new();
            let (window, utility) = edca_wc_star(&game, txop, &mut memo)?;
            Ok(QueryResult::EdcaWcStar { window, utility, txop })
        }
        Query::NeInterval { players, mode, w_max } => {
            let game = game_for(players, mode, Some(w_max))?;
            let interval = ne_interval(&game)?;
            Ok(QueryResult::NeInterval {
                lower: interval.lower,
                upper: interval.upper,
                count: interval.count(),
            })
        }
        Query::DeviationPayoff { players, mode, w_star, w_dev, reaction_stages, delta_s } => {
            let game = game_for(players, mode, None)?;
            let outcome =
                shortsighted_deviation_cached(&game, w_star, w_dev, reaction_stages, delta_s, cache)?;
            Ok(QueryResult::DeviationPayoff {
                w_s: outcome.w_s,
                deviant_payoff: outcome.deviant_payoff,
                compliant_payoff: outcome.compliant_payoff,
                victim_payoff: outcome.victim_payoff,
                gain: outcome.gain(),
                profitable: outcome.profitable(),
            })
        }
        Query::RobustnessCell { players, mode, window, reaction_stages, epsilon } => {
            let game = game_for(players, mode, None)?;
            let check = check_symmetric_ne(&game, window, reaction_stages, epsilon)?;
            let star = efficient_ne(&game)?;
            let at_window = symmetric_stage_cached(&game, window, cache)?;
            let at_star = symmetric_stage_cached(&game, star.window, cache)?;
            Ok(QueryResult::RobustnessCell {
                window,
                is_ne: check.is_ne,
                best_deviation_window: check.best_deviation.map(|(w, _)| w),
                best_deviation_gain: check.best_deviation.map(|(_, g)| g),
                welfare_fraction: at_window / at_star,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deviation::shortsighted_deviation;
    use crate::equilibrium::DEFAULT_NE_EPSILON;

    fn caches() -> SolveCaches {
        SolveCaches::with_capacity(1024).unwrap()
    }

    #[test]
    fn wc_star_matches_direct_evaluation() {
        let caches = caches();
        let q = Query::WcStar { players: 10, mode: AccessMode::Basic, w_max: 4096 };
        let QueryResult::WcStar { window, utility } = evaluate_query(&q, &caches).unwrap() else {
            panic!("variant mismatch");
        };
        let game = game_for(10, AccessMode::Basic, Some(4096)).unwrap();
        let direct = efficient_ne(&game).unwrap();
        assert_eq!(window, direct.window);
        assert_eq!(utility, direct.utility);
    }

    #[test]
    fn edca_wc_star_at_unit_burst_is_bitwise_wc_star() {
        let caches = caches();
        for mode in [AccessMode::Basic, AccessMode::RtsCts] {
            let scalar = Query::WcStar { players: 5, mode, w_max: 4096 };
            let QueryResult::WcStar { window, utility } =
                evaluate_query(&scalar, &caches).unwrap()
            else {
                panic!("variant mismatch");
            };
            let edca = Query::EdcaWcStar { players: 5, mode, txop: 1, w_max: 4096 };
            let QueryResult::EdcaWcStar { window: ew, utility: eu, txop } =
                evaluate_query(&edca, &caches).unwrap()
            else {
                panic!("variant mismatch");
            };
            assert_eq!(txop, 1);
            assert_eq!(ew, window);
            assert_eq!(eu.to_bits(), utility.to_bits(), "bitwise at {mode:?}");
        }
    }

    #[test]
    fn edca_wc_star_bursts_raise_the_optimal_utility() {
        let caches = caches();
        let at = |txop: u32| {
            let q = Query::EdcaWcStar { players: 5, mode: AccessMode::Basic, txop, w_max: 4096 };
            let QueryResult::EdcaWcStar { window, utility, .. } =
                evaluate_query(&q, &caches).unwrap()
            else {
                panic!("variant mismatch");
            };
            (window, utility)
        };
        let (w1, u1) = at(1);
        let (w4, u4) = at(4);
        assert!(u4 > u1, "burst optimum {u4} must beat single-frame {u1}");
        assert!(w1 >= 1 && w4 >= 1);
    }

    #[test]
    fn edca_wc_star_rejects_out_of_range_bursts() {
        let caches = caches();
        for txop in [0u32, 65] {
            let q = Query::EdcaWcStar { players: 5, mode: AccessMode::Basic, txop, w_max: 4096 };
            assert!(evaluate_query(&q, &caches).is_err(), "txop = {txop}");
        }
    }

    #[test]
    fn ne_interval_is_consistent_with_wc_star() {
        let caches = caches();
        let q = Query::NeInterval { players: 5, mode: AccessMode::RtsCts, w_max: 4096 };
        let QueryResult::NeInterval { lower, upper, count } =
            evaluate_query(&q, &caches).unwrap()
        else {
            panic!("variant mismatch");
        };
        assert!(lower <= upper);
        assert_eq!(count, upper - lower + 1);
        let wc = Query::WcStar { players: 5, mode: AccessMode::RtsCts, w_max: 4096 };
        let QueryResult::WcStar { window, .. } = evaluate_query(&wc, &caches).unwrap() else {
            panic!("variant mismatch");
        };
        assert_eq!(upper, window);
    }

    #[test]
    fn deviation_payoff_agrees_with_uncached_path() {
        let caches = caches();
        let q = Query::DeviationPayoff {
            players: 5,
            mode: AccessMode::Basic,
            w_star: 79,
            w_dev: 20,
            reaction_stages: 1,
            delta_s: 0.0,
        };
        let QueryResult::DeviationPayoff { deviant_payoff, compliant_payoff, profitable, .. } =
            evaluate_query(&q, &caches).unwrap()
        else {
            panic!("variant mismatch");
        };
        let game = game_for(5, AccessMode::Basic, None).unwrap();
        let direct = shortsighted_deviation(&game, 79, 20, 1, 0.0).unwrap();
        // Cached stages solve at class level, direct at node level — the
        // same fixed point, agreeing to solver tolerance.
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
        assert!(rel(deviant_payoff, direct.deviant_payoff) < 1e-6);
        assert!(rel(compliant_payoff, direct.compliant_payoff) < 1e-6);
        assert_eq!(profitable, direct.profitable());
    }

    #[test]
    fn robustness_cell_at_the_efficient_ne_holds() {
        let caches = caches();
        let wc = Query::WcStar { players: 5, mode: AccessMode::Basic, w_max: 4096 };
        let QueryResult::WcStar { window: w_star, .. } = evaluate_query(&wc, &caches).unwrap()
        else {
            panic!("variant mismatch");
        };
        let q = Query::RobustnessCell {
            players: 5,
            mode: AccessMode::Basic,
            window: w_star,
            reaction_stages: 1,
            epsilon: DEFAULT_NE_EPSILON,
        };
        let QueryResult::RobustnessCell { is_ne, welfare_fraction, .. } =
            evaluate_query(&q, &caches).unwrap()
        else {
            panic!("variant mismatch");
        };
        assert!(is_ne, "W_c* must be an ε-NE");
        assert!((welfare_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evaluation_is_bitwise_reproducible_and_uses_the_cache() {
        let caches = caches();
        let q = Query::DeviationPayoff {
            players: 6,
            mode: AccessMode::RtsCts,
            w_star: 100,
            w_dev: 30,
            reaction_stages: 2,
            delta_s: 0.5,
        };
        let first = evaluate_query(&q, &caches).unwrap();
        let (_, misses_after_first, _) = caches.counters();
        let second = evaluate_query(&q, &caches).unwrap();
        let (hits, misses, _) = caches.counters();
        assert_eq!(first, second, "same query, same result, bitwise");
        assert_eq!(misses, misses_after_first, "revisit must not re-solve");
        assert!(hits > 0);
    }

    #[test]
    fn invalid_queries_surface_errors_not_panics() {
        let caches = caches();
        let bad = [
            Query::WcStar { players: 0, mode: AccessMode::Basic, w_max: 4096 },
            Query::DeviationPayoff {
                players: 5,
                mode: AccessMode::Basic,
                w_star: 79,
                w_dev: 20,
                reaction_stages: 0,
                delta_s: 0.0,
            },
            Query::DeviationPayoff {
                players: 5,
                mode: AccessMode::Basic,
                w_star: 79,
                w_dev: 20,
                reaction_stages: 1,
                delta_s: 1.5,
            },
            Query::RobustnessCell {
                players: 5,
                mode: AccessMode::Basic,
                window: 0,
                reaction_stages: 1,
                epsilon: DEFAULT_NE_EPSILON,
            },
        ];
        for q in bad {
            assert!(evaluate_query(&q, &caches).is_err(), "{q:?}");
        }
    }

    #[test]
    fn queries_round_trip_through_json() {
        let q = Query::RobustnessCell {
            players: 20,
            mode: AccessMode::RtsCts,
            window: 64,
            reaction_stages: 2,
            epsilon: 1e-5,
        };
        let json = serde_json::to_string(&q).unwrap();
        let back: Query = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}
