#!/usr/bin/env bash
# Full CI gate: release build, tier-1 tests, full workspace tests, lints.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier 1)"
cargo test -q

echo "==> cargo test -q --release --workspace"
cargo test -q --release --workspace

echo "==> paper-conformance gate (repro -- conformance --quick)"
cargo run --release -p macgame-bench --bin repro -- conformance --quick

echo "==> telemetry profile (repro -- profile --quick)"
cargo run --release -p macgame-bench --bin repro -- profile --quick

echo "==> robustness plane (repro -- robustness --quick, thread-invariance check)"
MACGAME_THREADS=1 cargo run --release -p macgame-bench --bin repro -- robustness --quick
cp artifacts/ROBUSTNESS.json artifacts/ROBUSTNESS.threads1.json
MACGAME_THREADS=2 cargo run --release -p macgame-bench --bin repro -- robustness --quick
cmp artifacts/ROBUSTNESS.threads1.json artifacts/ROBUSTNESS.json
rm artifacts/ROBUSTNESS.threads1.json

echo "==> EDCA strategy space (repro -- edca --quick, thread-invariance check)"
MACGAME_THREADS=1 cargo run --release -p macgame-bench --bin repro -- edca --quick
cp artifacts/EDCA.json artifacts/EDCA.threads1.json
MACGAME_THREADS=2 cargo run --release -p macgame-bench --bin repro -- edca --quick
cmp artifacts/EDCA.threads1.json artifacts/EDCA.json
rm artifacts/EDCA.threads1.json

echo "==> detection plane (repro -- detect --quick, thread-invariance check)"
MACGAME_THREADS=1 cargo run --release -p macgame-bench --bin repro -- detect --quick
cp artifacts/DETECT.json artifacts/DETECT.threads1.json
MACGAME_THREADS=2 cargo run --release -p macgame-bench --bin repro -- detect --quick
cmp artifacts/DETECT.threads1.json artifacts/DETECT.json
rm artifacts/DETECT.threads1.json

echo "==> solver benchmark trajectory (repro -- bench-solver --quick)"
cargo run --release -p macgame-bench --bin repro -- bench-solver --quick

echo "==> serve benchmark (repro -- bench-serve --quick, wire-path qps + thread invariance)"
cargo run --release -p macgame-bench --bin repro -- bench-serve --quick

echo "==> workspace invariant lints + call-graph analysis (repro -- lint, byte-stability check)"
MACGAME_THREADS=1 cargo run --release -p macgame-bench --bin repro -- lint
cp artifacts/ANALYSIS.json artifacts/ANALYSIS.threads1.json
cp artifacts/LINT.json artifacts/LINT.threads1.json
MACGAME_THREADS=2 cargo run --release -p macgame-bench --bin repro -- lint
cmp artifacts/ANALYSIS.threads1.json artifacts/ANALYSIS.json
cmp artifacts/LINT.threads1.json artifacts/LINT.json
rm artifacts/ANALYSIS.threads1.json artifacts/LINT.threads1.json

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo fmt --check (advisory)"
cargo fmt --all --check || echo "fmt check skipped or failed (advisory only)"

echo "CI OK"
