//! Error types for the analytical model.

use core::fmt;

/// Errors produced by the analytical DCF model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DcfError {
    /// An iterative solver failed to reach the requested tolerance.
    SolveDidNotConverge {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual (max update magnitude) at the last iteration.
        residual: f64,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// The offending parameter.
        name: &'static str,
        /// Human-readable constraint description.
        reason: String,
    },
}

impl DcfError {
    /// Convenience constructor for [`DcfError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        DcfError::InvalidParameter { name, reason: reason.into() }
    }
}

impl fmt::Display for DcfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcfError::SolveDidNotConverge { iterations, residual } => write!(
                f,
                "fixed-point solver did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            DcfError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for DcfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let e = DcfError::SolveDidNotConverge { iterations: 10, residual: 1e-3 };
        let msg = e.to_string();
        assert!(msg.contains("10 iterations"));
        let e = DcfError::invalid("w", "must be at least 1");
        assert_eq!(e.to_string(), "invalid parameter `w`: must be at least 1");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<DcfError>();
    }
}
