//! Error types for the game layer.

use core::fmt;

/// Errors produced by the game-theoretic layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GameError {
    /// A game configuration value was rejected.
    InvalidConfig(String),
    /// An analytical-model error.
    Model(macgame_dcf::DcfError),
    /// A simulator error.
    Sim(macgame_sim::SimError),
    /// The equilibrium search ran out of strategy space or measurements.
    SearchFailed(String),
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::InvalidConfig(reason) => write!(f, "invalid game config: {reason}"),
            GameError::Model(e) => write!(f, "model error: {e}"),
            GameError::Sim(e) => write!(f, "simulation error: {e}"),
            GameError::SearchFailed(reason) => write!(f, "equilibrium search failed: {reason}"),
        }
    }
}

impl std::error::Error for GameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GameError::Model(e) => Some(e),
            GameError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<macgame_dcf::DcfError> for GameError {
    fn from(e: macgame_dcf::DcfError) -> Self {
        GameError::Model(e)
    }
}

impl From<macgame_sim::SimError> for GameError {
    fn from(e: macgame_sim::SimError) -> Self {
        GameError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_variants() {
        assert!(GameError::InvalidConfig("x".into()).to_string().contains("invalid game config"));
        assert!(GameError::SearchFailed("y".into()).to_string().contains("search failed"));
        let m = GameError::from(macgame_dcf::DcfError::invalid("n", "z"));
        assert!(m.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<GameError>();
    }
}
