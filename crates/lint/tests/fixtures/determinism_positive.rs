// Lint fixture: every determinism rule should fire on this file.
use std::collections::HashMap;
use std::collections::HashSet;

fn clocks() -> u128 {
    let a = std::time::Instant::now();
    let b = std::time::SystemTime::now();
    let _ = b;
    a.elapsed().as_nanos()
}

fn containers() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
    m.len() + s.len()
}

fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    let seeded = ChaCha8Rng::from_entropy();
    rng.gen::<u64>() ^ seeded.gen::<u64>()
}
