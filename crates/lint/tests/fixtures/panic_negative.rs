// Lint fixture: no panic-policy rule should fire on this file.
fn marked_same_line(v: Option<u32>) -> u32 {
    v.unwrap() // PANIC-POLICY: invariant: caller checked is_some
}

fn marked_preceding_line(v: Option<u32>) -> u32 {
    // PANIC-POLICY: invariant: caller checked is_some
    v.expect("present")
}

fn debug_asserts_are_compiled_out(a: u32, b: u32) -> u32 {
    debug_assert!(a >= b);
    debug_assert_eq!(a % 1, 0);
    a - b
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = Some(3u32);
        assert_eq!(v.unwrap(), 3);
        assert!(v.expect("present") == 3);
    }
}
