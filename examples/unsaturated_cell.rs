//! Beyond saturation: Poisson traffic through a selfishly-tuned cell.
//!
//! The paper's analysis is for saturated sources. This example uses the
//! simulator's Poisson traffic model to ask what the efficient saturated
//! NE window costs when the network is *not* saturated — and when
//! saturation actually kicks in.
//!
//! Run with: `cargo run --release --example unsaturated_cell`

use macgame::dcf::MicroSecs;
use macgame::game::equilibrium::efficient_ne;
use macgame::game::GameConfig;
use macgame::sim::{Engine, SimConfig, TrafficModel};

fn run_cell(n: usize, w: u32, rate: f64, secs: f64) -> (f64, f64, u64, f64) {
    let config = SimConfig::builder()
        .symmetric(n, w)
        .traffic(TrafficModel::Poisson { packets_per_second: rate })
        .seed(42)
        .build()
        .expect("valid config");
    let mut engine = Engine::new(&config);
    let report = engine.run_for(MicroSecs::from_seconds(secs));
    let offered: u64 = (0..n).map(|i| engine.total_arrivals(i)).sum();
    let delivered: u64 = report.node_stats.iter().map(|s| s.successes).sum();
    let backlog: u64 = (0..n).map(|i| engine.queue_len(i)).sum();
    let mean_delay_ms = (0..n)
        .filter_map(|i| engine.mean_access_delay(i))
        .map(|d| d.value() / 1000.0)
        .sum::<f64>()
        / n as f64;
    (delivered as f64 / offered.max(1) as f64, report.throughput(config.params()), backlog, mean_delay_ms)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5;
    let game = GameConfig::builder(n).build()?;
    let w_star = efficient_ne(&game)?.window;
    println!("cell of {n} stations, saturated-NE window W_c* = {w_star}\n");

    // Channel fits ~111 packets/s total (8980 µs per success, basic mode).
    println!("offered load sweep at W = W_c* (60 s runs):");
    println!(
        "{:>14} {:>12} {:>12} {:>10} {:>16}",
        "pkt/s per node", "delivered", "throughput", "backlog", "inter-delivery ms"
    );
    for rate in [2.0, 10.0, 20.0, 25.0, 40.0] {
        let (delivery, s, backlog, delay) = run_cell(n, w_star, rate, 60.0);
        println!(
            "{rate:>14} {:>11.1}% {:>12.3} {:>10} {:>16.1}",
            100.0 * delivery,
            s,
            backlog,
            delay
        );
    }
    println!("→ under light load the saturated-NE window delivers everything (inter-");
    println!("  delivery time ≈ 1/arrival-rate, i.e. the channel idles between packets);");
    println!("  as offered load crosses capacity, queues blow up and the cell behaves");
    println!("  exactly like the saturated model the paper analyzes.\n");

    // Is the saturated W_c* the right window under light load? Sweep W.
    println!("light load (5 pkt/s per node), sweeping the common window:");
    println!("{:>8} {:>12} {:>18}", "W", "delivered", "inter-delivery ms");
    for w in [4u32, 16, w_star, w_star * 4] {
        let (delivery, _, _, delay) = run_cell(n, w, 5.0, 60.0);
        println!("{w:>8} {:>11.1}% {:>16.1}", 100.0 * delivery, delay);
    }
    println!("→ away from saturation the window barely matters — contention is rare, so");
    println!("  even aggressive windows are harmless. The game the paper studies is");
    println!("  precisely the regime where it does matter.");
    Ok(())
}
