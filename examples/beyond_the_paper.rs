//! Extensions beyond the paper's evaluation: delay-aware equilibria, the
//! selfish rate-control game, and a strategy tournament.
//!
//! The paper's Discussion concedes its utility ignores delay, and its
//! Conclusion claims the framework generalizes to other selfish knobs such
//! as rate control. This example exercises both extensions, then pits the
//! strategy roster against itself Axelrod-style.
//!
//! Run with: `cargo run --release --example beyond_the_paper`

use macgame::dcf::delay::{delay_aware_symmetric_utility, efficient_cw_delay_aware};
use macgame::dcf::{AccessMode, DcfParams, UtilityParams};
use macgame::game::equilibrium::efficient_ne;
use macgame::game::ratecontrol::{performance_anomaly, rate_game, rate_set_80211b};
use macgame::game::population::{replicator, PopulationState};
use macgame::game::strategy::{BestResponse, Constant, GenerousTft, Tft};
use macgame::game::tournament::{round_robin, Entrant};
use macgame::game::GameConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. Delay-aware equilibria ───────────────────────────────────────
    let rtscts = DcfParams::builder().access_mode(AccessMode::RtsCts).build()?;
    let utility = UtilityParams::default();
    println!("delay-aware efficient NE, n = 5, RTS/CTS:");
    println!("{:>10} {:>8} {:>12} {:>14}", "λ", "W*(λ)", "delay (ms)", "utility /µs");
    for lambda in [0.0, 1e-10, 1e-9, 3e-9] {
        let point = efficient_cw_delay_aware(5, &rtscts, &utility, lambda, 512)?;
        println!(
            "{:>10.0e} {:>8} {:>12.2} {:>14.3e}",
            lambda,
            point.window,
            point.delay.value() / 1000.0,
            point.utility
        );
    }
    let at_star = delay_aware_symmetric_utility(5, 16, &rtscts, &utility, 0.0)?;
    let aggressive = delay_aware_symmetric_utility(5, 4, &rtscts, &utility, 0.0)?;
    println!(
        "note: saturation pins delay near n·T_s — W = 16 gives {:.1} ms, W = 4 gives {:.1} ms.\n\
         Under saturation the throughput–delay product is nearly conserved;\n\
         window tuning mostly trades collision waste, not queueing.\n",
        at_star.delay.value() / 1000.0,
        aggressive.delay.value() / 1000.0
    );

    // ── 2. The rate-control game ────────────────────────────────────────
    println!("selfish PHY-rate game (common CW = 48, RTS/CTS, 802.11b rates):");
    let game = rate_game(5, 48, &rtscts, &utility, rate_set_80211b())?;
    let out = game.best_response_dynamics(&[0; 5], 10);
    let rates: Vec<_> = out.profile.iter().map(|&a| game.actions()[a]).collect();
    println!("  best-response dynamics from all-1-Mbit/s: {rates:?} (converged: {})", out.converged);
    let nes = game.enumerate_pure_nash();
    println!("  pure Nash equilibria: {} (all-fast only: {})", nes.len(), nes.len() == 1);
    for n in [3usize, 10, 20] {
        let report = performance_anomaly(n, 48, &rtscts, &utility, rate_set_80211b())?;
        println!(
            "  performance anomaly, n = {n:>2}: one 1 Mbit/s node costs everyone {:.0}% of utility",
            100.0 * report.damage()
        );
    }
    println!("→ here selfishness is perfectly aligned: all-fast is dominant AND socially optimal.\n");

    // ── 3. The tournament ───────────────────────────────────────────────
    let template = GameConfig::builder(2).discount(0.999).build()?;
    let two = GameConfig::builder(2).build()?;
    let w_star = efficient_ne(&two)?.window;
    let field: Vec<Entrant> = vec![
        Entrant::new("tft", move || Box::new(Tft::new(w_star))),
        Entrant::new("generous-tft", move || Box::new(GenerousTft::try_new(w_star, 2, 0.9).expect("valid GTFT parameters"))),
        Entrant::new("aggressor", move || Box::new(Constant::new((w_star / 8).max(1)))),
        Entrant::new("best-response", move || Box::new(BestResponse::new(w_star))),
    ];
    let result = round_robin(&field, &template, 25)?;
    println!("round-robin tournament (2-player repeated MAC games, 25 stages):");
    for (rank, (name, total)) in result.ranking().into_iter().enumerate() {
        println!("  {}. {name:<14} total discounted payoff {total:>10.0}", rank + 1);
    }
    println!(
        "→ unlike the Prisoner's Dilemma, the MAC game's payoff curve is smooth, so a\n\
         myopic best responder that stays one step ahead of TFT's reaction can top the\n\
         table — while the blunt aggressor still finishes last.\n"
    );

    // ── 4. …but evolution tells a different story ───────────────────────
    let trace = replicator(&result, &PopulationState::uniform(4), 500)?;
    println!("replicator population dynamics over the same payoff matrix (500 generations):");
    for (name, share) in trace.names.iter().zip(&trace.final_state().shares) {
        println!("  {name:<14} final share {:>5.1}%", 100.0 * share);
    }
    println!(
        "→ the exploiters' edge depends on prey: once reciprocators dominate the mix,\n\
         best-response and the aggressor go extinct and TFT/GTFT inherit the network —\n\
         the evolutionary justification for the paper's TFT premise."
    );
    Ok(())
}
