//! The batch-query engine: coalescing, two-tier caching, deterministic
//! fan-out, reply assembly.
//!
//! # Pipeline (one batch)
//!
//! 1. **Key** every request by its query's canonical JSON.
//! 2. **Coalesce**: duplicate keys collapse to one unit of work in
//!    first-appearance order; every occurrence still gets its own reply.
//! 3. **Route**: each unique key checks the [`ReplyCache`]; misses are
//!    evaluated through [`macgame_core::queries::evaluate_query`] (class
//!    solves go through the per-mode sharded `SolveCache`) with the
//!    fixed-chunk executor, then inserted into the reply cache
//!    *sequentially in miss order* so eviction order is deterministic.
//! 4. **Assemble** replies in request order.
//!
//! # Determinism
//!
//! Every step is a deterministic function of the batch: keys and
//! coalescing don't depend on timing, the executor's chunk boundaries
//! depend only on the miss count, joins preserve order, and cache hits
//! share the exact value a fresh evaluation produced. Hence the reply
//! byte stream is invariant under `MACGAME_THREADS` and under duplicate
//! coalescing — the property the conformance claims gate.

use std::collections::BTreeMap;
use std::sync::Arc;

use macgame_core::queries::{evaluate_query, Query, QueryResult, SolveCaches};
use macgame_core::GameError;
use macgame_telemetry as telemetry;

use crate::cache::ReplyCache;
use crate::executor::map_chunked;
use crate::protocol::{BatchRequest, ErrorKind, ErrorReply, Reply, Request};
use crate::ServeError;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for batch fan-out (`0` = auto from
    /// `MACGAME_THREADS`). Reply bytes do not depend on this.
    pub threads: usize,
    /// Capacity of the query → result reply cache (`0` = no-op cache).
    pub reply_cache_capacity: usize,
    /// Per-mode capacity of the class-solution `SolveCache`
    /// (`0` = no-op cache).
    pub solve_cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { threads: 0, reply_cache_capacity: 4096, solve_cache_capacity: 4096 }
    }
}

/// A long-running query engine. Share one behind an [`Arc`] across all
/// connections; all methods take `&self`.
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    solve_caches: SolveCaches,
    replies: ReplyCache,
}

impl Engine {
    /// Builds an engine from `config`.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation failures from cache construction.
    pub fn new(config: EngineConfig) -> Result<Self, ServeError> {
        Ok(Engine {
            threads: config.threads,
            solve_caches: SolveCaches::with_capacity(config.solve_cache_capacity)?,
            replies: ReplyCache::with_capacity(config.reply_cache_capacity),
        })
    }

    /// The reply cache, exposed for telemetry and tests.
    #[must_use]
    pub fn reply_cache(&self) -> &ReplyCache {
        &self.replies
    }

    /// The per-mode solve caches, exposed for telemetry and tests.
    #[must_use]
    pub fn solve_caches(&self) -> &SolveCaches {
        &self.solve_caches
    }

    /// Evaluates one batch, returning one reply per request in request
    /// order. Duplicate queries are coalesced into a single evaluation;
    /// their replies are bitwise-identical to fresh evaluations.
    #[must_use]
    pub fn handle_batch(&self, requests: &[Request]) -> Vec<Reply> {
        telemetry::counter("serve.batches", 1);
        telemetry::counter("serve.queries", requests.len() as u64);

        // Coalesce: canonical key → index into `unique`, first appearance
        // fixes the order.
        let mut key_to_unique: BTreeMap<String, usize> = BTreeMap::new();
        let mut unique: Vec<(String, Query)> = Vec::new();
        let mut request_slots: Vec<Result<usize, ServeError>> = Vec::with_capacity(requests.len());
        for request in requests {
            match serde_json::to_string(&request.query) {
                Ok(key) => {
                    let slot = *key_to_unique.entry(key.clone()).or_insert_with(|| {
                        unique.push((key, request.query.clone()));
                        unique.len() - 1
                    });
                    request_slots.push(Ok(slot));
                }
                Err(e) => request_slots.push(Err(ServeError::Json(e))),
            }
        }
        let coalesced = requests.len() - unique.len();
        telemetry::counter("serve.coalesced", coalesced as u64);

        // Route uniques through the reply cache; evaluate the misses with
        // the fixed-chunk executor.
        let mut resolved: Vec<Option<Result<Arc<QueryResult>, GameError>>> =
            unique.iter().map(|(key, _)| self.replies.get(key).map(Ok)).collect();
        let miss_indices: Vec<usize> =
            (0..unique.len()).filter(|&i| resolved[i].is_none()).collect();
        let evaluated: Vec<Result<QueryResult, GameError>> =
            map_chunked(miss_indices.clone(), self.threads, |&i| {
                evaluate_query(&unique[i].1, &self.solve_caches)
            });
        // Insert sequentially in miss order: deterministic eviction.
        for (&i, outcome) in miss_indices.iter().zip(evaluated) {
            let outcome = outcome.map(Arc::new);
            if let Ok(value) = &outcome {
                self.replies.insert(&unique[i].0, value);
            }
            resolved[i] = Some(outcome);
        }

        // Assemble in request order.
        requests
            .iter()
            .zip(request_slots)
            .map(|(request, slot)| match slot {
                Ok(i) => match resolved[i].as_ref().expect("every unique slot resolved above") { // PANIC-POLICY: slot invariant established two loops up (programmer-error guard)
                    Ok(result) => Reply::Ok { id: request.id, result: (**result).clone() },
                    Err(e) => {
                        telemetry::counter("serve.errors", 1);
                        Reply::Error {
                            id: Some(request.id),
                            error: ErrorReply {
                                kind: ErrorKind::Evaluation,
                                message: e.to_string(),
                            },
                        }
                    }
                },
                Err(e) => {
                    telemetry::counter("serve.errors", 1);
                    Reply::Error {
                        id: Some(request.id),
                        error: ErrorReply { kind: ErrorKind::Evaluation, message: e.to_string() },
                    }
                }
            })
            .collect()
    }

    /// Decodes one frame payload and evaluates it, returning the
    /// serialized reply payloads to frame back, in request order. A
    /// payload that is not a valid [`BatchRequest`] yields exactly one
    /// [`ErrorKind::MalformedJson`] reply with `id: null`.
    #[must_use]
    pub fn handle_payload(&self, payload: &[u8]) -> Vec<Vec<u8>> {
        let parsed: Result<BatchRequest, String> = match std::str::from_utf8(payload) {
            Ok(text) => serde_json::from_str(text).map_err(|e| e.to_string()),
            Err(e) => Err(e.to_string()),
        };
        let replies = match parsed {
            Ok(batch) => self.handle_batch(&batch.requests),
            Err(message) => {
                telemetry::counter("serve.errors", 1);
                vec![Reply::Error {
                    id: None,
                    error: ErrorReply { kind: ErrorKind::MalformedJson, message },
                }]
            }
        };
        replies.iter().map(Self::encode_reply).collect()
    }

    /// Serializes one reply payload. Infallible by construction: every
    /// reply type serializes through the vendored tree model.
    fn encode_reply(reply: &Reply) -> Vec<u8> {
        serde_json::to_string(reply)
            .expect("replies contain no unserializable values") // PANIC-POLICY: Reply is a closed type whose fields all serialize (programmer-error guard)
            .into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macgame_dcf::AccessMode;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default()).unwrap()
    }

    fn wc(players: usize) -> Query {
        Query::WcStar { players, mode: AccessMode::Basic, w_max: 4096 }
    }

    #[test]
    fn replies_come_back_in_request_order_with_echoed_ids() {
        let e = engine();
        let requests: Vec<Request> = [wc(5), wc(10), wc(5)]
            .into_iter()
            .enumerate()
            .map(|(i, query)| Request { id: 100 + i as u64, query })
            .collect();
        let replies = e.handle_batch(&requests);
        assert_eq!(replies.len(), 3);
        for (i, reply) in replies.iter().enumerate() {
            assert_eq!(reply.id(), Some(100 + i as u64));
            assert!(reply.is_ok());
        }
    }

    #[test]
    fn duplicates_coalesce_to_one_evaluation_with_identical_replies() {
        let e = engine();
        let query = Query::DeviationPayoff {
            players: 5,
            mode: AccessMode::Basic,
            w_star: 79,
            w_dev: 20,
            reaction_stages: 1,
            delta_s: 0.0,
        };
        let requests: Vec<Request> =
            (0..8).map(|i| Request { id: i, query: query.clone() }).collect();
        let replies = e.handle_batch(&requests);
        let (_, misses, _) = e.solve_caches().counters();
        // All eight requests collapse to one unit of work; the reply
        // cache saw one miss for the unique key, and the class solves
        // behind it went through the sharded solve cache.
        assert_eq!(e.reply_cache().misses(), 1);
        assert!(misses > 0);
        let Reply::Ok { result: first, .. } = &replies[0] else { panic!("expected Ok") };
        for reply in &replies[1..] {
            let Reply::Ok { result, .. } = reply else { panic!("expected Ok") };
            assert_eq!(result, first);
        }
    }

    #[test]
    fn evaluation_errors_are_structured_not_fatal() {
        let e = engine();
        let requests = vec![
            Request { id: 1, query: wc(0) }, // invalid: zero players
            Request { id: 2, query: wc(5) },
        ];
        let replies = e.handle_batch(&requests);
        assert!(matches!(
            &replies[0],
            Reply::Error { id: Some(1), error } if error.kind == ErrorKind::Evaluation
        ));
        assert!(replies[1].is_ok(), "a bad request must not poison its batch neighbors");
    }

    #[test]
    fn malformed_payload_yields_one_null_id_error_reply() {
        let e = engine();
        for payload in [&b"not json"[..], &[0xFF, 0xFE][..], b"{\"requests\": 3}"] {
            let replies = e.handle_payload(payload);
            assert_eq!(replies.len(), 1, "payload {payload:?}");
            let reply: Reply =
                serde_json::from_str(std::str::from_utf8(&replies[0]).unwrap()).unwrap();
            assert!(matches!(
                reply,
                Reply::Error { id: None, ref error } if error.kind == ErrorKind::MalformedJson
            ));
        }
    }

    #[test]
    fn hot_batch_hits_the_reply_cache() {
        let e = engine();
        let requests: Vec<Request> =
            (0..4).map(|i| Request { id: i, query: wc(5 + i as usize) }).collect();
        let cold = e.handle_batch(&requests);
        let misses_after_cold = e.reply_cache().misses();
        let hot = e.handle_batch(&requests);
        assert_eq!(e.reply_cache().misses(), misses_after_cold, "hot batch must not miss");
        assert_eq!(e.reply_cache().hits(), 4);
        assert_eq!(cold, hot, "hits are bitwise-identical to fresh evaluations");
    }
}
