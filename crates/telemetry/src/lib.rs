//! Deterministic workspace telemetry for the macgame crates.
//!
//! This crate provides the measurement layer used by `repro -- profile`:
//! counters, gauges, fixed-bucket histograms, and scoped span timers behind
//! a [`Recorder`] trait. It is intentionally dependency-free (it sits below
//! `macgame-dcf` in the workspace graph) and renders its own JSON.
//!
//! # Architecture
//!
//! Instrumented code calls the free functions in this crate
//! ([`counter`], [`gauge`], [`histogram`], [`span`]). Those forward to a
//! process-global recorder:
//!
//! * By default no recorder is installed and every call is a single relaxed
//!   atomic load plus a branch — effectively free, so instrumentation can
//!   live permanently in hot paths without perturbing benchmarks or any
//!   artifact bytes.
//! * `repro -- profile` (and tests) install a [`CollectingRecorder`] via
//!   [`set_recorder`], run a workload, then take a [`Snapshot`].
//!
//! # Determinism policy
//!
//! Snapshots separate metrics by reproducibility, mirroring how solver
//! iteration counts are excluded from the golden conformance fixtures:
//!
//! * **Counters** and **histograms** merge across threads with integer
//!   addition only, so for a deterministic workload their values are
//!   bitwise identical no matter how many worker threads ran it.
//! * **Gauges** merge by `max` over every value ever set: concurrent
//!   writers from a parallel region converge on the same retained value
//!   regardless of scheduling (a last-write-wins rule would leak thread
//!   timing into the snapshot bytes).
//! * **Span timings** are wall-clock and inherently nondeterministic; they
//!   are quarantined in a separate `timings` section of the JSON snapshot
//!   so that everything outside that section is byte-stable across runs
//!   and across `MACGAME_THREADS` settings.
//!
//! # Namespaces
//!
//! Metric names are dot-separated and prefixed by the emitting crate:
//! `dcf.*` (solver, sweep, and solve-cache internals), `core.*`
//! (evaluator, search, tournaments), `multihop.*`, `faults.*`,
//! `serve.*` (the batch-query engine: `serve.queries`, `serve.batches`,
//! `serve.coalesced`, `serve.connections`, `serve.errors`,
//! `serve.frame_errors`, and the reply-cache `serve.cache.{hits,misses,
//! evictions}` alongside the lower-tier `dcf.cache.*`), `conformance.*`,
//! and `profile.*` for the top-level `repro -- profile` workloads.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use macgame_telemetry::{self as telemetry, CollectingRecorder};
//!
//! let recorder = Arc::new(CollectingRecorder::new());
//! telemetry::set_recorder(recorder.clone());
//! {
//!     let _span = telemetry::span("example.work");
//!     telemetry::counter("example.items", 3);
//!     telemetry::histogram("example.size", 42.0);
//! }
//! telemetry::clear_recorder();
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.counter("example.items"), 3);
//! assert!(snapshot.to_json().contains("\"timings\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod collect;
mod global;
mod recorder;

pub use collect::{CollectingRecorder, HistogramSnapshot, Snapshot, TimingSnapshot};
pub use global::{
    clear_recorder, counter, gauge, histogram, recorder_installed, set_recorder, span, timing,
    Span,
};
pub use recorder::{NoopRecorder, Recorder};
