//! Physical-unit newtypes used throughout the model.
//!
//! The paper works at 1 Mbit/s where one bit takes exactly one microsecond,
//! which makes unit errors easy to miss. These newtypes keep durations,
//! frame sizes and channel rates statically distinct ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A duration in microseconds.
///
/// All channel-time quantities in the model (slot length σ, SIFS, DIFS,
/// frame transmission times, `T_s`, `T_c`, `T_slot`) are expressed in this
/// unit.
///
/// # Examples
///
/// ```
/// use macgame_dcf::units::MicroSecs;
///
/// let sifs = MicroSecs::new(28.0);
/// let difs = MicroSecs::new(128.0);
/// assert_eq!((sifs + difs).value(), 156.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct MicroSecs(f64);

impl MicroSecs {
    /// A zero-length duration.
    pub const ZERO: MicroSecs = MicroSecs(0.0);

    /// Creates a duration of `us` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    #[must_use]
    pub fn new(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "duration must be finite and non-negative"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        MicroSecs(us)
    }

    /// Returns the raw number of microseconds.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the duration in seconds.
    #[must_use]
    pub fn to_seconds(self) -> f64 {
        self.0 * 1e-6
    }

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_seconds(secs: f64) -> Self {
        MicroSecs::new(secs * 1e6)
    }
}

impl fmt::Display for MicroSecs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} µs", self.0)
    }
}

impl Add for MicroSecs {
    type Output = MicroSecs;
    fn add(self, rhs: MicroSecs) -> MicroSecs {
        MicroSecs(self.0 + rhs.0)
    }
}

impl AddAssign for MicroSecs {
    fn add_assign(&mut self, rhs: MicroSecs) {
        self.0 += rhs.0;
    }
}

impl Sub for MicroSecs {
    type Output = MicroSecs;
    fn sub(self, rhs: MicroSecs) -> MicroSecs {
        MicroSecs(self.0 - rhs.0)
    }
}

impl Mul<f64> for MicroSecs {
    type Output = MicroSecs;
    fn mul(self, rhs: f64) -> MicroSecs {
        MicroSecs(self.0 * rhs)
    }
}

impl Mul<MicroSecs> for f64 {
    type Output = MicroSecs;
    fn mul(self, rhs: MicroSecs) -> MicroSecs {
        MicroSecs(self * rhs.0)
    }
}

impl Div<MicroSecs> for MicroSecs {
    /// Dividing two durations yields a dimensionless ratio.
    type Output = f64;
    fn div(self, rhs: MicroSecs) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for MicroSecs {
    fn sum<I: Iterator<Item = MicroSecs>>(iter: I) -> MicroSecs {
        iter.fold(MicroSecs::ZERO, Add::add)
    }
}

/// A frame or header size in bits.
///
/// # Examples
///
/// ```
/// use macgame_dcf::units::{BitRate, Bits};
///
/// let payload = Bits::new(8184);
/// let rate = BitRate::from_mbps(1.0);
/// assert_eq!(payload.tx_time(rate).value(), 8184.0);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Bits(u32);

impl Bits {
    /// Creates a size of `bits` bits.
    #[must_use]
    pub const fn new(bits: u32) -> Self {
        Bits(bits)
    }

    /// Returns the raw number of bits.
    #[must_use]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Time needed to transmit this many bits at `rate`.
    #[must_use]
    pub fn tx_time(self, rate: BitRate) -> MicroSecs {
        MicroSecs::new(f64::from(self.0) / rate.bits_per_microsec())
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bits", self.0)
    }
}

impl Add for Bits {
    type Output = Bits;
    fn add(self, rhs: Bits) -> Bits {
        Bits(self.0 + rhs.0)
    }
}

/// A channel bit rate.
///
/// Stored as bits per microsecond so that `Bits / BitRate` lands directly in
/// [`MicroSecs`]; 1 Mbit/s is exactly 1 bit/µs.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct BitRate(f64);

impl BitRate {
    /// Creates a rate from megabits per second.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is not strictly positive and finite.
    #[must_use]
    pub fn from_mbps(mbps: f64) -> Self {
        assert!(mbps.is_finite() && mbps > 0.0, "bit rate must be positive and finite"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        BitRate(mbps)
    }

    /// Returns the rate in megabits per second.
    #[must_use]
    pub fn mbps(self) -> f64 {
        self.0
    }

    /// Returns the rate in bits per microsecond (numerically equal to Mbit/s).
    #[must_use]
    pub fn bits_per_microsec(self) -> f64 {
        self.0
    }
}

impl Default for BitRate {
    /// The paper's 1 Mbit/s channel.
    fn default() -> Self {
        BitRate::from_mbps(1.0)
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Mbit/s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microsecs_arithmetic() {
        let a = MicroSecs::new(10.0);
        let b = MicroSecs::new(2.5);
        assert_eq!((a + b).value(), 12.5);
        assert_eq!((a - b).value(), 7.5);
        assert_eq!((a * 2.0).value(), 20.0);
        assert_eq!((2.0 * a).value(), 20.0);
        assert!((a / b - 4.0).abs() < 1e-12);
    }

    #[test]
    fn microsecs_sum_and_assign() {
        let total: MicroSecs = [1.0, 2.0, 3.0].into_iter().map(MicroSecs::new).sum();
        assert_eq!(total.value(), 6.0);
        let mut x = MicroSecs::new(1.0);
        x += MicroSecs::new(2.0);
        assert_eq!(x.value(), 3.0);
    }

    #[test]
    fn seconds_round_trip() {
        let t = MicroSecs::from_seconds(2.0);
        assert_eq!(t.value(), 2e6);
        assert_eq!(t.to_seconds(), 2.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        let _ = MicroSecs::new(-1.0);
    }

    #[test]
    fn one_mbps_bit_takes_one_microsecond() {
        let rate = BitRate::default();
        assert_eq!(Bits::new(8184).tx_time(rate).value(), 8184.0);
    }

    #[test]
    fn two_mbps_halves_tx_time() {
        let rate = BitRate::from_mbps(2.0);
        assert_eq!(Bits::new(1000).tx_time(rate).value(), 500.0);
    }

    #[test]
    fn bits_add() {
        assert_eq!((Bits::new(272) + Bits::new(128)).value(), 400);
    }

    #[test]
    fn display_formats() {
        assert_eq!(MicroSecs::new(50.0).to_string(), "50 µs");
        assert_eq!(Bits::new(112).to_string(), "112 bits");
        assert_eq!(BitRate::default().to_string(), "1 Mbit/s");
    }
}
