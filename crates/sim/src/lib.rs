//! Slot-level discrete-event simulator of saturated IEEE 802.11 DCF with
//! per-node contention windows.
//!
//! This crate is the *measurement substrate* of the `macgame` workspace —
//! the stand-in for the NS-2 simulations in Section VII of Chen &
//! Leneutre's ICDCS 2007 paper. It simulates the exact slotted contention
//! process the analytical model (`macgame_dcf`) abstracts:
//!
//! * [`node`] — per-node binary exponential backoff state machines;
//! * [`engine`] — the slot loop: idle / success / collision outcomes, with
//!   channel-time accounting for basic and RTS/CTS access;
//! * [`report`] — per-stage measurements: `τ̂`, `p̂`, throughput, and the
//!   payoff measurement `(n_s·g − n_e·e)/t_m` used by the paper's
//!   equilibrium-search algorithm;
//! * [`observe`] — peer contention-window estimation from overheard
//!   traffic, the measurement primitive TFT relies on;
//! * [`delay`] — measured head-of-line access delays (service intervals),
//!   the operational counterpart of `macgame_dcf::delay`;
//! * [`traffic`] — saturated (the paper's regime) or Poisson arrivals
//!   with per-node queues, for unsaturated what-ifs;
//! * [`validation`] — packaged model-vs-measurement comparison (the
//!   Section VII.A methodology).
//!
//! Simulations are deterministic per seed (ChaCha8 streams).
//!
//! # Quick start
//!
//! ```
//! use macgame_sim::{Engine, SimConfig};
//!
//! let config = SimConfig::builder().symmetric(5, 76).seed(42).build()?;
//! let mut engine = Engine::new(&config);
//! let report = engine.run_slots(100_000);
//! assert!(report.throughput(config.params()) > 0.5);
//! # Ok::<(), macgame_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod config;
pub mod delay;
pub mod engine;
pub mod error;
pub mod node;
pub mod observe;
pub mod report;
pub mod trace;
pub mod traffic;
pub mod validation;

pub use batch::{replicate, replicate_threads, Summary};
pub use config::{SimConfig, SimConfigBuilder};
pub use delay::DelayTracker;
pub use engine::{Engine, SlotOutcome};
pub use error::SimError;
pub use node::{Node, NodeStats};
pub use observe::{estimate_windows, estimate_windows_partial, invert_window, WindowEstimate};
pub use report::{ChannelCounts, StageReport};
pub use trace::{Trace, TraceEvent};
pub use traffic::TrafficModel;
pub use validation::{
    relative_error, validate_edca_sweep, validate_fixed_point, validate_fixed_point_sweep,
    QuantitySweep,
    SweepReport, ValidationReport, ValidationRow,
};
