// Lint fixture: the panic-policy rules should fire on every site below.
fn unmarked(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("present");
    assert!(a == b);
    assert_eq!(a, b);
    if a > b {
        panic!("impossible");
    }
    match a {
        0 => unreachable!(),
        _ => a,
    }
}

fn empty_marker(v: Option<u32>) -> u32 {
    v.unwrap() // PANIC-POLICY:
}
