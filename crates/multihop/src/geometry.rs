//! Planar geometry for node placement.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A point in the simulation plane (meters).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance_to(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Moves `step` meters toward `target`, stopping exactly at it if
    /// closer than `step`.
    #[must_use]
    pub fn step_toward(&self, target: &Point, step: f64) -> Point {
        let d = self.distance_to(target);
        if d <= step || d == 0.0 {
            *target
        } else {
            let f = step / d;
            Point { x: self.x + (target.x - self.x) * f, y: self.y + (target.y - self.y) * f }
        }
    }
}

impl core::fmt::Display for Point {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// The rectangular simulation arena `[0, width] × [0, height]` (meters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arena {
    /// Width in meters.
    pub width: f64,
    /// Height in meters.
    pub height: f64,
}

impl Arena {
    /// Creates an arena.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are positive and finite.
    #[must_use]
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width > 0.0 && width.is_finite(), "arena width must be positive"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        assert!(height > 0.0 && height.is_finite(), "arena height must be positive"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        Arena { width, height }
    }

    /// The paper's 1000 m × 1000 m area.
    #[must_use]
    pub fn paper() -> Self {
        Arena::new(1000.0, 1000.0)
    }

    /// Whether `p` lies inside the arena (inclusive).
    #[must_use]
    pub fn contains(&self, p: &Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// A uniformly random point inside the arena.
    #[must_use]
    pub fn random_point(&self, rng: &mut impl Rng) -> Point {
        Point { x: rng.gen_range(0.0..=self.width), y: rng.gen_range(0.0..=self.height) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(&a), 0.0);
    }

    #[test]
    fn step_toward_moves_proportionally() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let mid = a.step_toward(&b, 4.0);
        assert!((mid.x - 4.0).abs() < 1e-12 && mid.y.abs() < 1e-12);
        // Overshoot clamps at the target.
        let end = a.step_toward(&b, 50.0);
        assert_eq!(end, b);
        // Zero-distance degenerate case.
        assert_eq!(a.step_toward(&a, 1.0), a);
    }

    #[test]
    fn random_points_stay_inside() {
        let arena = Arena::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(arena.contains(&arena.random_point(&mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn degenerate_arena_rejected() {
        let _ = Arena::new(0.0, 10.0);
    }
}
