//! Fairness metrics over per-node allocations.
//!
//! The paper's Section IV credits TFT with ensuring "fairness among
//! players", and the Section V.B refinement uses fairness as a criterion.
//! This module quantifies it: Jain's fairness index and the min/max ratio
//! over any per-node allocation (utility rates, throughputs, payoffs).

/// Jain's fairness index `(Σx)² / (n·Σx²)` of a non-negative allocation:
/// 1 for perfectly equal shares, `1/n` when one node takes everything.
///
/// # Examples
///
/// ```
/// use macgame_dcf::fairness::jain_index;
///
/// assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
/// assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `allocation` is empty or contains a negative or non-finite
/// value.
#[must_use]
pub fn jain_index(allocation: &[f64]) -> f64 {
    assert!(!allocation.is_empty(), "allocation must be non-empty"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
    assert!( // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        allocation.iter().all(|x| x.is_finite() && *x >= 0.0),
        "allocation entries must be finite and non-negative"
    );
    let sum: f64 = allocation.iter().sum();
    let sum_sq: f64 = allocation.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        // All-zero allocation: everyone equally (gets nothing).
        return 1.0;
    }
    sum * sum / (allocation.len() as f64 * sum_sq)
}

/// Min/max ratio of an allocation: 1 for equal shares, → 0 as the most
/// disadvantaged node is starved.
///
/// # Panics
///
/// Same conditions as [`jain_index`].
#[must_use]
pub fn min_max_ratio(allocation: &[f64]) -> f64 {
    assert!(!allocation.is_empty(), "allocation must be non-empty"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
    assert!( // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        allocation.iter().all(|x| x.is_finite() && *x >= 0.0),
        "allocation entries must be finite and non-negative"
    );
    let max = allocation.iter().copied().fold(f64::MIN, f64::max);
    if max == 0.0 {
        return 1.0;
    }
    let min = allocation.iter().copied().fold(f64::MAX, f64::min);
    min / max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixedpoint::{solve, SolveOptions};
    use crate::utility::{all_utilities, UtilityParams};
    use crate::DcfParams;

    #[test]
    fn equal_allocation_is_perfectly_fair() {
        assert_eq!(jain_index(&[3.0, 3.0, 3.0]), 1.0);
        assert_eq!(min_max_ratio(&[3.0, 3.0, 3.0]), 1.0);
    }

    #[test]
    fn monopoly_is_maximally_unfair() {
        let idx = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
        assert_eq!(min_max_ratio(&[1.0, 0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn jain_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        assert!((jain_index(&a) - jain_index(&b)).abs() < 1e-12);
    }

    #[test]
    fn zero_allocation_counts_as_fair() {
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(min_max_ratio(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn symmetric_profile_is_fair_heterogeneous_is_not() {
        // The claim the metric exists to check: equal windows ⇒ fairness 1,
        // an undercutting node skews the allocation.
        let p = DcfParams::default();
        let u = UtilityParams::default();
        let eq = solve(&[76; 5], &p, SolveOptions::default()).unwrap();
        let us = all_utilities(&eq.taus, &eq.collision_probs, &p, &u);
        assert!(jain_index(&us) > 0.999_999);

        let eq = solve(&[19, 76, 76, 76, 76], &p, SolveOptions::default()).unwrap();
        let us = all_utilities(&eq.taus, &eq.collision_probs, &p, &u);
        assert!(jain_index(&us) < 0.9, "index {}", jain_index(&us));
        assert!(min_max_ratio(&us) < 0.6);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_allocation_panics() {
        let _ = jain_index(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_allocation_panics() {
        let _ = jain_index(&[1.0, -0.1]);
    }
}
