//! Estimating a peer's contention window from overheard traffic.
//!
//! The TFT strategy requires each player to "measure the CW value of any
//! other player in the last stage" (paper Section IV; the mechanics of such
//! measurement in saturated networks are due to Kyasanur & Vaidya, DSN'03).
//! In promiscuous mode a node sees every attempt on the channel, so it can
//! count each peer's attempts per slot, estimate `τ̂_j`, estimate the
//! channel state `p̂_j` the peer faces, and invert the backoff chain
//! `τ(W, p̂_j)` — strictly decreasing in `W` — to recover `Ŵ_j`.

use macgame_dcf::markov::transmission_probability;
use macgame_dcf::DcfError;
use serde::{Deserialize, Serialize};

use crate::report::StageReport;

/// A peer-window estimate with its inputs, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowEstimate {
    /// Estimated initial contention window `Ŵ`.
    pub window: u32,
    /// The measured per-slot attempt rate the estimate inverts.
    pub tau_hat: f64,
    /// The collision probability assumed for the peer.
    pub p_hat: f64,
}

/// Inverts the backoff chain: the window `Ŵ ∈ [1, w_max]` whose
/// `τ(Ŵ, p_hat)` is closest to `tau_hat`.
///
/// # Examples
///
/// ```
/// use macgame_dcf::markov::transmission_probability;
/// use macgame_sim::invert_window;
///
/// // The exact τ of W = 76 inverts back to 76.
/// let tau = transmission_probability(76, 0.1, 5)?;
/// assert_eq!(invert_window(tau, 0.1, 5, 1024)?.window, 76);
/// # Ok::<(), macgame_dcf::DcfError>(())
/// ```
///
/// # Errors
///
/// Returns [`DcfError::InvalidParameter`] if `tau_hat` is not in `(0, 1]`,
/// `p_hat` not in `[0, 1)`, or `w_max == 0`.
pub fn invert_window(
    tau_hat: f64,
    p_hat: f64,
    max_backoff_stage: u32,
    w_max: u32,
) -> Result<WindowEstimate, DcfError> {
    if !(tau_hat > 0.0 && tau_hat <= 1.0) {
        return Err(DcfError::invalid("tau_hat", "attempt rate must be in (0, 1]"));
    }
    if !(0.0..1.0).contains(&p_hat) {
        return Err(DcfError::invalid("p_hat", "collision probability must be in [0, 1)"));
    }
    if w_max == 0 {
        return Err(DcfError::invalid("w_max", "window space must be non-empty"));
    }
    let tau_of = |w: u32| transmission_probability(w, p_hat, max_backoff_stage);
    // τ(W) strictly decreases in W: binary search the crossing.
    if tau_of(1)? <= tau_hat {
        return Ok(WindowEstimate { window: 1, tau_hat, p_hat });
    }
    if tau_of(w_max)? >= tau_hat {
        return Ok(WindowEstimate { window: w_max, tau_hat, p_hat });
    }
    let (mut lo, mut hi) = (1u32, w_max); // τ(lo) > tau_hat > τ(hi)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if tau_of(mid)? > tau_hat {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (tl, th) = (tau_of(lo)?, tau_of(hi)?);
    let window = if (tl - tau_hat).abs() <= (th - tau_hat).abs() { lo } else { hi };
    Ok(WindowEstimate { window, tau_hat, p_hat })
}

/// Estimates every peer's window from a stage report, as seen by
/// `observer`: for each peer `j`, `τ̂_j` comes from its attempt count and
/// `p̂_j` from the other nodes' measured attempt rates
/// (`p̂_j = 1 − Π_{k≠j}(1 − τ̂_k)` — the promiscuous observer sees the same
/// channel the peer does).
///
/// Returns one estimate per node; the observer's own entry is its true
/// window (it knows its own configuration).
///
/// # Errors
///
/// Returns [`DcfError::InvalidParameter`] if the report contains a node
/// with zero observed attempts (no information to invert) — callers should
/// measure over enough slots.
pub fn estimate_windows(
    observer: usize,
    report: &StageReport,
    max_backoff_stage: u32,
    w_max: u32,
) -> Result<Vec<WindowEstimate>, DcfError> {
    let n = report.node_count();
    if observer >= n {
        return Err(DcfError::invalid("observer", "index out of range"));
    }
    let taus: Vec<f64> = (0..n).map(|i| report.tau_hat(i)).collect();
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        if j == observer {
            out.push(WindowEstimate {
                window: report.windows[j],
                tau_hat: taus[j],
                p_hat: report.p_hat(j),
            });
            continue;
        }
        if report.node_stats[j].attempts == 0 {
            return Err(DcfError::invalid(
                "report",
                format!("node {j} made no attempts in the observation window"),
            ));
        }
        let p_hat: f64 = 1.0
            - taus
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != j)
                .map(|(_, &t)| 1.0 - t)
                .product::<f64>();
        out.push(invert_window(taus[j], p_hat.clamp(0.0, 1.0 - 1e-9), max_backoff_stage, w_max)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Engine;
    use macgame_dcf::fixedpoint::solve_symmetric;
    use macgame_dcf::DcfParams;

    #[test]
    fn inversion_round_trips_exact_tau() {
        let p = DcfParams::default();
        for &w in &[4u32, 16, 76, 300, 1000] {
            let sym = solve_symmetric(5, w, &p).unwrap();
            let est =
                invert_window(sym.tau, sym.collision_prob, p.max_backoff_stage(), 4096).unwrap();
            assert_eq!(est.window, w, "failed to invert W = {w}");
        }
    }

    #[test]
    fn inversion_clamps_at_bounds() {
        let est = invert_window(0.9999, 0.0, 5, 1024).unwrap();
        assert_eq!(est.window, 1);
        let est = invert_window(1e-7, 0.0, 5, 1024).unwrap();
        assert_eq!(est.window, 1024);
    }

    #[test]
    fn inversion_rejects_bad_inputs() {
        assert!(invert_window(0.0, 0.1, 5, 64).is_err());
        assert!(invert_window(0.5, 1.0, 5, 64).is_err());
        assert!(invert_window(0.5, 0.1, 5, 0).is_err());
    }

    #[test]
    fn estimates_recover_simulated_windows() {
        // Observe a heterogeneous network long enough and the estimated
        // windows should land close to the configured ones.
        let windows = vec![32u32, 128, 64, 32, 256];
        let config = SimConfig::builder().windows(windows.clone()).seed(21).build().unwrap();
        let mut engine = Engine::new(&config);
        let report = engine.run_slots(400_000);
        let estimates =
            estimate_windows(0, &report, config.params().max_backoff_stage(), 2048).unwrap();
        assert_eq!(estimates[0].window, 32); // own window is exact
        for (j, est) in estimates.iter().enumerate().skip(1) {
            let rel = (f64::from(est.window) - f64::from(windows[j])).abs() / f64::from(windows[j]);
            assert!(
                rel < 0.2,
                "node {j}: estimated {} for true {} ({:.0}% off)",
                est.window,
                windows[j],
                rel * 100.0
            );
        }
    }

    #[test]
    fn estimation_needs_observations() {
        let config = SimConfig::builder().windows(vec![8, 8]).seed(3).build().unwrap();
        let mut engine = Engine::new(&config);
        let report = engine.run_slots(0);
        assert!(estimate_windows(0, &report, 5, 64).is_err());
    }

    #[test]
    fn observer_index_validated() {
        let config = SimConfig::builder().windows(vec![8, 8]).seed(3).build().unwrap();
        let mut engine = Engine::new(&config);
        let report = engine.run_slots(1000);
        assert!(estimate_windows(5, &report, 5, 64).is_err());
    }
}
