//! The lock-order pass: a static consistent-ordering check over lock
//! acquisitions, so the sharded `SolveCache`/`ReplyCache` and the
//! telemetry recorder cannot grow a deadlock unnoticed.
//!
//! An *acquisition* is a zero-argument `.lock()` / `.read()` / `.write()`
//! method call — the signatures of `Mutex::lock` and `RwLock::read` /
//! `write` (`io::Write::write` takes a buffer, so it never matches).
//! Each acquisition is labeled `Owner::receiver`, where `Owner` is the
//! enclosing impl target (or the file stem for free fns) and `receiver`
//! is the parser's best-effort receiver hint; `shard.read()` inside two
//! different types therefore gets two different labels.
//!
//! The pass builds a *may-precede* relation over labels: `A → B` when
//! some fn acquires `A` and later (by line) either acquires `B` itself or
//! calls — directly or transitively — a fn that acquires `B`. Same-label
//! pairs are excluded: shard-then-shard in a loop is the sharding
//! pattern, not an ordering hazard (self-deadlock on one lock is out of
//! scope here). A cycle in the relation means two threads can acquire
//! the involved locks in opposite orders; each distinct cycle is
//! reported once, anchored at the first edge's acquisition site, with
//! every edge of the cycle spelled out in the witness.
//!
//! Unlike the taint and panic passes, lock propagation follows only
//! *precisely resolved* calls: path calls, bare calls, and `self.`
//! method calls. Non-`self` method calls resolve by name to every
//! same-named workspace method, and under that over-approximation every
//! `.len()` inside a guard would "acquire" every lock any `len` method
//! touches — all noise, no signal. The trade-off is explicit
//! (DESIGN.md §18): this pass favors precision over soundness, so a
//! deadlock threaded purely through a trait-object call can escape it.
//!
//! Remaining over-approximation: guards are assumed held until the end
//! of the fn (drops are invisible to the parser), so spurious cycles
//! are still possible — they are waivable with a rationale.
//! Under-approximation: locks acquired through closures passed as
//! arguments are attributed to the defining fn, not the call site, and
//! same-label cycles (self-deadlock on one lock) are out of scope.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parser::Event;
use crate::rules::Finding;

use super::{Ctx, RULE_LOCK_ORDER};

/// Zero-argument methods that acquire a lock guard.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// One labeled acquisition site.
struct Acq {
    label: String,
    line: u32,
}

/// Labels every acquisition in one fn, in source order.
fn acquisitions(owner: &str, def_events: &[Event]) -> Vec<Acq> {
    let mut out = Vec::new();
    for ev in def_events {
        if let Event::MethodCall { name, receiver, zero_args: true, line } = ev {
            if LOCK_METHODS.contains(&name.as_str()) {
                let recv = receiver.as_deref().filter(|r| *r != "self").unwrap_or("<expr>");
                out.push(Acq { label: format!("{owner}::{recv}"), line: *line });
            }
        }
    }
    out
}

/// Runs the pass; returns findings and the number of acquisition sites.
pub(super) fn run(ctx: &Ctx<'_>) -> (Vec<Finding>, usize) {
    let g = ctx.graph;
    let owner_of = |id: usize| -> String {
        let node = &g.fns[id];
        match &node.def.impl_target {
            Some(t) => t.clone(),
            None => node
                .file
                .rsplit('/')
                .next()
                .and_then(|f| f.strip_suffix(".rs"))
                .unwrap_or("<file>")
                .to_string(),
        }
    };
    let acqs: Vec<Vec<Acq>> = (0..g.fns.len())
        .map(|id| {
            if g.fns[id].def.is_test {
                Vec::new()
            } else {
                acquisitions(&owner_of(id), &g.fns[id].def.events)
            }
        })
        .collect();
    let site_count: usize = acqs.iter().map(Vec::len).sum();

    // Precisely-resolved call events per fn: `(line, callee)` pairs from
    // path calls, bare calls, and `self.` method calls only (see the
    // module docs for why non-`self` method calls are excluded here).
    let precise = |ev: &Event| -> bool {
        match ev {
            Event::PathCall { .. } | Event::BareCall { .. } => true,
            Event::MethodCall { receiver, .. } => receiver.as_deref() == Some("self"),
            Event::MacroCall { .. } => false,
        }
    };
    let calls: Vec<Vec<(u32, usize)>> = (0..g.fns.len())
        .map(|id| {
            let mut out: Vec<(u32, usize)> = Vec::new();
            for ev in &g.fns[id].def.events {
                if !precise(ev) {
                    continue;
                }
                for c in g.resolve_event(id, ev) {
                    if c != id {
                        out.push((ev.line(), c));
                    }
                }
            }
            out
        })
        .collect();

    // Fixpoint: the set of labels each fn may acquire, transitively.
    let mut owned: Vec<BTreeSet<String>> = acqs
        .iter()
        .map(|list| list.iter().map(|a| a.label.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for id in 0..g.fns.len() {
            let callee_labels: Vec<String> = calls[id]
                .iter()
                .flat_map(|&(_, c)| owned[c].iter().cloned())
                .collect();
            for l in callee_labels {
                changed |= owned[id].insert(l);
            }
        }
        if !changed {
            break;
        }
    }

    // May-precede edges, each with one deterministic witness description
    // (first writer wins; fns visit in id order, events in source order).
    let mut edges: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut add = |from: &str, to: &str, desc: String| {
        edges.entry((from.to_string(), to.to_string())).or_insert(desc);
    };
    for id in 0..g.fns.len() {
        let node = &g.fns[id];
        let list = &acqs[id];
        // Intra-fn: a later acquisition under an earlier, different label.
        for (i, a) in list.iter().enumerate() {
            for b in &list[i + 1..] {
                if a.label != b.label {
                    add(
                        &a.label,
                        &b.label,
                        format!(
                            "{} acquires `{}` at line {} then `{}` at line {}",
                            node.locate(),
                            a.label,
                            a.line,
                            b.label,
                            b.line
                        ),
                    );
                }
            }
        }
        // Inter-procedural: a precisely-resolved call at/after an
        // acquisition reaches a fn that (transitively) acquires another
        // label.
        for a in list {
            for &(call_line, c) in &calls[id] {
                if call_line < a.line {
                    continue;
                }
                for b_label in &owned[c] {
                    if *b_label != a.label {
                        add(
                            &a.label,
                            b_label,
                            format!(
                                "{} holds `{}` (line {}) across a call at line {} \
                                 into {}, which acquires `{}`",
                                node.locate(),
                                a.label,
                                a.line,
                                call_line,
                                g.fns[c].locate(),
                                b_label
                            ),
                        );
                    }
                }
            }
        }
    }

    // Cycle detection over the label digraph: for each edge A → B, BFS
    // from B; a path back to A closes a cycle. Cycles dedup by their
    // canonical rotation (lexicographically-smallest label first).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut findings = Vec::new();
    for (a, b) in edges.keys() {
        // BFS from b back to a.
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        parent.insert(b.as_str(), b.as_str());
        let mut queue: VecDeque<&str> = VecDeque::new();
        queue.push_back(b.as_str());
        while let Some(u) = queue.pop_front() {
            if u == a {
                break;
            }
            for &v in adj.get(u).into_iter().flatten() {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(v) {
                    e.insert(u);
                    queue.push_back(v);
                }
            }
        }
        if !parent.contains_key(a.as_str()) {
            continue;
        }
        // Reconstruct b → … → a, then close the cycle a → b → … .
        let mut back: Vec<String> = Vec::new();
        let mut cur = a.as_str();
        while cur != b.as_str() {
            back.push(cur.to_string());
            cur = parent[cur];
        }
        back.push(b.clone());
        back.reverse(); // b, …, a
        let mut cycle = vec![a.clone()];
        cycle.extend(back.into_iter().filter(|l| l != a)); // a, b, …
        // Canonical rotation for dedup.
        let min_pos = cycle
            .iter()
            .enumerate()
            .min_by(|(_, x), (_, y)| x.cmp(y))
            .map_or(0, |(i, _)| i);
        let canonical: Vec<String> =
            cycle.iter().cycle().skip(min_pos).take(cycle.len()).cloned().collect();
        if !seen.insert(canonical.clone()) {
            continue;
        }
        // Witness: one edge description per consecutive pair.
        let mut witness = Vec::new();
        for i in 0..canonical.len() {
            let from = &canonical[i];
            let to = &canonical[(i + 1) % canonical.len()];
            if let Some(desc) = edges.get(&(from.clone(), to.clone())) {
                witness.push(desc.clone());
            }
        }
        // Anchor at the first edge's description site: recover file:line
        // from the first acquisition matching the canonical head label.
        let (anchor_path, anchor_line) = (0..g.fns.len())
            .flat_map(|id| {
                acqs[id]
                    .iter()
                    .filter(|acq| acq.label == canonical[0])
                    .map(move |acq| (g.fns[id].file.clone(), acq.line))
            })
            .min()
            .unwrap_or_else(|| ("<unknown>".to_string(), 0));
        let mut ring = canonical.join("` → `");
        ring.push_str("` → `");
        ring.push_str(&canonical[0]);
        findings.push(ctx.finding(
            RULE_LOCK_ORDER,
            &anchor_path,
            anchor_line,
            format!(
                "inconsistent lock-acquisition order: cycle `{ring}`; two threads \
                 taking these locks in opposite orders can deadlock"
            ),
            witness,
        ));
    }
    (findings, site_count)
}

#[cfg(test)]
mod tests {
    use crate::analysis::{analyze, AnalysisConfig, RULE_LOCK_ORDER};

    fn config() -> AnalysisConfig {
        AnalysisConfig {
            taint_roots: vec![],
            wall_clock_allow: vec![],
            panic_api_prefixes: vec![],
        }
    }

    #[test]
    fn opposite_intra_fn_orders_cycle() {
        let files = vec![(
            "crates/app/src/lib.rs".to_string(),
            "struct S;\n\
             impl S {\n\
             fn ab(&self) { let _a = self.alpha.lock(); let _b = self.beta.lock(); }\n\
             fn ba(&self) { let _b = self.beta.lock(); let _a = self.alpha.lock(); }\n\
             }\n"
                .to_string(),
        )];
        let report = analyze(&files, &config());
        let cycles: Vec<&crate::rules::Finding> =
            report.findings.iter().filter(|f| f.rule == RULE_LOCK_ORDER).collect();
        assert_eq!(cycles.len(), 1, "{:?}", report.findings);
        assert!(cycles[0].message.contains("S::alpha"), "{}", cycles[0].message);
        assert!(cycles[0].message.contains("S::beta"));
        assert_eq!(cycles[0].witness.len(), 2, "one description per edge");
        assert_eq!(report.stats.lock_sites, 4);
    }

    #[test]
    fn consistent_order_and_sharded_same_label_stay_silent() {
        let files = vec![(
            "crates/app/src/lib.rs".to_string(),
            "struct S;\n\
             impl S {\n\
             fn ab(&self) { let _a = self.alpha.lock(); let _b = self.beta.lock(); }\n\
             fn ab2(&self) { let _a = self.alpha.lock(); self.tail(); }\n\
             fn tail(&self) { let _b = self.beta.lock(); }\n\
             fn shards(&self) { for s in &self.shard { let _g = s.read(); } \
             let _h = self.shard.read(); }\n\
             }\n"
                .to_string(),
        )];
        let report = analyze(&files, &config());
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn interprocedural_opposite_order_is_caught() {
        let files = vec![(
            "crates/app/src/lib.rs".to_string(),
            "struct S;\n\
             impl S {\n\
             fn front(&self) { let _a = self.alpha.lock(); self.back_b(); }\n\
             fn back_b(&self) { let _b = self.beta.lock(); }\n\
             fn rev(&self) { let _b = self.beta.lock(); self.back_a(); }\n\
             fn back_a(&self) { let _a = self.alpha.lock(); }\n\
             }\n"
                .to_string(),
        )];
        let report = analyze(&files, &config());
        assert_eq!(
            report.findings.iter().filter(|f| f.rule == RULE_LOCK_ORDER).count(),
            1,
            "{:?}",
            report.findings
        );
        let f = &report.findings[0];
        assert!(
            f.witness.iter().any(|w| w.contains("holds `S::alpha`")),
            "witness must spell out the held-across-call edge: {:?}",
            f.witness
        );
    }
}
