//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p macgame-bench --bin repro -- all [--quick]
//! cargo run --release -p macgame-bench --bin repro -- table2
//! ```
//!
//! Each experiment prints its paper-vs-measured comparison and writes a
//! JSON artifact under `artifacts/`.

use macgame_bench::render::{text_table, write_artifact, write_raw_artifact};
use macgame_bench::{
    detect_exp, deviation_exp, edca_exp, extensions_exp, figures, multihop_exp, profile_exp,
    robustness_exp, search_exp, tables, BenchError,
};
use macgame_conformance::{run_conformance, ConformanceSettings};
use macgame_dcf::{AccessMode, MicroSecs};

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "multihop",
    "shortsighted",
    "malicious",
    "search",
    "ne-interval",
    "convergence",
    "delay",
    "edca",
    "detect",
    "ratecontrol",
    "tournament",
    "validate",
    "myopia",
    "bench-solver",
    "bench-serve",
    "conformance",
    "profile",
    "robustness",
    "lint",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let picked: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let run_all = picked.is_empty() || picked.contains(&"all");
    let wants = |name: &str| run_all || picked.contains(&name);

    if !run_all {
        for p in &picked {
            if !EXPERIMENTS.contains(p) && *p != "all" {
                eprintln!("unknown experiment `{p}`; available: all {EXPERIMENTS:?} [--quick]");
                std::process::exit(2);
            }
        }
    }

    let mut failures = 0;
    for name in EXPERIMENTS {
        if !wants(name) {
            continue;
        }
        println!("\n════════ {name} ════════");
        let result = match *name {
            "table1" => table1(),
            "table2" => ne_table(AccessMode::Basic, quick),
            "table3" => ne_table(AccessMode::RtsCts, quick),
            "fig2" => figure(AccessMode::Basic),
            "fig3" => figure(AccessMode::RtsCts),
            "multihop" => multihop(quick),
            "shortsighted" => shortsighted(),
            "malicious" => malicious(),
            "search" => search(quick),
            "ne-interval" => ne_interval(),
            "convergence" => convergence(),
            "delay" => delay(),
            "edca" => edca(quick),
            "detect" => detect(quick),
            "ratecontrol" => ratecontrol(),
            "tournament" => tournament(),
            "validate" => validate(quick),
            "myopia" => myopia(),
            "bench-solver" => bench_solver(quick),
            "bench-serve" => bench_serve(quick),
            "conformance" => conformance(quick),
            "profile" => profile(quick),
            "robustness" => robustness(quick),
            "lint" => lint(),
            _ => unreachable!(), // PANIC-POLICY: unreachable: experiment names are validated against EXPERIMENTS above
        };
        if let Err(e) = result {
            eprintln!("experiment {name} failed: {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

fn table1() -> Result<(), BenchError> {
    let rows = tables::table1();
    let body: Vec<Vec<String>> =
        rows.iter().map(|r| vec![r.name.to_string(), r.value.clone()]).collect();
    println!("{}", text_table(&["parameter", "value"], &body));
    let path = write_artifact("table1", &rows)?;
    println!("artifact: {}", path.display());
    Ok(())
}

fn ne_table(mode: AccessMode, quick: bool) -> Result<(), BenchError> {
    let (duration, label) = if quick {
        (MicroSecs::from_seconds(10.0), "10 s/point (--quick)")
    } else {
        (MicroSecs::from_seconds(120.0), "120 s/point")
    };
    println!("efficient NE by population, {mode} access (sim: {label})");
    let rows = tables::ne_table(mode, 4096, duration, 42)?;
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.paper_w_star.to_string(),
                r.analytic_w_star.to_string(),
                r.tau_inversion_w_star.to_string(),
                format!("{:.1}", r.sim_mean),
                format!("{:.2}", r.sim_var),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &["n", "paper W_c*", "exact argmax", "τ*-inversion", "sim Ŵ (mean)", "sim Var"],
            &body
        )
    );
    let name = if mode == AccessMode::Basic { "table2" } else { "table3" };
    let path = write_artifact(name, &rows)?;
    println!("artifact: {}", path.display());
    Ok(())
}

fn figure(mode: AccessMode) -> Result<(), BenchError> {
    let fig_name = if mode == AccessMode::Basic { "fig2" } else { "fig3" };
    println!("global payoff U/C vs common CW, {mode} access (n = 5, 20, 50)");
    let series = figures::figure(mode, 2048)?;
    let mut body = Vec::new();
    for s in &series {
        let shape = s.shape();
        body.push(vec![
            s.n.to_string(),
            shape.argmax_window.to_string(),
            format!("{:.4}", shape.max_value),
            format!("{:.4}", shape.at_min_window),
            format!("{:.4}", shape.at_max_window),
            format!("{:.2}%", 100.0 * shape.flatness_near_optimum),
        ]);
    }
    println!(
        "{}",
        text_table(
            &["n", "argmax W", "max U/C", "U/C @ W=1", "U/C @ W_max", "loss ±20% of W*"],
            &body
        )
    );
    // Simulated overlay: measured U/C at three probe windows per curve.
    for s_ in &series {
        let shape = s_.shape();
        let probes = [
            (shape.argmax_window / 4).max(1),
            shape.argmax_window,
            shape.argmax_window * 3,
        ];
        let overlay = figures::simulated_overlay(
            s_.n,
            mode,
            &probes,
            MicroSecs::from_seconds(30.0),
            7,
        )?;
        let rendered: Vec<String> = overlay
            .iter()
            .map(|p| format!("W={} → {:.4}", p.window, p.u_over_c))
            .collect();
        println!("  n = {:>2} simulated U/C: {}", s_.n, rendered.join(", "));
    }
    // A coarse ASCII rendering of the n = 20 curve, for eyeballing.
    if let Some(s) = series.iter().find(|s| s.n == 20) {
        let max = s.points.iter().map(|p| p.u_over_c).fold(f64::MIN, f64::max);
        println!("n = 20 curve (each ▪ ≈ 2% of peak):");
        for p in s.points.iter().step_by((s.points.len() / 18).max(1)) {
            let bars = ((p.u_over_c / max) * 50.0).max(0.0) as usize;
            println!("  W = {:>5}: {}", p.window, "▪".repeat(bars));
        }
    }
    let path = write_artifact(fig_name, &series)?;
    println!("artifact: {}", path.display());
    Ok(())
}

fn multihop(quick: bool) -> Result<(), BenchError> {
    let settings = if quick {
        multihop_exp::MultihopSettings::quick()
    } else {
        multihop_exp::MultihopSettings::full()
    };
    println!(
        "multi-hop scenario: {} nodes, random waypoint, RTS/CTS, {} s/point",
        settings.n,
        settings.duration.to_seconds()
    );
    let out = multihop_exp::run(settings)?;
    println!(
        "topology: connected = {}, diameter = {:?}, degree min/avg/max = {}/{:.1}/{}",
        out.connected, out.diameter, out.degrees.0, out.degrees.1, out.degrees.2
    );
    println!(
        "local windows in [{}, {}]; TFT converged to W_m = {} in {} rounds (paper run: 26)",
        out.local_window_range.0, out.local_window_range.1, out.w_m, out.convergence_rounds
    );
    let body: Vec<Vec<String>> = out
        .quality
        .global_sweep
        .iter()
        .map(|s| vec![s.window.to_string(), format!("{:.4e}", s.payoff)])
        .collect();
    println!("{}", text_table(&["common W", "global payoff /µs"], &body));
    println!(
        "global fraction at W_m: {:.1}%   (paper: ≥ 97%)",
        100.0 * out.quality.global_fraction
    );
    println!(
        "min sampled local fraction: {:.1}%   (paper: ≥ 96%; rises with measurement length)",
        100.0 * out.quality.min_local_fraction()
    );
    let body: Vec<Vec<String>> = out
        .p_hn_by_window
        .iter()
        .map(|(w, p, a)| vec![w.to_string(), format!("{p:.3}"), format!("{a:.3}")])
        .collect();
    println!(
        "{}",
        text_table(&["common W", "p_hn (measured)", "p_hn (analytic)"], &body)
    );
    let path = write_artifact("multihop", &out)?;
    println!("artifact: {}", path.display());
    Ok(())
}

fn shortsighted() -> Result<(), BenchError> {
    println!("optimal deviation of a short-sighted player, n = 5, 1-stage TFT reaction");
    let rows =
        deviation_exp::shortsighted_table(5, 1, &[0.0, 0.5, 0.9, 0.99, 0.999, 0.9999])?;
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.delta_s),
                r.w_s.to_string(),
                format!("{:+.2}%", 100.0 * r.relative_gain),
                format!("{:+.2}%", 100.0 * r.victim_relative_loss),
            ]
        })
        .collect();
    println!("{}", text_table(&["δ_s", "W_s(δ_s)", "deviator gain", "victim loss"], &body));
    println!("reaction-lag ablation at δ_s = 0.9:");
    let lag_rows = deviation_exp::reaction_table(5, 0.9, &[1, 2, 5, 10])?;
    let body: Vec<Vec<String>> = lag_rows
        .iter()
        .map(|r| vec![r.reaction_stages.to_string(), format!("{:+.2}%", 100.0 * r.relative_gain)])
        .collect();
    println!("{}", text_table(&["reaction m", "deviator gain"], &body));
    let path = write_artifact("shortsighted", &(rows, lag_rows))?;
    println!("artifact: {}", path.display());
    Ok(())
}

fn malicious() -> Result<(), BenchError> {
    println!("malicious player pins W_mal; TFT drags the network down (n = 20)");
    let rows = deviation_exp::malicious_table(20, &[128, 64, 16, 4, 1])?;
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.w_mal.to_string(),
                format!("{:.1}%", 100.0 * r.remaining_fraction),
                if r.collapsed { "yes".into() } else { "no".into() },
            ]
        })
        .collect();
    println!("{}", text_table(&["W_mal", "welfare remaining", "collapsed"], &body));
    let path = write_artifact("malicious", &rows)?;
    println!("artifact: {}", path.display());
    Ok(())
}

fn search(quick: bool) -> Result<(), BenchError> {
    println!("Section V.C distributed search, n = 5");
    let rows = search_exp::analytic_search_table(5, &[10, 40, 79, 150, 400])?;
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.w0.to_string(),
                r.w_found.to_string(),
                r.w_star.to_string(),
                r.measurements.to_string(),
            ]
        })
        .collect();
    println!("{}", text_table(&["W₀", "found", "W_c*", "measurements"], &body));
    let measure = if quick { 10.0 } else { 60.0 };
    let sim = search_exp::simulated_search(5, 60, measure, 0.002, 11)?;
    println!(
        "noisy (simulated, t_m = {measure} s): from W₀ = {} found {} (true {}, error {:.1}%)",
        sim.w0,
        sim.w_found,
        sim.w_star,
        100.0 * sim.relative_error
    );
    let path = write_artifact("search", &(rows, sim))?;
    println!("artifact: {}", path.display());
    Ok(())
}

fn ne_interval() -> Result<(), BenchError> {
    println!("Theorem 2 symmetric-NE intervals [W_c⁰, W_c*]");
    let rows = search_exp::interval_table(&[2, 5, 10, 20, 50])?;
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.lower.to_string(),
                r.upper.to_string(),
                r.count.to_string(),
            ]
        })
        .collect();
    println!("{}", text_table(&["n", "W_c⁰", "W_c*", "# NE"], &body));
    let path = write_artifact("ne_interval", &rows)?;
    println!("artifact: {}", path.display());
    Ok(())
}

fn convergence() -> Result<(), BenchError> {
    println!("TFT convergence from heterogeneous starts (analytic stage evaluation)");
    let rows = search_exp::tft_convergence_table(&[
        vec![100, 60, 150, 90],
        vec![500, 20, 300, 80, 76],
        vec![76; 5],
        vec![13, 11, 9, 7, 5, 3],
    ])?;
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.initials),
                format!("{:?}", r.converged_at_stage),
                format!("{:?}", r.window),
            ]
        })
        .collect();
    println!("{}", text_table(&["initial windows", "converged at", "window"], &body));
    let path = write_artifact("convergence", &rows)?;
    println!("artifact: {}", path.display());
    Ok(())
}

fn delay() -> Result<(), BenchError> {
    println!("extension: delay-aware efficient NE (paper Discussion), n = 5");
    let lambdas = [0.0, 1e-11, 1e-10, 3e-10, 1e-9, 3e-9];
    let mut artifacts = Vec::new();
    for mode in AccessMode::ALL {
        let rows = extensions_exp::delay_table(5, mode, &lambdas)?;
        println!("{mode} access:");
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0e}", r.lambda),
                    r.window.to_string(),
                    format!("{:.1}", r.delay_ms),
                    format!("{:.3e}", r.utility),
                ]
            })
            .collect();
        println!("{}", text_table(&["λ", "W*(λ)", "delay (ms)", "utility /µs"], &body));
        artifacts.push((mode, rows));
    }
    println!("→ basic: collisions dominate both metrics, optima coincide;");
    println!("  RTS/CTS: cheap collisions let delay-sensitive nodes go aggressive.");
    let path = write_artifact("delay", &artifacts)?;
    println!("artifact: {}", path.display());
    Ok(())
}

fn edca(quick: bool) -> Result<(), BenchError> {
    let settings = if quick { edca_exp::EdcaSettings::quick() } else { edca_exp::EdcaSettings::full() };
    println!(
        "EDCA strategy space (CWmin, m, AIFS, TXOP): cheating gains, Table II \
         degeneracy, TFT plane, sim agreement ({} slots × {} replicas)",
        settings.slots, settings.replications
    );
    let payload = edca_exp::run_edca(&settings)?;

    println!("per-knob cheating gains at baseline {:?}:", payload.baseline);
    let mut body = Vec::new();
    for surface in &payload.gain_surface {
        for row in &surface.rows {
            body.push(vec![
                surface.axis.clone(),
                row.value.to_string(),
                format!("{:.4}", row.gain),
                format!("{:.3e}", row.deviator_rate),
                format!("{:.3e}", row.compliant_rate),
            ]);
        }
    }
    println!(
        "{}",
        text_table(&["knob", "value", "gain", "deviator /µs", "compliant /µs"], &body)
    );
    println!(
        "lattice best response: {:?} (gain {:.3})",
        payload.best_response.tuple, payload.best_response.gain
    );

    println!("degenerate tuples vs the scalar Table II scan:");
    let body: Vec<Vec<String>> = payload
        .degenerate
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.w_star_scalar.to_string(),
                r.w_star_edca.to_string(),
                if r.window_equal && r.utility_bitwise && r.tau_bitwise {
                    "bitwise".into()
                } else {
                    "DIVERGED".into()
                },
            ]
        })
        .collect();
    println!("{}", text_table(&["n", "scalar W_c*", "EDCA W_c*", "agreement"], &body));

    println!("(CWmin, TXOP) TFT deviation plane:");
    for section in &payload.plane {
        println!(
            "  δ_s = {:<5} reaction = {}: {}/{} cells profitable",
            section.delta_s,
            section.reaction_stages,
            section.profitable_cells,
            section.cells.len()
        );
    }

    let body: Vec<Vec<String>> = payload
        .sim
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:.2}%", 100.0 * s.max_tau_error),
                format!("{:.2}%", 100.0 * s.max_p_error),
                format!("{:.2}%", 100.0 * s.throughput_error),
            ]
        })
        .collect();
    println!("{}", text_table(&["sim scenario", "max τ̂ err", "max p̂ err", "Ŝ err"], &body));

    let path = write_artifact("EDCA", &payload)?;
    println!("artifact: {}", path.display());
    println!("note: the artifact is byte-identical across MACGAME_THREADS settings");
    let consistent = payload
        .degenerate
        .iter()
        .all(|r| r.window_equal && r.utility_bitwise && r.tau_bitwise);
    if !consistent {
        return Err(BenchError::Game(macgame_core::GameError::InvalidConfig(
            "EDCA degenerate tuples diverged from the scalar Table II scan".into(),
        )));
    }
    Ok(())
}

fn detect(quick: bool) -> Result<(), BenchError> {
    let settings =
        if quick { detect_exp::DetectSettings::quick() } else { detect_exp::DetectSettings::full() };
    println!(
        "detection plane: ROC sweeps under observation faults + adversarial \
         tournament ({} ROC trials/cell, {} arena reps/pair)",
        2 * settings.replications,
        settings.arena_repetitions
    );
    let payload = detect_exp::run_detect(&settings)?;
    println!(
        "defending W_c* = {} against a W = {} undercutter (n = {})",
        payload.w_star, payload.w_selfish, payload.settings.n
    );

    println!("windowed-detector ROC over the fault grid:");
    let mut body = Vec::new();
    for curve in &payload.windowed_roc {
        for point in &curve.points {
            body.push(vec![
                curve.cell.label(),
                format!("{:.2}", point.threshold),
                format!("{:.3}", point.fp_rate),
                format!("{:.3}", point.fn_rate),
            ]);
        }
    }
    println!("{}", text_table(&["fault cell", "θ", "FP rate", "FN rate"], &body));

    println!("CUSUM ROC (finite-sample counter noise):");
    let body: Vec<Vec<String>> = payload
        .cusum_roc
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.3}", p.threshold),
                format!("{:.3}", p.fp_rate),
                format!("{:.3}", p.fn_rate),
            ]
        })
        .collect();
    println!("{}", text_table(&["h", "FP rate", "FN rate"], &body));

    println!(
        "adversarial tournament: {} matches over {} fault cells",
        payload.arena.matches,
        detect_exp::DetectSettings::fault_grid().len()
    );
    let names = &payload.arena.tournament.names;
    let mut body = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let mut row = vec![name.clone()];
        for j in 0..names.len() {
            row.push(format!("{:.1}", payload.arena.tournament.scores[i][j]));
        }
        row.push(format!("{:.3}", payload.arena.mix.final_shares[i]));
        row.push(if payload.arena.mix.stable[i] { "yes".into() } else { "no".into() });
        body.push(row);
    }
    let mut header: Vec<String> = vec!["payoff vs →".into()];
    header.extend(names.iter().cloned());
    header.push("final share".into());
    header.push("stable".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", text_table(&header_refs, &body));
    println!(
        "equilibrium mix: dominant = {}, extinct = {:?}",
        payload.arena.mix.dominant, payload.arena.mix.extinct
    );

    let path = write_artifact("DETECT", &payload)?;
    println!("artifact: {}", path.display());
    println!("note: the artifact is byte-identical across MACGAME_THREADS settings");

    // Structural gate: the zero-fault all-honest cell must be FP-free at
    // every threshold in the sweep.
    let zero_clean = payload
        .windowed_roc
        .iter()
        .filter(|c| c.cell.is_zero())
        .all(|c| c.points.iter().all(|p| p.false_positives == 0));
    if !zero_clean {
        return Err(BenchError::Game(macgame_core::GameError::InvalidConfig(
            "zero-fault all-honest trials produced false positives".into(),
        )));
    }
    Ok(())
}

fn ratecontrol() -> Result<(), BenchError> {
    println!("extension: selfish PHY-rate game (paper Conclusion), common CW = 48, RTS/CTS");
    let rows = extensions_exp::rate_table(&[3, 5, 10, 20], 48)?;
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{} Mbit/s", r.ne_rate_mbps),
                r.ne_is_social_optimum.to_string(),
                format!("{:.1}%", 100.0 * r.anomaly_damage),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(&["n", "NE rate", "NE = social optimum", "1-slow-node damage"], &body)
    );
    let path = write_artifact("ratecontrol", &rows)?;
    println!("artifact: {}", path.display());
    Ok(())
}

fn tournament() -> Result<(), BenchError> {
    println!("extension: Axelrod-style round robin on the MAC game (2-player matches)");
    let standings = extensions_exp::tournament_ranking(25)?;
    let body: Vec<Vec<String>> = standings
        .iter()
        .enumerate()
        .map(|(i, s)| vec![(i + 1).to_string(), s.name.clone(), format!("{:.0}", s.total)])
        .collect();
    println!("{}", text_table(&["rank", "strategy", "total payoff"], &body));
    println!("replicator population dynamics over the same payoff matrix (500 gens):");
    let shares = extensions_exp::evolutionary_shares(25, 500)?;
    let body: Vec<Vec<String>> = shares
        .iter()
        .map(|(name, share)| vec![name.clone(), format!("{:.1}%", 100.0 * share)])
        .collect();
    println!("{}", text_table(&["strategy", "final population share"], &body));
    let path = write_artifact("tournament", &(standings, shares))?;
    println!("artifact: {}", path.display());
    Ok(())
}

fn validate(quick: bool) -> Result<(), BenchError> {
    use macgame_dcf::DcfParams;
    use macgame_sim::validate_fixed_point;
    let slots = if quick { 200_000 } else { 1_000_000 };
    println!("model-vs-simulator validation at the efficient NE ({slots} slots/run)");
    let mut rows_out = Vec::new();
    let mut body = Vec::new();
    for mode in AccessMode::ALL {
        let params = DcfParams::builder().access_mode(mode).build()?;
        for n in [5usize, 20, 50] {
            let ne = macgame_dcf::optimal::efficient_cw(
                n,
                &params,
                &macgame_dcf::UtilityParams::default(),
                4096,
            )?;
            let report =
                validate_fixed_point(&vec![ne.window; n], &params, slots, 42)?;
            body.push(vec![
                mode.to_string(),
                n.to_string(),
                ne.window.to_string(),
                format!("{:.2}%", 100.0 * report.max_tau_error()),
                format!("{:.2}%", 100.0 * report.max_p_error()),
                format!("{:.2}%", 100.0 * report.throughput_relative_error()),
            ]);
            rows_out.push((mode, n, report));
        }
    }
    println!(
        "{}",
        text_table(
            &["mode", "n", "W_c*", "max τ̂ err", "max p̂ err", "S err"],
            &body
        )
    );
    let path = write_artifact("validate", &rows_out)?;
    println!("artifact: {}", path.display());
    Ok(())
}

/// Machine-readable solver benchmark: the Table II NE-interval scan at
/// n = 10, timed as the original serial cold damped iteration versus the
/// parallel + warm-chained + accelerated scan, plus the canonicalizing
/// cache on a revisit, plus an n-scaling section showing the class-based
/// solver's per-solve cost staying flat from n = 10² to n = 10⁶ while the
/// dense node-level reference grows linearly (and is skipped beyond
/// n = 10⁴). Emits `artifacts/BENCH_solver.json`.
fn bench_solver(quick: bool) -> Result<(), BenchError> {
    use macgame_core::deviation::symmetric_stage;
    use macgame_core::equilibrium::{ne_interval, scan_ne_interval, DEFAULT_NE_EPSILON};
    use macgame_core::GameConfig;
    use macgame_dcf::cache::SolveCache;
    use macgame_dcf::fixedpoint::{solve, SolveOptions};
    use macgame_dcf::parallel::{resolve_threads, solve_sweep_cached};
    use macgame_dcf::utility::all_utilities;
    use std::hint::black_box;
    use std::time::Instant;

    #[derive(serde::Serialize)]
    struct SolverBench {
        n: usize,
        scan_lo: u32,
        scan_hi: u32,
        threads: usize,
        deviation_profiles: usize,
        serial_cold_ms: f64,
        serial_cold_sweeps: usize,
        scan_ms: f64,
        speedup: f64,
        ne_count: usize,
        hot_cache_ms: f64,
        cache_hits: u64,
        cache_entries: usize,
    }

    let n = 10usize;
    let game = GameConfig::builder(n).build()?;
    let interval = ne_interval(&game)?;
    let (lo, hi) = (interval.lower, interval.upper);
    let threads = resolve_threads(0);
    println!("NE-interval scan, n = {n}, windows [{lo}, {hi}], {threads} worker(s)");

    // Baseline: the per-window check exactly as the original code priced it
    // — every deviation profile solved cold with the plain damped
    // iteration, every symmetric stage re-bisected per (window, deviation)
    // pair — serially.
    let damped = SolveOptions { accelerate: false, ..SolveOptions::default() };
    let mut serial_cold_sweeps = 0usize;
    let mut deviation_profiles = 0usize;
    let t0 = Instant::now();
    for w in lo..=hi {
        let at_w = symmetric_stage(&game, w)?;
        if at_w < 0.0 {
            continue;
        }
        for w_s in 1..w {
            let mut profile = vec![w; n];
            profile[0] = w_s;
            let eq = solve(&profile, game.params(), damped)?;
            serial_cold_sweeps += eq.iterations;
            deviation_profiles += 1;
            black_box(all_utilities(&eq.taus, &eq.collision_probs, game.params(), game.utility()));
            black_box(symmetric_stage(&game, w_s)?);
        }
        for w_dev in [w + 1, w.saturating_mul(2), game.w_max()] {
            if w_dev > w && w_dev <= game.w_max() {
                let mut profile = vec![w; n];
                profile[0] = w_dev;
                let eq = solve(&profile, game.params(), damped)?;
                serial_cold_sweeps += eq.iterations;
                black_box(all_utilities(
                    &eq.taus,
                    &eq.collision_probs,
                    game.params(),
                    game.utility(),
                ));
            }
        }
    }
    let serial_cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Current path: memoized symmetric stages, warm-chained accelerated
    // deviation sweeps, windows fanned over the worker pool.
    let t1 = Instant::now();
    let checks = scan_ne_interval(&game, lo, hi, 1, DEFAULT_NE_EPSILON, 0)?;
    let scan_ms = t1.elapsed().as_secs_f64() * 1e3;
    let ne_count = checks.iter().filter(|c| c.is_ne).count();

    // The cache on a revisit of the scan's heterogeneous profiles: repeated
    // scans, tournaments and payoff tables hit this path.
    let profiles: Vec<Vec<u32>> = (lo..=hi)
        .flat_map(|w| {
            (1..w).map(move |w_s| {
                let mut p = vec![w; n];
                p[0] = w_s;
                p
            })
        })
        .collect();
    let cache = SolveCache::new(*game.params(), SolveOptions::default());
    solve_sweep_cached(&profiles, &cache, 0)?;
    let t2 = Instant::now();
    solve_sweep_cached(&profiles, &cache, 0)?;
    let hot_cache_ms = t2.elapsed().as_secs_f64() * 1e3;

    let speedup = serial_cold_ms / scan_ms;
    let body = vec![
        vec!["serial cold (damped, unmemoized)".into(), format!("{serial_cold_ms:.1}")],
        vec!["parallel + warm + memoized scan".into(), format!("{scan_ms:.1}")],
        vec!["hot-cache revisit of all profiles".into(), format!("{hot_cache_ms:.1}")],
    ];
    println!("{}", text_table(&["configuration", "wall ms"], &body));
    println!(
        "speedup {speedup:.1}×; {deviation_profiles} deviation profiles; \
         {ne_count} NE confirmed; cache {} hits / {} entries",
        cache.hits(),
        cache.len()
    );
    let ne_scan = SolverBench {
        n,
        scan_lo: lo,
        scan_hi: hi,
        threads,
        deviation_profiles,
        serial_cold_ms,
        serial_cold_sweeps,
        scan_ms,
        speedup,
        ne_count,
        hot_cache_ms,
        cache_hits: cache.hits(),
        cache_entries: cache.len(),
    };

    // ── n-scaling: class aggregation makes the solve cost independent of
    // the population size ──────────────────────────────────────────────
    //
    // Every profile below has k ≤ 3 distinct windows, so the class solver
    // iterates at most 3 (τ_c, p_c) pairs no matter how large n grows. The
    // dense node-level reference (`solve_dense`) prices the same profiles
    // at O(n) per sweep and is only run up to n = 10⁴, where the class
    // path must already be ≥ 100× faster.
    use macgame_dcf::classes::{class_slot_stats, class_utilities, ClassProfile};
    use macgame_dcf::fixedpoint::{solve_classes, solve_dense};
    use macgame_dcf::parallel::solve_class_sweep;

    #[derive(serde::Serialize)]
    struct ScaleRow {
        n: usize,
        field_window: u32,
        band_windows: usize,
        band_us_per_solve: f64,
        deviant_profiles: usize,
        deviant_us_per_solve: f64,
        three_class_us: f64,
        dense_profiles: Option<usize>,
        dense_us_per_solve: Option<f64>,
        class_vs_dense_speedup: Option<f64>,
    }

    const MAX_CW: u32 = 1 << 20;
    const DENSE_CUTOFF: usize = 10_000;
    let populations: &[usize] = if quick {
        &[100, 1_000, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000, 1_000_000]
    };
    // Near-degenerate extremes (a W = 1 deviant against a huge field) floor
    // around 1e-11 in double precision; 1e-10 is ample for utility-level
    // comparisons and is applied to the class and dense paths alike.
    let options = SolveOptions { tolerance: 1e-10, ..SolveOptions::default() };
    let mut scaling: Vec<ScaleRow> = Vec::new();
    for &pop in populations {
        // A field window that grows with the population (the NE-style
        // operating point scales roughly linearly in n), clamped to the
        // largest window the model accepts.
        let field_w = 16u64.saturating_mul(pop as u64).min(u64::from(MAX_CW)) as u32;

        // Homogeneous band scan: 32 windows bracketing the field window,
        // each a k = 1 profile, warm-chained across the band.
        let step = (field_w / 63).max(1);
        let band: Vec<ClassProfile> = (0..32u32)
            .map(|i| {
                let w = (field_w / 2 + i * step).clamp(1, MAX_CW);
                ClassProfile::new(vec![w], vec![pop])
            })
            .collect::<Result<_, _>>()?;
        let t = Instant::now();
        let band_eqs = solve_class_sweep(&band, game.params(), options, 0, None)?;
        let band_us_per_solve = t.elapsed().as_secs_f64() * 1e6 / band.len() as f64;
        for (profile, eq) in band.iter().zip(&band_eqs) {
            black_box(class_slot_stats(profile, &eq.taus, game.params()));
        }

        // 1-deviant-vs-field: log-spaced deviant windows from 1 to the
        // field window, each a 2-class profile (1 deviant, n−1 field
        // nodes), warm-chained in deviant-window order.
        let mut deviant_windows: Vec<u32> = (0..32u32)
            .map(|i| {
                let frac = f64::from(i) / 31.0;
                (frac * f64::from(field_w).ln()).exp().round().clamp(1.0, f64::from(MAX_CW))
                    as u32
            })
            .collect();
        deviant_windows.dedup();
        deviant_windows.retain(|&w| w != field_w);
        let deviants: Vec<ClassProfile> = deviant_windows
            .iter()
            .map(|&w| ClassProfile::new(vec![w, field_w], vec![1, pop - 1]))
            .collect::<Result<_, _>>()?;
        let t = Instant::now();
        let dev_eqs = solve_class_sweep(&deviants, game.params(), options, 0, None)?;
        let deviant_us_per_solve = t.elapsed().as_secs_f64() * 1e6 / deviants.len() as f64;
        for (profile, eq) in deviants.iter().zip(&dev_eqs) {
            black_box(class_utilities(
                profile,
                &eq.taus,
                &eq.collision_probs,
                game.params(),
                game.utility(),
            ));
        }

        // One 3-class profile: thirds of the population at a quarter, one
        // and four times the field window (clamps may merge classes at the
        // top of the window range; `ClassProfile::new` handles that).
        let third = pop / 3;
        let three = ClassProfile::new(
            vec![(field_w / 4).max(1), field_w, field_w.saturating_mul(4).min(MAX_CW)],
            vec![third, third, pop - 2 * third],
        )?;
        let t = Instant::now();
        let eq3 = solve_classes(&three, game.params(), options)?;
        let three_class_us = t.elapsed().as_secs_f64() * 1e6;
        black_box(class_slot_stats(&three, &eq3.taus, game.params()));

        // Dense node-level reference on a handful of the 2-class profiles,
        // feasible only at small n.
        let (dense_profiles, dense_us_per_solve, class_vs_dense_speedup) =
            if pop <= DENSE_CUTOFF {
                let sample: Vec<Vec<u32>> =
                    deviants.iter().take(4).map(ClassProfile::expand_windows).collect();
                let t = Instant::now();
                for windows in &sample {
                    black_box(solve_dense(windows, game.params(), options)?);
                }
                let us = t.elapsed().as_secs_f64() * 1e6 / sample.len() as f64;
                (Some(sample.len()), Some(us), Some(us / deviant_us_per_solve))
            } else {
                (None, None, None)
            };

        scaling.push(ScaleRow {
            n: pop,
            field_window: field_w,
            band_windows: band.len(),
            band_us_per_solve,
            deviant_profiles: deviants.len(),
            deviant_us_per_solve,
            three_class_us,
            dense_profiles,
            dense_us_per_solve,
            class_vs_dense_speedup,
        });
    }

    let body: Vec<Vec<String>> = scaling
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.field_window.to_string(),
                format!("{:.1}", r.band_us_per_solve),
                format!("{:.1}", r.deviant_us_per_solve),
                format!("{:.1}", r.three_class_us),
                r.dense_us_per_solve.map_or_else(|| "skipped".into(), |v| format!("{v:.1}")),
                r.class_vs_dense_speedup.map_or_else(|| "-".into(), |v| format!("{v:.0}×")),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &[
                "n",
                "W_field",
                "k=1 µs/solve",
                "k=2 µs/solve",
                "k=3 µs",
                "dense µs/solve",
                "speedup",
            ],
            &body
        )
    );

    #[derive(serde::Serialize)]
    struct SolverBenchArtifact {
        ne_scan: SolverBench,
        scaling: Vec<ScaleRow>,
    }

    let payload = SolverBenchArtifact { ne_scan, scaling };
    let path = write_artifact("BENCH_solver", &payload)?;
    println!("artifact: {}", path.display());
    Ok(())
}

/// Machine-readable serve benchmark: the NE-as-a-service engine driven
/// through the full wire path (encode → frame → parse → evaluate →
/// re-frame) by the in-process `ServeHarness`. Reports hot- and
/// cold-cache batch throughput, single-query round-trip latency
/// percentiles, and re-checks reply-byte thread invariance at 1/2/8
/// workers. Emits `artifacts/BENCH_serve.json`.
fn bench_serve(quick: bool) -> Result<(), BenchError> {
    use macgame_core::queries::Query;
    use macgame_serve::{EngineConfig, ServeHarness};
    use std::time::Instant;

    #[derive(serde::Serialize)]
    struct ServeBench {
        unique_queries: usize,
        batch_size: usize,
        hot_batches: usize,
        cold_ms: f64,
        cold_qps: f64,
        hot_ms: f64,
        hot_qps: f64,
        latency_roundtrips: usize,
        p50_us: f64,
        p99_us: f64,
        thread_invariant: bool,
        reply_cache_hits: u64,
        reply_cache_misses: u64,
        solve_cache_hits: u64,
        solve_cache_misses: u64,
    }

    // A pool of distinct deviation-pricing queries (the cache-heavy query
    // type), repeated to batch size: every hot lookup is a reply-cache
    // hit, every cold one a class solve.
    let unique = if quick { 64usize } else { 256 };
    let pool: Vec<Query> = (0..unique)
        .map(|i| Query::DeviationPayoff {
            players: 5,
            mode: if i % 2 == 0 { AccessMode::Basic } else { AccessMode::RtsCts },
            w_star: 79,
            w_dev: 1 + (i as u32 % 64),
            reaction_stages: 1 + (i as u32 / 64),
            delta_s: 0.5,
        })
        .collect();
    let batch_size = 4 * unique;
    let batch: Vec<Query> = (0..batch_size).map(|i| pool[i % unique].clone()).collect();
    let hot_batches = if quick { 25 } else { 100 };

    let harness = ServeHarness::new()?;
    println!(
        "wire-path batches: {batch_size} queries/batch over {unique} unique deviation \
         pricings, {hot_batches} hot batches"
    );

    // Cold pass: every unique query is a reply-cache miss and solves
    // through the class solver.
    let t0 = Instant::now();
    let cold_bytes = harness.reply_bytes(&batch)?;
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold_qps = batch_size as f64 / (cold_ms / 1e3);

    // Hot passes: all hits; this is the throughput the service sustains
    // on a steady query mix.
    let t1 = Instant::now();
    for _ in 0..hot_batches {
        let bytes = harness.reply_bytes(&batch)?;
        debug_assert_eq!(bytes, cold_bytes);
    }
    let hot_ms = t1.elapsed().as_secs_f64() * 1e3;
    let hot_qps = (hot_batches * batch_size) as f64 / (hot_ms / 1e3);

    // Single-query round-trip latency on the hot cache.
    let latency_roundtrips = if quick { 500 } else { 2000 };
    let mut samples_us = Vec::with_capacity(latency_roundtrips);
    for i in 0..latency_roundtrips {
        let single = std::slice::from_ref(&pool[i % unique]);
        let t = Instant::now();
        let bytes = harness.reply_bytes(single)?;
        samples_us.push(t.elapsed().as_secs_f64() * 1e6);
        debug_assert!(!bytes.is_empty());
    }
    samples_us.sort_by(f64::total_cmp);
    let percentile = |p: f64| samples_us[((samples_us.len() - 1) as f64 * p) as usize];
    let p50_us = percentile(0.50);
    let p99_us = percentile(0.99);

    // Reply bytes must be identical under 1/2/8 workers (fresh engines,
    // cold caches — the strongest form of the claim).
    let mut streams = Vec::new();
    for threads in [1usize, 2, 8] {
        let h = ServeHarness::with_config(EngineConfig { threads, ..EngineConfig::default() })?;
        streams.push(h.reply_bytes(&batch)?);
    }
    let thread_invariant = streams.iter().all(|s| s == &streams[0]) && streams[0] == cold_bytes;

    let (solve_hits, solve_misses, _) = harness.engine().solve_caches().counters();
    let payload = ServeBench {
        unique_queries: unique,
        batch_size,
        hot_batches,
        cold_ms,
        cold_qps,
        hot_ms,
        hot_qps,
        latency_roundtrips,
        p50_us,
        p99_us,
        thread_invariant,
        reply_cache_hits: harness.engine().reply_cache().hits(),
        reply_cache_misses: harness.engine().reply_cache().misses(),
        solve_cache_hits: solve_hits,
        solve_cache_misses: solve_misses,
    };

    let body = vec![
        vec!["cold batch (all misses)".into(), format!("{cold_ms:.1} ms"), format!("{cold_qps:.0} q/s")],
        vec![
            format!("{hot_batches} hot batches (all hits)"),
            format!("{hot_ms:.1} ms"),
            format!("{hot_qps:.0} q/s"),
        ],
        vec![
            format!("{latency_roundtrips} single-query round-trips"),
            format!("p50 {p50_us:.0} µs"),
            format!("p99 {p99_us:.0} µs"),
        ],
    ];
    println!("{}", text_table(&["configuration", "wall", "rate"], &body));
    println!(
        "reply bytes at threads 1/2/8: {}; reply cache {} hits / {} misses",
        if thread_invariant { "identical" } else { "DIVERGED" },
        payload.reply_cache_hits,
        payload.reply_cache_misses
    );
    let path = write_artifact("BENCH_serve", &payload)?;
    println!("artifact: {}", path.display());
    if !thread_invariant {
        return Err(BenchError::Serve(macgame_serve::ServeError::Protocol(
            "reply byte streams diverged across MACGAME_THREADS settings".into(),
        )));
    }
    Ok(())
}

fn myopia() -> Result<(), BenchError> {
    println!("price of myopia (Discussion §VIII): stage best responders vs TFT");
    let rows = deviation_exp::myopia_table(&[3, 5, 10, 20])?;
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.w_star.to_string(),
                format!("[{}, {}]", r.myopic_windows.0, r.myopic_windows.1),
                format!("{:.1}%", 100.0 * r.welfare_ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(&["n", "TFT W_c*", "myopic windows", "welfare remaining"], &body)
    );
    let path = write_artifact("myopia", &rows)?;
    println!("artifact: {}", path.display());
    Ok(())
}

fn conformance(quick: bool) -> Result<(), BenchError> {
    let settings = if quick {
        ConformanceSettings::quick()
    } else {
        ConformanceSettings::full()
    };
    println!(
        "paper-conformance gate: analytic claims, golden snapshots, and \
         {}-replica seed sweeps at {} slots (seed {})",
        settings.replications, settings.slots, settings.base_seed
    );
    let report = run_conformance(&settings)?;
    let body: Vec<Vec<String>> = report
        .claims
        .iter()
        .map(|c| {
            let mut detail: String = c.detail.lines().next().unwrap_or("").to_string();
            if detail.chars().count() > 56 {
                detail = detail.chars().take(53).collect::<String>() + "...";
            }
            vec![
                c.name.clone(),
                if c.pass { "pass".into() } else { "FAIL".into() },
                format!("{:.4}", c.worst_relative_error),
                format!("{:.4}", c.tolerance),
                detail,
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(&["claim", "verdict", "worst rel err", "budget", "detail"], &body)
    );
    let path = write_artifact("CONFORMANCE", &report)?;
    println!("artifact: {}", path.display());
    println!(
        "{}/{} claims pass",
        report.claims.iter().filter(|c| c.pass).count(),
        report.claims.len()
    );
    report.require_pass().map_err(BenchError::from)
}

fn profile(quick: bool) -> Result<(), BenchError> {
    let settings = if quick {
        profile_exp::ProfileSettings::quick()
    } else {
        profile_exp::ProfileSettings::full()
    };
    println!(
        "deterministic telemetry profile of the instrumented workspace \
         ({} workload)",
        if quick { "quick" } else { "full" }
    );
    let snapshot = profile_exp::run_profile(settings)?;
    let rows = profile_exp::profile_table(&snapshot);
    println!("{}", text_table(&["kind", "metric", "value"], &rows));
    let path = write_raw_artifact("TELEMETRY", &snapshot.to_json())?;
    println!("artifact: {}", path.display());
    println!(
        "note: every section except \"timings\" is byte-identical across \
         MACGAME_THREADS settings"
    );
    Ok(())
}

fn robustness(quick: bool) -> Result<(), BenchError> {
    let settings = if quick {
        robustness_exp::RobustnessSettings::quick()
    } else {
        robustness_exp::RobustnessSettings::full()
    };
    println!(
        "deterministic fault injection: noisy observations, channel \
         errors/capture, churn, solver ladder ({} workload)",
        if quick { "quick" } else { "full" }
    );
    let report = robustness_exp::run_robustness(settings)?;
    let rows = robustness_exp::robustness_table(&report);
    println!("{}", text_table(&["section", "case", "result"], &rows));
    let path = write_artifact("ROBUSTNESS", &report)?;
    println!("artifact: {}", path.display());
    println!(
        "note: the workload is fully serial and seeded — the artifact is \
         byte-identical across runs and MACGAME_THREADS settings"
    );
    if !report.zero_rate_bitwise_identical || !report.noop_observation_identical {
        return Err(BenchError::Faults(macgame_faults::FaultError::invalid(
            "zero_rate_identity",
            "fault-rate-0 runs were not bitwise identical to the fault-free path",
        )));
    }
    Ok(())
}

fn lint() -> Result<(), BenchError> {
    let cwd = std::env::current_dir().map_err(BenchError::Io)?;
    let root = macgame_lint::find_workspace_root(&cwd)
        .ok_or_else(|| macgame_lint::LintError::NotAWorkspace(cwd.clone()))?;
    println!(
        "workspace invariant checks: determinism (hash containers, wall \
         clocks, entropy RNGs), panic policy, API discipline, manifests, \
         plus call-graph analyses (determinism taint, panic reachability, \
         lock order)"
    );
    let workspace = macgame_lint::run_workspace(&root)?;
    let report = &workspace.lint;
    let rows = report.table_rows();
    if !rows.is_empty() {
        println!("{}", text_table(&["rule", "location", "status", "detail"], &rows));
    }
    let path = write_raw_artifact("LINT", &report.to_json())?;
    println!("artifact: {}", path.display());
    let waived = report.findings.len() - report.unwaived().len();
    println!(
        "{} file(s), {} manifest(s) scanned: {} finding(s), {} waived, {} unwaived",
        report.files_scanned,
        report.manifests_checked,
        report.findings.len(),
        waived,
        report.unwaived().len()
    );

    let analysis = &workspace.analysis;
    println!(
        "\ncall graph: {} fn(s), {} edge(s); {} taint root(s), {} public \
         root(s), {} lock site(s)",
        analysis.stats.functions,
        analysis.stats.edges,
        analysis.stats.taint_roots,
        analysis.stats.public_roots,
        analysis.stats.lock_sites,
    );
    let rows = analysis.table_rows();
    if !rows.is_empty() {
        println!("{}", text_table(&["rule", "location", "status", "detail"], &rows));
    }
    for finding in analysis.unwaived() {
        println!("witness for {}:{}", finding.path, finding.line);
        for step in &finding.witness {
            println!("  -> {step}");
        }
    }
    let path = write_raw_artifact("ANALYSIS", &analysis.to_json())?;
    println!("artifact: {}", path.display());
    println!(
        "{} analysis finding(s), {} waived, {} unwaived",
        analysis.findings.len(),
        analysis.findings.len() - analysis.unwaived().len(),
        analysis.unwaived().len()
    );
    if workspace.is_clean() {
        Ok(())
    } else {
        Err(BenchError::LintFindings(workspace.unwaived_count()))
    }
}
