//! Numeric verification of the paper's ordering lemmas.
//!
//! * **Lemma 1**: in any stage profile, `W_i > W_j` implies `p_i > p_j`,
//!   `τ_i < τ_j` and `U_i^s < U_j^s` — aggression pays *within* a stage.
//! * **Lemma 4**: if one player deviates from a uniform profile `(W_k, …)`,
//!   downward deviation ranks `U_others < U_sym < U_dev` and upward
//!   deviation ranks `U_dev < U_sym < U_others`.
//!
//! These checkers back the property-test suite and let experiments assert
//! the orderings on every profile they touch.

use macgame_dcf::fixedpoint::{solve, SolveOptions};
use macgame_dcf::utility::all_utilities;
use serde::{Deserialize, Serialize};

use crate::deviation::{deviator_stage, symmetric_stage};
use crate::error::GameError;
use crate::game::GameConfig;

/// A violated ordering, with the offending pair and quantities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LemmaViolation {
    /// Which ordered quantity broke (`"p"`, `"tau"` or `"utility"`).
    pub quantity: &'static str,
    /// The two player indices involved.
    pub players: (usize, usize),
    /// The two values that failed to satisfy the strict order.
    pub values: (f64, f64),
}

impl core::fmt::Display for LemmaViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "lemma ordering violated for {} between players {} and {}: {} vs {}",
            self.quantity, self.players.0, self.players.1, self.values.0, self.values.1
        )
    }
}

/// Verifies Lemma 1 on an arbitrary window profile. Returns the first
/// violation found, or `Ok(())`.
///
/// Ties in `W` are skipped (the lemma orders strictly distinct windows);
/// comparisons carry a small tolerance for fixed-point error. The
/// **utility** ordering is only checked between players whose per-attempt
/// margin `(1−p)·g − e` is positive: the paper implicitly assumes the
/// profitable regime — when attempts lose money, transmitting *less* is
/// better and the utility ordering legitimately reverses (while the `p`
/// and `τ` orderings continue to hold).
pub fn verify_lemma1(
    game: &GameConfig,
    windows: &[u32],
) -> Result<Result<(), LemmaViolation>, GameError> {
    let eq = solve(windows, game.params(), SolveOptions::default())?;
    let us = all_utilities(&eq.taus, &eq.collision_probs, game.params(), game.utility());
    const TOL: f64 = 1e-9;
    for i in 0..windows.len() {
        for j in 0..windows.len() {
            if windows[i] <= windows[j] {
                continue;
            }
            // W_i > W_j here.
            if eq.collision_probs[i] <= eq.collision_probs[j] - TOL {
                return Ok(Err(LemmaViolation {
                    quantity: "p",
                    players: (i, j),
                    values: (eq.collision_probs[i], eq.collision_probs[j]),
                }));
            }
            if eq.taus[i] >= eq.taus[j] + TOL {
                return Ok(Err(LemmaViolation {
                    quantity: "tau",
                    players: (i, j),
                    values: (eq.taus[i], eq.taus[j]),
                }));
            }
            let margin_i = (1.0 - eq.collision_probs[i]) * game.utility().gain
                - game.utility().cost;
            let margin_j = (1.0 - eq.collision_probs[j]) * game.utility().gain
                - game.utility().cost;
            if margin_i > 0.0 && margin_j > 0.0 && us[i] >= us[j] + TOL {
                return Ok(Err(LemmaViolation {
                    quantity: "utility",
                    players: (i, j),
                    values: (us[i], us[j]),
                }));
            }
        }
    }
    Ok(Ok(()))
}

/// The three stage utilities Lemma 4 orders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lemma4Report {
    /// The deviator's stage utility rate.
    pub deviator: f64,
    /// The uniform-profile stage utility rate (nobody deviates).
    pub symmetric: f64,
    /// A compliant player's stage utility rate under the deviation.
    pub compliant: f64,
}

impl Lemma4Report {
    /// Whether the report satisfies Lemma 4's ordering for the given
    /// deviation direction.
    #[must_use]
    pub fn ordered(&self, w_dev: u32, w_k: u32) -> bool {
        use core::cmp::Ordering;
        match w_dev.cmp(&w_k) {
            Ordering::Less => self.compliant < self.symmetric && self.symmetric < self.deviator,
            Ordering::Greater => self.deviator < self.symmetric && self.symmetric < self.compliant,
            Ordering::Equal => {
                (self.deviator - self.symmetric).abs() < 1e-12
                    && (self.compliant - self.symmetric).abs() < 1e-12
            }
        }
    }
}

/// Computes the Lemma 4 triple for a deviation from `(w_k, …, w_k)` to
/// `w_dev` by one player.
///
/// # Errors
///
/// Propagates solver failures.
pub fn lemma4_report(game: &GameConfig, w_k: u32, w_dev: u32) -> Result<Lemma4Report, GameError> {
    let stage = deviator_stage(game, w_k, w_dev)?;
    let symmetric = symmetric_stage(game, w_k)?;
    Ok(Lemma4Report { deviator: stage.deviator, symmetric, compliant: stage.compliant })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game(n: usize) -> GameConfig {
        GameConfig::builder(n).build().unwrap()
    }

    #[test]
    fn lemma1_on_assorted_profiles() {
        let g = game(4);
        for windows in [[8u32, 16, 64, 256], [100, 1, 50, 7], [2, 3, 5, 8]] {
            let result = verify_lemma1(&g, &windows).unwrap();
            assert!(result.is_ok(), "violation: {:?}", result.unwrap_err());
        }
    }

    #[test]
    fn lemma1_with_ties_is_fine() {
        let g = game(5);
        let result = verify_lemma1(&g, &[32, 32, 64, 64, 128]).unwrap();
        assert!(result.is_ok());
    }

    #[test]
    fn lemma4_both_directions() {
        let g = game(6);
        for (w_k, w_dev) in [(100u32, 30u32), (100, 300), (50, 49), (50, 51)] {
            let report = lemma4_report(&g, w_k, w_dev).unwrap();
            assert!(
                report.ordered(w_dev, w_k),
                "w_k={w_k} w_dev={w_dev}: {report:?} not ordered"
            );
        }
    }

    #[test]
    fn lemma4_no_deviation_degenerates() {
        let g = game(3);
        let report = lemma4_report(&g, 64, 64).unwrap();
        assert!(report.ordered(64, 64));
    }

    #[test]
    fn violation_display() {
        let v = LemmaViolation { quantity: "tau", players: (0, 1), values: (0.5, 0.4) };
        assert!(v.to_string().contains("tau"));
        assert!(v.to_string().contains("players 0 and 1"));
    }
}
