//! Per-node access-delay measurement.
//!
//! Companion to `macgame_dcf::delay`: where the analytical module predicts
//! the expected head-of-line delay, this tracker measures it — the slots
//! (and channel time) between consecutive successful transmissions. For a
//! *saturated* node that interval is exactly the head-of-line service
//! time; under unsaturated traffic it additionally contains queue-empty
//! idle time, i.e. it measures the inter-delivery interval instead.

use serde::{Deserialize, Serialize};

/// Online accumulator of per-node service intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayTracker {
    last_success_slot: Vec<Option<u64>>,
    sum_slots: Vec<f64>,
    max_slots: Vec<u64>,
    samples: Vec<u64>,
}

impl DelayTracker {
    /// Creates a tracker for `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        DelayTracker {
            last_success_slot: vec![None; n],
            sum_slots: vec![0.0; n],
            max_slots: vec![0; n],
            samples: vec![0; n],
        }
    }

    /// Number of tracked nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the tracker has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Records that `node` transmitted successfully in slot `slot`.
    ///
    /// The first success only arms the tracker (the preceding interval is
    /// left-censored); every later success contributes one sample.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or slots go backwards.
    pub fn record_success(&mut self, node: usize, slot: u64) {
        if let Some(prev) = self.last_success_slot[node] {
            assert!(slot >= prev, "slots must be monotone"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
            let gap = slot - prev;
            self.sum_slots[node] += gap as f64;
            self.max_slots[node] = self.max_slots[node].max(gap);
            self.samples[node] += 1;
        }
        self.last_success_slot[node] = Some(slot);
    }

    /// Number of completed service intervals for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn sample_count(&self, node: usize) -> u64 {
        self.samples[node]
    }

    /// Mean service interval of `node`, in slots (`None` with no samples).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn mean_slots(&self, node: usize) -> Option<f64> {
        if self.samples[node] == 0 {
            None
        } else {
            Some(self.sum_slots[node] / self.samples[node] as f64)
        }
    }

    /// Worst observed service interval of `node`, in slots.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn max_slots(&self, node: usize) -> Option<u64> {
        if self.samples[node] == 0 {
            None
        } else {
            Some(self.max_slots[node])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_is_censored() {
        let mut t = DelayTracker::new(2);
        t.record_success(0, 10);
        assert_eq!(t.sample_count(0), 0);
        assert_eq!(t.mean_slots(0), None);
    }

    #[test]
    fn intervals_accumulate() {
        let mut t = DelayTracker::new(1);
        t.record_success(0, 10);
        t.record_success(0, 30);
        t.record_success(0, 40);
        assert_eq!(t.sample_count(0), 2);
        assert_eq!(t.mean_slots(0), Some(15.0));
        assert_eq!(t.max_slots(0), Some(20));
    }

    #[test]
    fn nodes_are_independent() {
        let mut t = DelayTracker::new(2);
        t.record_success(0, 5);
        t.record_success(1, 7);
        t.record_success(0, 9);
        assert_eq!(t.sample_count(0), 1);
        assert_eq!(t.sample_count(1), 0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn backwards_slots_panic() {
        let mut t = DelayTracker::new(1);
        t.record_success(0, 10);
        t.record_success(0, 5);
    }
}
