//! The per-node backoff Markov chain (paper Section III, Figure 1).
//!
//! Each saturated node `i` is modeled by a two-dimensional discrete-time
//! chain over states `(j, k)`: backoff stage `j ∈ [0, m]` and residual
//! backoff counter `k ∈ [0, 2^j·W_i − 1]`, where `W_i` is the node's
//! (selfishly chosen) initial contention window. Conditioned on a constant
//! per-attempt collision probability `p_i`, the chain's stationary
//! distribution yields the node's per-slot transmission probability `τ_i`
//! (paper Eq. (2)).
//!
//! Two independent implementations are provided:
//!
//! * [`transmission_probability`] / [`BackoffChain`] — the closed form;
//! * [`ExplicitChain`] — the raw transition structure solved by power
//!   iteration, used to cross-validate the closed form in tests.

use serde::{Deserialize, Serialize};

use crate::error::DcfError;

/// Largest admissible contention window value.
///
/// The strategy space of the game is `W ∈ {1, …, W_max}`; this constant only
/// bounds what the *model* accepts so that `2^m · W` cannot overflow.
pub const MAX_CW: u32 = 1 << 20;

fn validate(w: u32, p: f64) -> Result<(), DcfError> {
    if w == 0 || w > MAX_CW {
        return Err(DcfError::invalid("w", format!("contention window must be in [1, {MAX_CW}]")));
    }
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(DcfError::invalid("p", "collision probability must be in [0, 1]"));
    }
    Ok(())
}

/// Per-slot transmission probability `τ(W, p)` of a saturated node
/// (paper Eq. (2)):
///
/// ```text
/// τ = 2 / (1 + W + p·W·Σ_{j=0}^{m−1} (2p)^j)
/// ```
///
/// The geometric-sum form is used instead of Bianchi's rational form so the
/// removable singularity at `p = 1/2` needs no special-casing.
///
/// # Errors
///
/// Returns [`DcfError::InvalidParameter`] if `w` is zero or exceeds
/// [`MAX_CW`], or if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use macgame_dcf::markov::transmission_probability;
///
/// // With no collisions a node transmits every (W+1)/2 slots on average.
/// let tau = transmission_probability(31, 0.0, 5)?;
/// assert!((tau - 2.0 / 32.0).abs() < 1e-12);
/// # Ok::<(), macgame_dcf::DcfError>(())
/// ```
pub fn transmission_probability(w: u32, p: f64, m: u32) -> Result<f64, DcfError> {
    validate(w, p)?;
    let w = f64::from(w);
    let mut geom = 0.0;
    let mut term = 1.0;
    for _ in 0..m {
        geom += term;
        term *= 2.0 * p;
    }
    Ok(2.0 / (1.0 + w + p * w * geom))
}

/// Closed-form stationary distribution of the backoff chain.
///
/// Constructed from `(W, p, m)`; exposes the stationary probabilities
/// `q(j, k)` and derived quantities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackoffChain {
    w: u32,
    p: f64,
    m: u32,
    /// Stationary probability of state (0, 0).
    q00: f64,
}

impl BackoffChain {
    /// Builds the chain for initial window `w`, collision probability `p`
    /// and maximum backoff stage `m`.
    ///
    /// # Errors
    ///
    /// Returns [`DcfError::InvalidParameter`] under the same conditions as
    /// [`transmission_probability`], and additionally when `p = 1` (the
    /// stage-`m` states then absorb all mass and no stationary distribution
    /// with positive `q(0,0)` exists).
    pub fn new(w: u32, p: f64, m: u32) -> Result<Self, DcfError> {
        validate(w, p)?;
        if p >= 1.0 {
            return Err(DcfError::invalid("p", "must be strictly below 1 for a stationary chain"));
        }
        // Normalisation: Σ_{j,k} q(j,k) = 1 with
        //   q(j,0) = p^j·q00 (j < m),  q(m,0) = p^m/(1−p)·q00,
        //   q(j,k) = (Wj − k)/Wj · q(j,0),  Wj = 2^j·W,
        // so Σ_k q(j,k) = q(j,0)·(Wj + 1)/2.
        let mut inv_q00 = 0.0;
        let mut pj = 1.0;
        for j in 0..=m {
            let wj = f64::from(w) * f64::from(1u32 << j);
            let stage_visits = if j < m { pj } else { pj / (1.0 - p) };
            inv_q00 += stage_visits * (wj + 1.0) / 2.0;
            pj *= p;
        }
        Ok(BackoffChain { w, p, m, q00: 1.0 / inv_q00 })
    }

    /// The initial contention window `W`.
    #[must_use]
    pub fn window(&self) -> u32 {
        self.w
    }

    /// The conditional collision probability `p`.
    #[must_use]
    pub fn collision_probability(&self) -> f64 {
        self.p
    }

    /// The maximum backoff stage `m`.
    #[must_use]
    pub fn max_stage(&self) -> u32 {
        self.m
    }

    /// Contention window size `2^j·W` at stage `j`.
    ///
    /// # Panics
    ///
    /// Panics if `stage > m`.
    #[must_use]
    pub fn stage_window(&self, stage: u32) -> u32 {
        assert!(stage <= self.m, "stage {stage} exceeds maximum backoff stage {}", self.m); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        self.w << stage
    }

    /// Stationary probability `q(j, k)` of backoff stage `j` with residual
    /// counter `k`.
    ///
    /// # Panics
    ///
    /// Panics if `stage > m` or `k ≥ 2^j·W`.
    #[must_use]
    pub fn stationary(&self, stage: u32, k: u32) -> f64 {
        let wj = self.stage_window(stage);
        assert!(k < wj, "counter {k} out of range for stage window {wj}"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        let visits = if stage < self.m {
            self.p.powi(stage as i32)
        } else {
            self.p.powi(self.m as i32) / (1.0 - self.p)
        };
        visits * self.q00 * f64::from(wj - k) / f64::from(wj)
    }

    /// Per-slot transmission probability `τ = Σ_j q(j, 0) = q(0,0)/(1−p)`.
    #[must_use]
    pub fn tau(&self) -> f64 {
        self.q00 / (1.0 - self.p)
    }

    /// Total stationary mass in stage `j` (useful for diagnosing how deep in
    /// backoff a configuration pushes a node).
    ///
    /// # Panics
    ///
    /// Panics if `stage > m`.
    #[must_use]
    pub fn stage_mass(&self, stage: u32) -> f64 {
        let wj = f64::from(self.stage_window(stage));
        let visits = if stage < self.m {
            self.p.powi(stage as i32)
        } else {
            self.p.powi(self.m as i32) / (1.0 - self.p)
        };
        visits * self.q00 * (wj + 1.0) / 2.0
    }

    /// Mean residual backoff counter observed in a random slot.
    #[must_use]
    pub fn mean_backoff(&self) -> f64 {
        let mut acc = 0.0;
        for j in 0..=self.m {
            let wj = self.stage_window(j);
            for k in 0..wj {
                acc += f64::from(k) * self.stationary(j, k);
            }
        }
        acc
    }
}

/// The raw backoff chain as an explicit sparse transition structure,
/// solved by power iteration.
///
/// Exists to *cross-validate* the closed form: tests assert the two agree to
/// tight tolerance. State indexing is row-major by stage: all of stage 0's
/// `W` states, then stage 1's `2W`, etc.
#[derive(Debug, Clone)]
pub struct ExplicitChain {
    w: u32,
    p: f64,
    m: u32,
    stage_offsets: Vec<usize>,
    n_states: usize,
}

impl ExplicitChain {
    /// Builds the explicit chain.
    ///
    /// # Errors
    ///
    /// Same domain as [`BackoffChain::new`]; additionally rejects
    /// configurations with more than 2^22 states.
    pub fn new(w: u32, p: f64, m: u32) -> Result<Self, DcfError> {
        validate(w, p)?;
        if p >= 1.0 {
            return Err(DcfError::invalid("p", "must be strictly below 1 for a stationary chain"));
        }
        let mut stage_offsets = Vec::with_capacity(m as usize + 2);
        let mut total = 0usize;
        for j in 0..=m {
            stage_offsets.push(total);
            total += (w as usize) << j;
        }
        stage_offsets.push(total);
        if total > 1 << 22 {
            return Err(DcfError::invalid("w", "explicit chain too large; use the closed form"));
        }
        Ok(ExplicitChain { w, p, m, stage_offsets, n_states: total })
    }

    /// Number of states `(j, k)` in the chain.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.n_states
    }

    fn index(&self, stage: u32, k: u32) -> usize {
        self.stage_offsets[stage as usize] + k as usize
    }

    /// One application of the transposed transition operator:
    /// `out[s'] = Σ_s in[s]·P(s → s')`.
    fn step(&self, x: &[f64], out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        for j in 0..=self.m {
            let wj = self.w << j;
            // Countdown: (j, k) → (j, k−1).
            for k in 1..wj {
                out[self.index(j, k - 1)] += x[self.index(j, k)];
            }
            // Transmission from (j, 0).
            let mass = x[self.index(j, 0)];
            if mass == 0.0 {
                continue;
            }
            // Success: uniform over stage 0.
            let succ_share = mass * (1.0 - self.p) / f64::from(self.w);
            for k in 0..self.w {
                out[self.index(0, k)] += succ_share;
            }
            // Collision: uniform over the next stage (stage m retries at m).
            let next = if j < self.m { j + 1 } else { self.m };
            let wn = self.w << next;
            let coll_share = mass * self.p / f64::from(wn);
            for k in 0..wn {
                out[self.index(next, k)] += coll_share;
            }
        }
    }

    /// Stationary distribution by power iteration.
    ///
    /// # Errors
    ///
    /// Returns [`DcfError::SolveDidNotConverge`] if the L1 change between
    /// sweeps is still above `tol` after `max_iters` sweeps.
    pub fn stationary_distribution(
        &self,
        max_iters: usize,
        tol: f64,
    ) -> Result<Vec<f64>, DcfError> {
        let mut x = vec![1.0 / self.n_states as f64; self.n_states];
        let mut next = vec![0.0; self.n_states];
        for _ in 0..max_iters {
            self.step(&x, &mut next);
            let diff: f64 = x.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut x, &mut next);
            if diff < tol {
                let norm: f64 = x.iter().sum();
                x.iter_mut().for_each(|v| *v /= norm);
                return Ok(x);
            }
        }
        let diff: f64 = x.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        Err(DcfError::did_not_converge(max_iters, diff))
    }

    /// `τ` computed from the explicit stationary distribution: total mass of
    /// the `(j, 0)` states.
    ///
    /// # Errors
    ///
    /// Propagates non-convergence from [`Self::stationary_distribution`].
    pub fn tau(&self, max_iters: usize, tol: f64) -> Result<f64, DcfError> {
        let dist = self.stationary_distribution(max_iters, tol)?;
        Ok((0..=self.m).map(|j| dist[self.index(j, 0)]).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_closed_forms_agree() {
        // Geometric-sum form vs. the BackoffChain normalisation route.
        for &w in &[1u32, 2, 8, 32, 128, 1024] {
            for &p in &[0.0, 0.1, 0.3, 0.5, 0.7, 0.95] {
                for &m in &[0u32, 1, 3, 5, 7] {
                    let a = transmission_probability(w, p, m).unwrap();
                    let b = BackoffChain::new(w, p, m).unwrap().tau();
                    assert!(
                        (a - b).abs() < 1e-12,
                        "w={w} p={p} m={m}: sum form {a} vs chain form {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn tau_no_collisions() {
        // p = 0: node never leaves stage 0, τ = 2/(W+1).
        for &w in &[1u32, 7, 31, 255] {
            let tau = transmission_probability(w, 0.0, 5).unwrap();
            assert!((tau - 2.0 / (f64::from(w) + 1.0)).abs() < 1e-14);
        }
    }

    #[test]
    fn tau_decreases_in_w_and_p() {
        let m = 5;
        let mut prev = f64::INFINITY;
        for w in 1..200u32 {
            let tau = transmission_probability(w, 0.2, m).unwrap();
            assert!(tau < prev, "τ must strictly decrease in W");
            prev = tau;
        }
        let mut prev = f64::INFINITY;
        for i in 0..=20 {
            let p = f64::from(i) / 20.0;
            let tau = transmission_probability(16, p, m).unwrap();
            assert!(tau <= prev, "τ must be non-increasing in p");
            prev = tau;
        }
    }

    #[test]
    fn tau_handles_p_half_smoothly() {
        // The rational Bianchi form is 0/0 at p = 1/2; ours must be smooth.
        let below = transmission_probability(32, 0.5 - 1e-9, 5).unwrap();
        let at = transmission_probability(32, 0.5, 5).unwrap();
        let above = transmission_probability(32, 0.5 + 1e-9, 5).unwrap();
        assert!((below - at).abs() < 1e-9);
        assert!((above - at).abs() < 1e-9);
    }

    #[test]
    fn stationary_distribution_sums_to_one() {
        let chain = BackoffChain::new(8, 0.3, 4).unwrap();
        let mut total = 0.0;
        for j in 0..=4 {
            for k in 0..chain.stage_window(j) {
                total += chain.stationary(j, k);
            }
        }
        assert!((total - 1.0).abs() < 1e-12, "total mass {total}");
    }

    #[test]
    fn stage_mass_matches_per_state_sum() {
        let chain = BackoffChain::new(4, 0.4, 3).unwrap();
        for j in 0..=3 {
            let by_state: f64 = (0..chain.stage_window(j)).map(|k| chain.stationary(j, k)).sum();
            assert!((chain.stage_mass(j) - by_state).abs() < 1e-14);
        }
    }

    #[test]
    fn explicit_chain_matches_closed_form() {
        for &(w, p, m) in &[(4u32, 0.25, 3u32), (8, 0.5, 2), (2, 0.7, 4), (16, 0.1, 3)] {
            let explicit = ExplicitChain::new(w, p, m).unwrap();
            let tau_explicit = explicit.tau(200_000, 1e-13).unwrap();
            let tau_closed = transmission_probability(w, p, m).unwrap();
            assert!(
                (tau_explicit - tau_closed).abs() < 1e-8,
                "w={w} p={p} m={m}: explicit {tau_explicit} vs closed {tau_closed}"
            );
        }
    }

    #[test]
    fn explicit_chain_full_distribution_matches_closed_form() {
        let (w, p, m) = (4u32, 0.35, 3u32);
        let explicit = ExplicitChain::new(w, p, m).unwrap();
        let dist = explicit.stationary_distribution(200_000, 1e-13).unwrap();
        let closed = BackoffChain::new(w, p, m).unwrap();
        for j in 0..=m {
            for k in 0..closed.stage_window(j) {
                let idx = explicit.index(j, k);
                assert!(
                    (dist[idx] - closed.stationary(j, k)).abs() < 1e-8,
                    "q({j},{k}): explicit {} vs closed {}",
                    dist[idx],
                    closed.stationary(j, k)
                );
            }
        }
    }

    #[test]
    fn chain_rejects_bad_inputs() {
        assert!(transmission_probability(0, 0.1, 5).is_err());
        assert!(transmission_probability(8, -0.1, 5).is_err());
        assert!(transmission_probability(8, 1.5, 5).is_err());
        assert!(BackoffChain::new(8, 1.0, 5).is_err());
        assert!(ExplicitChain::new(8, 1.0, 5).is_err());
    }

    #[test]
    fn mean_backoff_grows_with_collisions() {
        let calm = BackoffChain::new(16, 0.05, 5).unwrap().mean_backoff();
        let busy = BackoffChain::new(16, 0.6, 5).unwrap().mean_backoff();
        assert!(busy > calm);
    }

    #[test]
    fn m_zero_means_constant_window() {
        // m = 0: no exponential growth; τ = 2/(W+1) regardless of p.
        for &p in &[0.0, 0.3, 0.9] {
            let tau = transmission_probability(9, p, 0).unwrap();
            assert!((tau - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn state_count_is_geometric() {
        let chain = ExplicitChain::new(3, 0.2, 4).unwrap();
        // 3·(1+2+4+8+16) = 93.
        assert_eq!(chain.state_count(), 93);
    }
}
