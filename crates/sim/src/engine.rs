//! The single-hop slot-level simulation engine.
//!
//! Implements the slotted contention process that the analytical model
//! abstracts: in each virtual slot, every node whose backoff counter is
//! zero transmits; zero transmitters make an idle slot of length σ, one
//! makes a success of length `T_s`, several make a collision of length
//! `T_c`. Non-transmitting nodes step their counters once per slot, in the
//! Bianchi slot abstraction.
//!
//! The engine persists across game stages: [`Engine::set_windows`] applies
//! a new strategy profile and [`Engine::run_slots`]/[`Engine::run_for`]
//! measure one interval.

use macgame_dcf::MicroSecs;
use macgame_telemetry as telemetry;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::delay::DelayTracker;
use crate::node::Node;
use crate::report::{ChannelCounts, StageReport};
use crate::traffic::TrafficModel;
use crate::SimError;

/// Outcome of one simulated slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotOutcome {
    /// Nobody transmitted.
    Idle,
    /// Exactly one node transmitted successfully.
    Success {
        /// The transmitting node.
        node: usize,
    },
    /// Two or more nodes collided.
    Collision {
        /// Number of simultaneous transmitters.
        transmitters: usize,
    },
}

/// The single-hop DCF simulation engine.
///
/// # Examples
///
/// ```
/// use macgame_sim::{Engine, SimConfig};
///
/// let config = SimConfig::builder().symmetric(5, 76).seed(1).build()?;
/// let mut engine = Engine::new(&config);
/// let report = engine.run_slots(200_000);
/// // Per-node τ̂ should approximate the analytic fixed point (~0.0226).
/// assert!((report.tau_hat(0) - 0.0226).abs() < 0.004);
/// # Ok::<(), macgame_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    config: SimConfig,
    nodes: Vec<Node>,
    rng: ChaCha8Rng,
    clock: MicroSecs,
    total_slots: u64,
    transmit_buffer: Vec<usize>,
    delay: DelayTracker,
    queues: Vec<u64>,
    arrivals: Vec<u64>,
    last_slot_duration: MicroSecs,
}

impl Engine {
    /// Creates an engine from a configuration; per-node backoff states are
    /// seeded deterministically from `config.seed()`.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed());
        let m = config.params().max_backoff_stage();
        let nodes = config.windows().iter().map(|&w| Node::new(w, m, &mut rng)).collect();
        let delay = DelayTracker::new(config.node_count());
        let n = config.node_count();
        Engine {
            config: config.clone(),
            nodes,
            rng,
            clock: MicroSecs::ZERO,
            total_slots: 0,
            transmit_buffer: Vec::new(),
            delay,
            queues: vec![0; n],
            arrivals: vec![0; n],
            last_slot_duration: config.params().sigma(),
        }
    }

    /// Current queue length of `node` (always 0 under saturated traffic —
    /// the backlog is conceptually infinite).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn queue_len(&self, node: usize) -> u64 {
        self.queues[node]
    }

    /// Total packet arrivals generated for `node` so far (0 under
    /// saturated traffic).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn total_arrivals(&self, node: usize) -> u64 {
        self.arrivals[node]
    }

    /// Number of simulated nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total channel time simulated so far.
    #[must_use]
    pub fn clock(&self) -> MicroSecs {
        self.clock
    }

    /// Total slots simulated so far.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Current window profile.
    #[must_use]
    pub fn windows(&self) -> Vec<u32> {
        self.nodes.iter().map(Node::window).collect()
    }

    /// Applies a new window profile (one entry per node), e.g. at a game
    /// stage boundary.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the profile length does not
    /// match the node count or contains a zero window.
    pub fn set_windows(&mut self, windows: &[u32]) -> Result<(), SimError> {
        if windows.len() != self.nodes.len() {
            return Err(SimError::InvalidConfig(format!(
                "profile has {} entries for {} nodes",
                windows.len(),
                self.nodes.len()
            )));
        }
        if windows.contains(&0) {
            return Err(SimError::InvalidConfig("contention windows must be at least 1".into()));
        }
        for (node, &w) in self.nodes.iter_mut().zip(windows) {
            if node.window() != w {
                node.set_window(w, &mut self.rng);
            }
        }
        Ok(())
    }

    /// Sets one node's window, leaving the rest untouched.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `node` is out of range or
    /// `window` is zero.
    pub fn set_window(&mut self, node: usize, window: u32) -> Result<(), SimError> {
        if node >= self.nodes.len() {
            return Err(SimError::InvalidConfig(format!("node {node} out of range")));
        }
        if window == 0 {
            return Err(SimError::InvalidConfig("contention windows must be at least 1".into()));
        }
        self.nodes[node].set_window(window, &mut self.rng);
        Ok(())
    }

    /// Simulates one slot and returns its outcome.
    pub fn step(&mut self) -> SlotOutcome {
        // Packet arrivals (Poisson mode): credited at slot boundaries,
        // using the previous slot's duration as the arrival window. A
        // packet reaching an empty queue re-arms the node with a fresh
        // stage-0 backoff (802.11 post-idle behaviour).
        if let model @ TrafficModel::Poisson { .. } = self.config.traffic() {
            let dt = self.last_slot_duration.value();
            for i in 0..self.nodes.len() {
                let arrived = model.sample_arrivals(dt, &mut self.rng);
                if arrived > 0 {
                    let was_empty = self.queues[i] == 0;
                    self.arrivals[i] += arrived;
                    self.queues[i] += arrived;
                    if was_empty {
                        let w = self.nodes[i].window();
                        self.nodes[i].set_window(w, &mut self.rng);
                    }
                }
            }
        }
        self.transmit_buffer.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.wants_to_transmit()
                && (self.config.traffic().is_saturated() || self.queues[i] > 0)
            {
                self.transmit_buffer.push(i);
            }
        }
        let timings = self.config.params().timings();
        let outcome = match self.transmit_buffer.len() {
            0 => {
                self.clock += self.config.params().sigma();
                SlotOutcome::Idle
            }
            1 => {
                self.clock += timings.success_time;
                SlotOutcome::Success { node: self.transmit_buffer[0] }
            }
            k => {
                self.clock += timings.collision_time;
                SlotOutcome::Collision { transmitters: k }
            }
        };
        // Resolve transmitters first, then step everyone else's counter.
        match outcome {
            SlotOutcome::Idle => {}
            SlotOutcome::Success { node } => {
                self.nodes[node].on_success(&mut self.rng);
                self.delay.record_success(node, self.total_slots);
                if !self.config.traffic().is_saturated() {
                    self.queues[node] -= 1;
                }
            }
            SlotOutcome::Collision { .. } => {
                for idx in 0..self.transmit_buffer.len() {
                    let i = self.transmit_buffer[idx];
                    self.nodes[i].on_collision(&mut self.rng);
                }
            }
        }
        let saturated = self.config.traffic().is_saturated();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let active = saturated || self.queues[i] > 0;
            if active && !self.transmit_buffer.contains(&i) && !node.wants_to_transmit() {
                node.observe_slot();
            }
        }
        self.last_slot_duration = match outcome {
            SlotOutcome::Idle => self.config.params().sigma(),
            SlotOutcome::Success { .. } => timings.success_time,
            SlotOutcome::Collision { .. } => timings.collision_time,
        };
        self.total_slots += 1;
        outcome
    }

    /// Lifetime per-node service-interval statistics (slots between
    /// consecutive successes — the measured head-of-line access delay).
    #[must_use]
    pub fn delay_tracker(&self) -> &DelayTracker {
        &self.delay
    }

    /// Measured mean head-of-line access delay of `node` in channel time:
    /// mean service interval (slots) × mean observed slot length.
    /// `None` until the node has completed at least one interval.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn mean_access_delay(&self, node: usize) -> Option<MicroSecs> {
        let mean_slots = self.delay.mean_slots(node)?;
        if self.total_slots == 0 {
            return None;
        }
        let mean_slot = self.clock.value() / self.total_slots as f64;
        Some(MicroSecs::new(mean_slots * mean_slot))
    }

    /// Runs `slots` slots and reports the interval's measurements.
    #[must_use]
    pub fn run_slots(&mut self, slots: u64) -> StageReport {
        let _span = telemetry::span("sim.engine.run");
        let baseline: Vec<_> = self.nodes.iter().map(|n| *n.stats()).collect();
        let clock_start = self.clock;
        let mut channel = ChannelCounts::default();
        for _ in 0..slots {
            match self.step() {
                SlotOutcome::Idle => channel.idle += 1,
                SlotOutcome::Success { .. } => channel.success += 1,
                SlotOutcome::Collision { .. } => channel.collision += 1,
            }
        }
        self.finish_report(&baseline, clock_start, channel)
    }

    /// Runs until at least `duration` of channel time elapses and reports
    /// the interval's measurements.
    #[must_use]
    pub fn run_for(&mut self, duration: MicroSecs) -> StageReport {
        let _span = telemetry::span("sim.engine.run");
        let baseline: Vec<_> = self.nodes.iter().map(|n| *n.stats()).collect();
        let clock_start = self.clock;
        let deadline = self.clock + duration;
        let mut channel = ChannelCounts::default();
        while self.clock < deadline {
            match self.step() {
                SlotOutcome::Idle => channel.idle += 1,
                SlotOutcome::Success { .. } => channel.success += 1,
                SlotOutcome::Collision { .. } => channel.collision += 1,
            }
        }
        self.finish_report(&baseline, clock_start, channel)
    }

    fn finish_report(
        &self,
        baseline: &[crate::node::NodeStats],
        clock_start: MicroSecs,
        channel: ChannelCounts,
    ) -> StageReport {
        telemetry::counter("sim.engine.runs", 1);
        telemetry::counter("sim.engine.slots", channel.total());
        telemetry::counter("sim.engine.collisions", channel.collision);
        telemetry::counter("sim.engine.successes", channel.success);
        StageReport {
            node_stats: self
                .nodes
                .iter()
                .zip(baseline)
                .map(|(n, b)| n.stats().delta_since(b))
                .collect(),
            channel,
            elapsed: self.clock - clock_start,
            windows: self.windows(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macgame_dcf::fixedpoint::solve_symmetric;
    use macgame_dcf::{AccessMode, DcfParams};

    fn engine(n: usize, w: u32, seed: u64) -> Engine {
        let config = SimConfig::builder().symmetric(n, w).seed(seed).build().unwrap();
        Engine::new(&config)
    }

    #[test]
    fn slots_partition_into_outcomes() {
        let mut e = engine(5, 32, 3);
        let r = e.run_slots(10_000);
        assert_eq!(r.channel.total(), 10_000);
        assert_eq!(e.total_slots(), 10_000);
    }

    #[test]
    fn attempts_equal_channel_events() {
        // Each success slot has exactly 1 attempting node; collisions ≥ 2.
        let mut e = engine(4, 16, 9);
        let r = e.run_slots(20_000);
        let successes: u64 = r.node_stats.iter().map(|s| s.successes).sum();
        let attempts: u64 = r.node_stats.iter().map(|s| s.attempts).sum();
        let collisions: u64 = r.node_stats.iter().map(|s| s.collisions).sum();
        assert_eq!(successes, r.channel.success);
        assert_eq!(attempts, successes + collisions);
        assert!(collisions >= 2 * r.channel.collision);
    }

    #[test]
    fn elapsed_matches_outcome_mix() {
        let p = DcfParams::default();
        let mut e = engine(3, 32, 1);
        let r = e.run_slots(5_000);
        let t = p.timings();
        let expect = r.channel.idle as f64 * p.sigma().value()
            + r.channel.success as f64 * t.success_time.value()
            + r.channel.collision as f64 * t.collision_time.value();
        assert!((r.elapsed.value() - expect).abs() < 1e-6);
    }

    #[test]
    fn deterministic_under_seed() {
        let r1 = engine(5, 64, 77).run_slots(5_000);
        let r2 = engine(5, 64, 77).run_slots(5_000);
        assert_eq!(r1, r2);
        let r3 = engine(5, 64, 78).run_slots(5_000);
        assert_ne!(r1, r3);
    }

    #[test]
    fn tau_hat_tracks_analytic_fixed_point() {
        let p = DcfParams::default();
        for &(n, w) in &[(5usize, 76u32), (10, 128), (3, 16)] {
            let sym = solve_symmetric(n, w, &p).unwrap();
            let mut e = engine(n, w, 1234);
            let r = e.run_slots(300_000);
            for i in 0..n {
                let rel = (r.tau_hat(i) - sym.tau).abs() / sym.tau;
                assert!(
                    rel < 0.06,
                    "n={n} W={w} node {i}: τ̂={} vs τ={} ({:.1}% off)",
                    r.tau_hat(i),
                    sym.tau,
                    rel * 100.0
                );
            }
        }
    }

    #[test]
    fn p_hat_tracks_analytic_fixed_point() {
        let p = DcfParams::default();
        let sym = solve_symmetric(5, 76, &p).unwrap();
        let mut e = engine(5, 76, 4321);
        let r = e.run_slots(400_000);
        for i in 0..5 {
            let rel = (r.p_hat(i) - sym.collision_prob).abs() / sym.collision_prob;
            assert!(rel < 0.1, "node {i}: p̂={} vs p={}", r.p_hat(i), sym.collision_prob);
        }
    }

    #[test]
    fn aggressive_node_wins_more() {
        // Lemma 1, operationally: the node with the smaller window gets
        // more successes and sees fewer collisions per attempt.
        let config = SimConfig::builder().windows(vec![16, 128]).seed(5).build().unwrap();
        let mut e = Engine::new(&config);
        let r = e.run_slots(100_000);
        assert!(r.node_stats[0].successes > 2 * r.node_stats[1].successes);
        assert!(r.p_hat(0) < r.p_hat(1));
    }

    #[test]
    fn rtscts_timing_applied() {
        let params =
            DcfParams::builder().access_mode(AccessMode::RtsCts).build().unwrap();
        let config =
            SimConfig::builder().params(params).symmetric(5, 16).seed(11).build().unwrap();
        let mut e = Engine::new(&config);
        let r = e.run_slots(10_000);
        let t = params.timings();
        let expect = r.channel.idle as f64 * params.sigma().value()
            + r.channel.success as f64 * t.success_time.value()
            + r.channel.collision as f64 * t.collision_time.value();
        assert!((r.elapsed.value() - expect).abs() < 1e-6);
    }

    #[test]
    fn run_for_respects_duration() {
        let mut e = engine(5, 32, 2);
        let r = e.run_for(MicroSecs::from_seconds(1.0));
        assert!(r.elapsed.value() >= 1e6);
        // Overshoot is bounded by one busy slot.
        assert!(r.elapsed.value() < 1e6 + 10_000.0);
    }

    #[test]
    fn set_windows_switches_profile() {
        let mut e = engine(3, 16, 8);
        e.set_windows(&[256, 256, 256]).unwrap();
        assert_eq!(e.windows(), vec![256, 256, 256]);
        let r = e.run_slots(50_000);
        // Wide windows ⇒ low attempt rate.
        assert!(r.tau_hat(0) < 0.02);
        assert!(e.set_windows(&[1, 2]).is_err());
        assert!(e.set_windows(&[0, 1, 2]).is_err());
        assert!(e.set_window(9, 8).is_err());
        assert!(e.set_window(0, 0).is_err());
    }

    #[test]
    fn single_node_never_collides() {
        let mut e = engine(1, 8, 3);
        let r = e.run_slots(10_000);
        assert_eq!(r.node_stats[0].collisions, 0);
        assert_eq!(r.channel.collision, 0);
    }

    #[test]
    fn poisson_light_load_delivers_offered_traffic() {
        use crate::traffic::TrafficModel;
        // 3 nodes at 2 packets/s each: offered load is a few percent of
        // the channel — everything should get through with few collisions.
        let config = SimConfig::builder()
            .symmetric(3, 32)
            .traffic(TrafficModel::Poisson { packets_per_second: 2.0 })
            .seed(77)
            .build()
            .unwrap();
        let mut e = Engine::new(&config);
        let r = e.run_for(MicroSecs::from_seconds(100.0));
        let delivered: u64 = r.node_stats.iter().map(|s| s.successes).sum();
        let offered: u64 = (0..3).map(|i| e.total_arrivals(i)).sum();
        let backlog: u64 = (0..3).map(|i| e.queue_len(i)).sum();
        // Conservation: every arrival is delivered or still queued.
        assert_eq!(offered, delivered + backlog);
        // Light load: backlog negligible, delivery ≈ offered ≈ 100 s × 6/s.
        assert!(backlog < 5, "backlog {backlog}");
        assert!((delivered as f64 - 600.0).abs() < 80.0, "delivered {delivered}");
        // And the channel is mostly idle.
        assert!(r.channel.idle > 50 * (r.channel.success + r.channel.collision));
    }

    #[test]
    fn poisson_heavy_load_approaches_saturation() {
        use crate::traffic::TrafficModel;
        // Offered load far beyond capacity: τ̂ should match the saturated
        // run with the same windows.
        let mk = |traffic| {
            let config = SimConfig::builder()
                .symmetric(4, 32)
                .traffic(traffic)
                .seed(5)
                .build()
                .unwrap();
            let mut e = Engine::new(&config);
            e.run_slots(200_000)
        };
        let saturated = mk(TrafficModel::Saturated);
        let flooded = mk(TrafficModel::Poisson { packets_per_second: 1000.0 });
        for i in 0..4 {
            let rel = (saturated.tau_hat(i) - flooded.tau_hat(i)).abs() / saturated.tau_hat(i);
            assert!(
                rel < 0.05,
                "node {i}: saturated τ̂ {} vs flooded τ̂ {}",
                saturated.tau_hat(i),
                flooded.tau_hat(i)
            );
        }
    }

    #[test]
    fn poisson_silent_network_stays_idle() {
        use crate::traffic::TrafficModel;
        let config = SimConfig::builder()
            .symmetric(3, 8)
            .traffic(TrafficModel::Poisson { packets_per_second: 0.0 })
            .seed(1)
            .build()
            .unwrap();
        let mut e = Engine::new(&config);
        let r = e.run_slots(5_000);
        assert_eq!(r.channel.success + r.channel.collision, 0);
        assert_eq!(r.channel.idle, 5_000);
    }

    #[test]
    fn measured_service_interval_tracks_analytic_delay() {
        // Mean slots between successes ≈ the chain's predicted mean access
        // slots at the fixed point.
        use macgame_dcf::delay::mean_access_slots;
        let p = DcfParams::default();
        let (n, w) = (5usize, 64u32);
        let sym = solve_symmetric(n, w, &p).unwrap();
        let mut e = engine(n, w, 2024);
        let _ = e.run_slots(400_000);
        let predicted =
            mean_access_slots(w, sym.collision_prob, p.max_backoff_stage()).unwrap();
        for i in 0..n {
            let measured = e.delay_tracker().mean_slots(i).expect("plenty of samples");
            let rel = (measured - predicted).abs() / predicted;
            assert!(
                rel < 0.1,
                "node {i}: measured {measured:.1} slots vs predicted {predicted:.1}"
            );
        }
        // Channel-time delay is the slot count scaled by the mean slot.
        let d = e.mean_access_delay(0).unwrap();
        assert!(d.value() > 0.0);
    }

    #[test]
    fn stage_report_payoff_consistent_with_utility_model() {
        // Measured payoff rate ≈ analytic u_i at the same operating point.
        use macgame_dcf::utility::{node_utility, UtilityParams};
        let p = DcfParams::default();
        let n = 5;
        let w = 76;
        let sym = solve_symmetric(n, w, &p).unwrap();
        let analytic = node_utility(
            0,
            &vec![sym.tau; n],
            &vec![sym.collision_prob; n],
            &p,
            &UtilityParams::default(),
        );
        let mut e = engine(n, w, 99);
        let r = e.run_slots(400_000);
        let measured = r.payoff_rate(0, &UtilityParams::default());
        let rel = (measured - analytic).abs() / analytic;
        assert!(rel < 0.08, "measured {measured} vs analytic {analytic}");
    }
}
