//! `ServeHarness` — the in-process protocol client every serve test (and
//! the conformance/bench layers) drives the engine through.
//!
//! The harness exercises the *full wire path*: queries are framed and
//! serialized exactly as a remote client would send them, pushed through
//! [`serve_stream`] over in-memory buffers, and the reply byte stream is
//! captured verbatim. That makes byte-level assertions (thread
//! invariance, coalescing equivalence) first-class: compare
//! [`ServeHarness::reply_bytes`] outputs directly.

use std::io::Cursor;

use macgame_core::queries::Query;

use crate::engine::{Engine, EngineConfig};
use crate::frame::{read_frame, write_frame};
use crate::protocol::{BatchRequest, Reply, Request};
use crate::transport::serve_stream;
use crate::ServeError;

/// An in-process client wrapping one [`Engine`].
#[derive(Debug)]
pub struct ServeHarness {
    engine: Engine,
}

impl ServeHarness {
    /// A harness over a default-configured engine.
    ///
    /// # Errors
    ///
    /// Propagates engine-construction failures.
    pub fn new() -> Result<Self, ServeError> {
        Self::with_config(EngineConfig::default())
    }

    /// A harness over an engine tuned by `config`.
    ///
    /// # Errors
    ///
    /// Propagates engine-construction failures.
    pub fn with_config(config: EngineConfig) -> Result<Self, ServeError> {
        Ok(ServeHarness { engine: Engine::new(config)? })
    }

    /// The wrapped engine, for counter assertions.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Builds the wire bytes of one batch frame, assigning ids
    /// `1..=queries.len()` in order.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn encode_batch(queries: &[Query]) -> Result<Vec<u8>, ServeError> {
        let batch = BatchRequest {
            requests: queries
                .iter()
                .enumerate()
                .map(|(i, query)| Request { id: i as u64 + 1, query: query.clone() })
                .collect(),
        };
        let payload = serde_json::to_string(&batch)?;
        let mut wire = Vec::new();
        write_frame(&mut wire, payload.as_bytes())?;
        Ok(wire)
    }

    /// Pushes raw wire bytes through the full connection loop and
    /// returns the verbatim reply byte stream — the primitive behind
    /// every protocol-robustness test: arbitrary garbage in, structured
    /// frames (never a panic) out.
    ///
    /// # Errors
    ///
    /// Propagates transport-level failures (none occur on in-memory
    /// buffers).
    pub fn roundtrip_raw(&self, wire: &[u8]) -> Result<Vec<u8>, ServeError> {
        let mut reader = Cursor::new(wire.to_vec());
        let mut replies = Vec::new();
        serve_stream(&self.engine, &mut reader, &mut replies)?;
        Ok(replies)
    }

    /// The raw reply byte stream for one well-formed batch — the
    /// byte-comparison primitive for determinism tests.
    ///
    /// # Errors
    ///
    /// Propagates encoding or transport failures.
    pub fn reply_bytes(&self, queries: &[Query]) -> Result<Vec<u8>, ServeError> {
        self.roundtrip_raw(&Self::encode_batch(queries)?)
    }

    /// Parses a reply byte stream back into typed replies.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on an unparseable stream (a serve bug —
    /// the engine only emits well-formed frames).
    pub fn decode_replies(wire: &[u8]) -> Result<Vec<Reply>, ServeError> {
        let mut reader = Cursor::new(wire.to_vec());
        let mut replies = Vec::new();
        while let Some(payload) = read_frame(&mut reader).map_err(ServeError::Frame)? {
            let text = std::str::from_utf8(&payload)
                .map_err(|e| ServeError::Protocol(e.to_string()))?;
            replies.push(serde_json::from_str(text)?);
        }
        Ok(replies)
    }

    /// Sends one batch and returns the typed replies, in request order.
    ///
    /// # Errors
    ///
    /// Propagates encoding, transport, or decoding failures.
    pub fn query_batch(&self, queries: &[Query]) -> Result<Vec<Reply>, ServeError> {
        Self::decode_replies(&self.reply_bytes(queries)?)
    }
}
