//! Offline shim for the subset of the `rand` crate API used by this
//! workspace: `RngCore`, `Rng` (`gen`, `gen_range`, `gen_bool`) and
//! `SeedableRng::seed_from_u64`.
//!
//! The build environment has no network access, so instead of the real
//! `rand` this minimal, dependency-free implementation is vendored. It is
//! deterministic per seed, which is all the simulators and tests require.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core of every random number generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator. Only `seed_from_u64` is used by this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values that can be drawn uniformly from the "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let f = <$t as StandardSample>::sample_standard(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let f = <$t as StandardSample>::sample_standard(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (e.g. `gen::<f64>()`
    /// is uniform in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64 step, used for seeding and as a small standalone generator.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn unit_interval_and_ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(3u32..17);
            assert!((3..17).contains(&u));
            let x = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&x));
            let i = rng.gen_range(0usize..5);
            assert!(i < 5);
        }
    }
}
