//! Offline shim for the subset of `serde_json` used by this workspace:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Error`].
//!
//! Works on the shim `serde::Value` data model: serialization renders a
//! `Value` tree to JSON text; deserialization parses JSON text into a
//! `Value` tree and hands it to `serde::Deserialize`.

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        // Real serde_json errors on non-finite floats; the shim emits null,
        // which `from_value::<f64>` will reject, surfacing the problem at
        // the same place (round-trip) without panicking mid-report.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats distinguishable from integers.
        out.push_str(&format!("{f:.1}"));
    } else {
        // Shortest representation that round-trips through f64.
        out.push_str(&format!("{f}"));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("invalid surrogate pair".into()))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ if b < 0x80 => out.push(b as char),
                _ => {
                    // Multibyte: decode exactly one UTF-8 sequence. The
                    // leading byte fixes its length, so validation stays
                    // O(1) per character (validating the whole remaining
                    // input here made parsing quadratic).
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error("invalid UTF-8".into())),
                    };
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error("invalid UTF-8".into()));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = s.chars().next().unwrap();
                    self.pos = end;
                    out.push(c);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let value = Value::Object(vec![
            ("n".into(), Value::UInt(5)),
            ("x".into(), Value::Float(1.25)),
            ("neg".into(), Value::Int(-3)),
            ("name".into(), Value::Str("tab\there \"q\"".into())),
            (
                "list".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [
            {
                let mut s = String::new();
                write_value(&mut s, &value, None, 0);
                s
            },
            {
                let mut s = String::new();
                write_value(&mut s, &value, Some(2), 0);
                s
            },
        ] {
            let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
            let back = p.parse_value().unwrap();
            assert_eq!(back, value, "text was: {text}");
        }
    }

    #[test]
    fn floats_keep_precision() {
        let x = 0.123_456_789_012_345_68;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.5 x").is_err());
    }
}
