//! End-to-end check that a failing novel case is appended to the sidecar.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1))]

    fn always_fails(w in 1u32..10) {
        prop_assert!(w > 100, "forced failure for persistence test");
    }
}

#[test]
fn failing_case_is_persisted_then_replayed_first() {
    let source = file!();
    let sidecar = proptest::persistence::sidecar_path(source).unwrap();
    let _ = std::fs::remove_file(&sidecar);

    // First run: the single novel case fails and its pre-case RNG state is
    // appended to the sidecar before the panic propagates.
    assert!(std::panic::catch_unwind(always_fails).is_err());
    let saved = proptest::persistence::load(source);
    assert_eq!(
        saved,
        vec![TestRng::from_name("persist_on_failure::always_fails").state()],
        "pre-case state of the first novel case should be persisted"
    );

    // Second run: the persisted case replays first and fails immediately.
    assert!(std::panic::catch_unwind(always_fails).is_err());
    assert_eq!(
        proptest::persistence::load(source).len(),
        1,
        "replay failures must not duplicate the persisted entry"
    );

    std::fs::remove_file(&sidecar).unwrap();
}
