//! Coupled fixed point for heterogeneous contention windows.
//!
//! Combining paper Eqs. (2) and (3) for all nodes gives `2n` equations in
//! the unknowns `τ_1…τ_n, p_1…p_n`:
//!
//! ```text
//! τ_i = τ(W_i, p_i)                  (per-node backoff chain)
//! p_i = 1 − Π_{j≠i} (1 − τ_j)        (collision coupling)
//! ```
//!
//! [`solve`] handles arbitrary window profiles by damped fixed-point
//! iteration; [`solve_symmetric`] exploits the homogeneous case (all nodes
//! on the same `W`), where the scalar map is monotone and bisection gives a
//! guaranteed, fast solution — this is the path the equilibrium machinery
//! hammers.
//!
//! Since every `τ_i` depends only on node `i`'s window (nodes sharing a
//! window are exchangeable), [`solve`] internally collapses the profile to
//! its [`ClassProfile`] — `k` distinct windows with multiplicities — and
//! iterates `k` class-level pairs via [`solve_classes`], expanding back to
//! a node-level [`Equilibrium`] at the end. The collapse is exact (the
//! class-constant subspace is invariant under the sweep map and contains
//! the fixed point), and makes the per-sweep cost O(k) instead of O(n).
//! [`solve_dense`] keeps the original 2n-dimensional iteration as a
//! reference/ablation baseline.

use macgame_telemetry as telemetry;
use serde::{Deserialize, Serialize};

use crate::classes::{ClassEquilibrium, ClassProfile, SymmetricMemo};
use crate::error::{DcfError, SolveAttempt, SolveRung};
use crate::markov::transmission_probability;
use crate::params::DcfParams;

/// Options controlling the heterogeneous fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolveOptions {
    /// Maximum number of sweeps before giving up.
    pub max_iterations: usize,
    /// Convergence threshold on the max |Δτ_i| between sweeps.
    pub tolerance: f64,
    /// Damping factor in `(0, 1]`: `τ ← (1−d)·τ + d·τ_new`.
    pub damping: f64,
    /// Whether to switch to Anderson-accelerated undamped sweeps near the
    /// fixed point. `false` reproduces the plain damped iteration —
    /// useful as a baseline for benchmarks and ablations.
    pub accelerate: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions { max_iterations: 20_000, tolerance: 1e-12, damping: 0.5, accelerate: true }
    }
}

/// Solution of the coupled system for a window profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Equilibrium {
    /// Per-node transmission probabilities `τ_i`.
    pub taus: Vec<f64>,
    /// Per-node conditional collision probabilities `p_i`.
    pub collision_probs: Vec<f64>,
    /// Sweeps used by the iterative solver. Always at least 1: homogeneous
    /// profiles are seeded from the bisection root and verified with one
    /// sweep, so the count stays an honest cost/diagnostic signal.
    pub iterations: usize,
}

impl Equilibrium {
    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.taus.len()
    }

    /// Whether the profile is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.taus.is_empty()
    }

    /// Max residual of Eqs. (2)–(3) at the solution — a direct certificate
    /// of solution quality, independent of the solver path.
    ///
    /// # Errors
    ///
    /// Returns [`DcfError::InvalidParameter`] if `windows` disagrees in
    /// length with the solution.
    pub fn residual(&self, windows: &[u32], params: &DcfParams) -> Result<f64, DcfError> {
        if windows.len() != self.taus.len() {
            return Err(DcfError::invalid("windows", "length must match solution"));
        }
        let m = params.max_backoff_stage();
        let mut worst = 0.0f64;
        for (i, &w) in windows.iter().enumerate() {
            let p_i: f64 = 1.0
                - self
                    .taus
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &t)| 1.0 - t)
                    .product::<f64>();
            let tau_i = transmission_probability(w, p_i, m)?;
            worst = worst.max((p_i - self.collision_probs[i]).abs());
            worst = worst.max((tau_i - self.taus[i]).abs());
        }
        Ok(worst)
    }
}

fn validate_windows(windows: &[u32]) -> Result<(), DcfError> {
    if windows.is_empty() {
        return Err(DcfError::invalid("windows", "need at least one node"));
    }
    if windows.contains(&0) {
        return Err(DcfError::invalid("windows", "contention windows must be at least 1"));
    }
    Ok(())
}

/// Solves the coupled `(τ, p)` system for an arbitrary window profile.
///
/// Uses damped fixed-point iteration. Without a warm start, homogeneous
/// profiles are seeded from the [`solve_symmetric`] bisection root (one
/// verification sweep confirms it) and heterogeneous profiles start from
/// the collision-free guess `τ_i = 2/(W_i + 1)`. See [`solve_with_guess`]
/// to seed the iteration from a nearby solution.
///
/// # Errors
///
/// * [`DcfError::InvalidParameter`] for an empty profile or a zero window;
/// * [`DcfError::SolveDidNotConverge`] if the sweep residual stays above
///   `options.tolerance`.
///
/// # Examples
///
/// ```
/// use macgame_dcf::fixedpoint::{solve, SolveOptions};
/// use macgame_dcf::params::DcfParams;
///
/// let params = DcfParams::default();
/// let eq = solve(&[32, 32, 64], &params, SolveOptions::default())?;
/// // The aggressive nodes transmit more and see fewer collisions (Lemma 1).
/// assert!(eq.taus[0] > eq.taus[2]);
/// assert!(eq.collision_probs[0] < eq.collision_probs[2]);
/// # Ok::<(), macgame_dcf::DcfError>(())
/// ```
pub fn solve(
    windows: &[u32],
    params: &DcfParams,
    options: SolveOptions,
) -> Result<Equilibrium, DcfError> {
    solve_with_guess(windows, params, options, None)
}

/// Like [`solve`], but optionally seeds the iteration with an initial `τ`
/// guess — typically the solution of a neighboring profile in a scan. A
/// seed inside the accelerated region skips the damped approach phase
/// entirely, and an (almost) exact seed — a cache hit re-verified, or a
/// re-solve of the same profile — converges in one or two sweeps.
///
/// The guess must have one entry per node; entries are clamped into
/// `[0, 1]`. Because the iteration runs in class space, nodes sharing a
/// window are seeded from the guess entry of the first such node in
/// player order. The converged solution does not depend on the guess (the
/// damped map contracts to the same fixed point), only the iteration
/// count does — `iterations` always reports the true number of sweeps
/// (at least 1), including on homogeneous profiles.
///
/// # Errors
///
/// * [`DcfError::InvalidParameter`] for an empty profile, a zero window,
///   a non-finite guess entry, or a guess of the wrong length;
/// * [`DcfError::SolveDidNotConverge`] if the sweep residual stays above
///   `options.tolerance`.
pub fn solve_with_guess(
    windows: &[u32],
    params: &DcfParams,
    options: SolveOptions,
    guess: Option<&[f64]>,
) -> Result<Equilibrium, DcfError> {
    solve_seeded(windows, params, options, guess, None)
}

/// Like [`solve_with_guess`], with an optional [`SymmetricMemo`] consulted
/// for the bisection root that seeds homogeneous cold starts — scans that
/// revisit the same `(n, W)` field many times share one memo so each root
/// bisects at most once. The memo must have been built with the same
/// `params` (a mismatched memo is ignored, not trusted); since a memo hit
/// returns exactly the [`solve_symmetric`] root, results are
/// bitwise-identical with and without a memo.
///
/// # Errors
///
/// Same conditions as [`solve_with_guess`].
pub fn solve_seeded(
    windows: &[u32],
    params: &DcfParams,
    options: SolveOptions,
    guess: Option<&[f64]>,
    roots: Option<&SymmetricMemo>,
) -> Result<Equilibrium, DcfError> {
    validate_windows(windows)?;
    let n = windows.len();
    if let Some(seed) = guess {
        if seed.len() != n {
            return Err(DcfError::invalid("guess", "length must match windows"));
        }
        if seed.iter().any(|t| !t.is_finite()) {
            return Err(DcfError::invalid("guess", "entries must be finite"));
        }
    }
    let (profile, assignment) = ClassProfile::from_windows(windows)?;
    let k = profile.num_classes();
    telemetry::counter("dcf.solver.class_collapsed", (n - k) as u64);
    // One guess entry per class: the first node of each class (in player
    // order) seeds it. Duplicated entries for the same window can only
    // disagree transiently, so this changes iteration counts at most.
    let class_guess: Option<Vec<f64>> = guess.map(|seed| {
        let mut cg = vec![f64::NAN; k];
        for (&c, &t) in assignment.iter().zip(seed) {
            if cg[c].is_nan() {
                cg[c] = t;
            }
        }
        cg
    });
    let ceq = solve_classes_seeded(&profile, params, options, class_guess.as_deref(), roots)?;
    Ok(ceq.expand(&assignment))
}

/// Solves the coupled system for a [`ClassProfile`], iterating one
/// `(τ_c, p_c)` pair per class. The per-sweep cost is O(k) regardless of
/// the population size, which is what makes `n = 10^6` populations with a
/// handful of distinct windows as cheap as the paper's `n = 10` tables.
///
/// # Errors
///
/// * [`DcfError::InvalidParameter`] for invalid damping;
/// * [`DcfError::SolveDidNotConverge`] if the sweep residual stays above
///   `options.tolerance`.
pub fn solve_classes(
    profile: &ClassProfile,
    params: &DcfParams,
    options: SolveOptions,
) -> Result<ClassEquilibrium, DcfError> {
    solve_classes_seeded(profile, params, options, None, None)
}

/// Like [`solve_classes`], seeded with one `τ` guess entry per class
/// (clamped into `[0, 1]`) — typically the solution of a neighboring
/// profile with the same class structure.
///
/// # Errors
///
/// Same conditions as [`solve_classes`], plus a guess of the wrong length
/// or with non-finite entries.
pub fn solve_classes_with_guess(
    profile: &ClassProfile,
    params: &DcfParams,
    options: SolveOptions,
    guess: Option<&[f64]>,
) -> Result<ClassEquilibrium, DcfError> {
    solve_classes_seeded(profile, params, options, guess, None)
}

/// The full-control class solver: optional per-class guess, optional
/// [`SymmetricMemo`] for the homogeneous cold-start root. All node-level
/// entry points funnel through here.
///
/// # Errors
///
/// Same conditions as [`solve_classes_with_guess`].
pub fn solve_classes_seeded(
    profile: &ClassProfile,
    params: &DcfParams,
    options: SolveOptions,
    guess: Option<&[f64]>,
    roots: Option<&SymmetricMemo>,
) -> Result<ClassEquilibrium, DcfError> {
    if !(0.0..=1.0).contains(&options.damping) || options.damping == 0.0 {
        return Err(DcfError::invalid("damping", "must be in (0, 1]"));
    }
    let k = profile.num_classes();
    let taus: Vec<f64> = match guess {
        Some(seed) => {
            if seed.len() != k {
                return Err(DcfError::invalid("guess", "need one entry per class"));
            }
            if seed.iter().any(|t| !t.is_finite()) {
                return Err(DcfError::invalid("guess", "entries must be finite"));
            }
            seed.iter().map(|t| t.clamp(0.0, 1.0)).collect()
        }
        None if profile.is_homogeneous() => {
            // Homogeneous: the bisection root is the fixed point; seeding
            // from it lets the damped iteration confirm convergence in a
            // single sweep while keeping `iterations` an honest count.
            let n = profile.total_nodes();
            let w = profile.windows()[0];
            let sym = match roots {
                Some(memo) if memo.params() == params => memo.solve(n, w)?,
                _ => solve_symmetric(n, w, params)?,
            };
            vec![sym.tau]
        }
        None => profile.windows().iter().map(|&w| 2.0 / (f64::from(w) + 1.0)).collect(),
    };
    telemetry::counter("dcf.solver.solves", 1);
    if guess.is_some() {
        telemetry::counter("dcf.solver.warm_starts", 1);
    }
    telemetry::histogram("dcf.solver.classes", k as f64);
    let (taus, collision_probs, iterations) =
        iterate_fixed_point(profile.windows(), profile.counts(), params, options, taus)?;
    Ok(ClassEquilibrium { taus, collision_probs, iterations })
}

/// The original 2n-dimensional node-level iteration, kept as the
/// reference/ablation baseline the class solver is validated against
/// (property tests, the gated conformance agreement claim, and the
/// n-scaling bench). Production callers should use [`solve`], which runs
/// the same two-phase sweep in class space.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn solve_dense(
    windows: &[u32],
    params: &DcfParams,
    options: SolveOptions,
) -> Result<Equilibrium, DcfError> {
    validate_windows(windows)?;
    if !(0.0..=1.0).contains(&options.damping) || options.damping == 0.0 {
        return Err(DcfError::invalid("damping", "must be in (0, 1]"));
    }
    let n = windows.len();
    let taus: Vec<f64> = if windows.iter().all(|&w| w == windows[0]) {
        let sym = solve_symmetric(n, windows[0], params)?;
        vec![sym.tau; n]
    } else {
        windows.iter().map(|&w| 2.0 / (f64::from(w) + 1.0)).collect()
    };
    let counts = vec![1usize; n];
    let (taus, collision_probs, iterations) =
        iterate_fixed_point(windows, &counts, params, options, taus)?;
    Ok(Equilibrium { taus, collision_probs, iterations })
}

/// The two-phase damped/Anderson sweep shared by the class solver and the
/// dense reference. `counts[c]` is the multiplicity of `windows[c]`: the
/// collision coupling weights each log term by it, and the Anderson secant
/// weights each class's contribution so the extrapolation matches what the
/// expanded node-level iteration would compute. The dense path passes
/// all-ones counts, for which every weight multiplies by exactly `1.0` —
/// bitwise-identical to the unweighted sweep.
///
/// Returns `(taus, collision_probs, iterations)` on convergence.
fn iterate_fixed_point(
    windows: &[u32],
    counts: &[usize],
    params: &DcfParams,
    options: SolveOptions,
    mut taus: Vec<f64>,
) -> Result<(Vec<f64>, Vec<f64>, usize), DcfError> {
    let m = params.max_backoff_stage();
    let n = windows.len();
    let mut damped_sweeps: u64 = 0;
    let mut accel_sweeps: u64 = 0;
    let mut residual = f64::INFINITY;
    // Two-phase iteration. Far from the fixed point the damped map is
    // needed for stability, but its `(1−d)`-dominated linear rate makes
    // the final approach expensive no matter how good the seed was. Once
    // the raw sweep-to-sweep change drops below `ACCEL_THRESHOLD` the
    // solver switches to the undamped map with depth-1 Anderson (secant)
    // extrapolation, which kills the dominant error mode and converges
    // superlinearly — so the total count is dominated by the approach
    // phase, which warm starts skip. If the raw residual ever grows while
    // accelerated, fall back to plain damping permanently (worst case:
    // the original behavior).
    const ACCEL_THRESHOLD: f64 = 1e-3;
    let mut allow_accel = options.accelerate;
    let mut accel = false;
    let mut prev_raw = f64::INFINITY;
    // Anderson history: previous iterate and its raw sweep image.
    let mut hist: Option<(Vec<f64>, Vec<f64>)> = None;
    for iter in 0..options.max_iterations {
        residual = 0.0;
        let mut raw = 0.0f64;
        // Multiplicity-weighted log(1−τ) accumulation: the n-way product
        // Π_j (1−τ_j)^{n_j} costs one log per *class*.
        let total_log: f64 = taus
            .iter()
            .zip(counts)
            .map(|(&t, &c)| (c as f64) * (1.0 - t).max(f64::MIN_POSITIVE).ln())
            .sum();
        let mut sweep = Vec::with_capacity(n);
        for (&w, &tau) in windows.iter().zip(&taus) {
            let others = (total_log - (1.0 - tau).max(f64::MIN_POSITIVE).ln()).exp();
            let p_i = (1.0 - others).clamp(0.0, 1.0);
            let tau_new = transmission_probability(w, p_i, m)?;
            raw = raw.max((tau_new - tau).abs());
            sweep.push(tau_new);
        }
        if accel && raw > prev_raw {
            allow_accel = false;
            accel = false;
            hist = None;
        } else if allow_accel && raw < ACCEL_THRESHOLD {
            accel = true;
        }
        prev_raw = raw;
        if accel {
            accel_sweeps += 1;
        } else {
            damped_sweeps += 1;
        }
        let next: Vec<f64> = if accel {
            // Anderson(1): with f_k = G(x_k) − x_k, pick β minimizing the
            // linearized residual of β·f_{k−1} + (1−β)·f_k and combine the
            // images accordingly. Falls back to the plain undamped step on
            // the first accelerated sweep or a degenerate secant.
            let step = match &hist {
                Some((prev_x, prev_g)) => {
                    let mut num = 0.0f64;
                    let mut den = 0.0f64;
                    for i in 0..n {
                        let wc = counts[i] as f64;
                        let f = sweep[i] - taus[i];
                        let df = f - (prev_g[i] - prev_x[i]);
                        num += wc * f * df;
                        den += wc * df * df;
                    }
                    let beta = if den > 0.0 { num / den } else { 0.0 };
                    if beta.is_finite() && beta.abs() <= 5.0 {
                        Some(
                            (0..n)
                                .map(|i| {
                                    (sweep[i] - beta * (sweep[i] - prev_g[i])).clamp(0.0, 1.0)
                                })
                                .collect::<Vec<f64>>(),
                        )
                    } else {
                        None
                    }
                }
                None => None,
            };
            hist = Some((taus.clone(), sweep.clone()));
            step.unwrap_or(sweep)
        } else {
            hist = None;
            windows
                .iter()
                .zip(&taus)
                .zip(&sweep)
                .map(|((_, &tau), &tau_new)| {
                    (1.0 - options.damping) * tau + options.damping * tau_new
                })
                .collect()
        };
        for (new, old) in next.iter().zip(&taus) {
            residual = residual.max((new - old).abs());
        }
        taus = next;
        // `raw` is the true fixed-point residual |G(x) − x| at the previous
        // iterate; accepting it as a stop certificate keeps Anderson's
        // larger extrapolation steps from masking convergence.
        if residual < options.tolerance || raw < options.tolerance {
            telemetry::counter("dcf.solver.iterations", iter as u64 + 1);
            telemetry::counter("dcf.solver.sweeps.damped", damped_sweeps);
            telemetry::counter("dcf.solver.sweeps.accelerated", accel_sweeps);
            telemetry::histogram("dcf.solver.iterations", (iter + 1) as f64);
            telemetry::histogram("dcf.solver.residual", raw.min(residual));
            let total_log: f64 = taus
                .iter()
                .zip(counts)
                .map(|(&t, &c)| (c as f64) * (1.0 - t).max(f64::MIN_POSITIVE).ln())
                .sum();
            let collision_probs = taus
                .iter()
                .map(|&t| {
                    let others = (total_log - (1.0 - t).max(f64::MIN_POSITIVE).ln()).exp();
                    (1.0 - others).clamp(0.0, 1.0)
                })
                .collect();
            let iterations = iter + 1;
            return Ok((taus, collision_probs, iterations));
        }
    }
    telemetry::counter("dcf.solver.failures", 1);
    Err(DcfError::did_not_converge(options.max_iterations, residual))
}

/// Result of the [`solve_robust`] fallback ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustSolve {
    /// The converged solution.
    pub equilibrium: Equilibrium,
    /// The rung that produced it. [`SolveRung::Accelerated`] means the
    /// primary solver succeeded and the result is bitwise identical to a
    /// plain [`solve`] with the same options.
    pub rung: SolveRung,
    /// Diagnostics of the rungs that failed before `rung` succeeded
    /// (empty when the primary solver converged).
    pub attempts: Vec<SolveAttempt>,
}

/// Residual bound accepted from the safe mode. The enclosure brackets the
/// fixed point rigorously, but the composed per-equation residual
/// accumulates rounding over `n` nodes, so the certificate is looser than
/// the iterative solver's tolerance.
const SAFE_MODE_RESIDUAL: f64 = 1e-8;

/// Solves the coupled `(τ, p)` system through a fallback ladder, so that
/// [`DcfError::SolveDidNotConverge`] becomes a last resort carrying the
/// full diagnostic trail:
///
/// 1. **Primary** — [`solve`] exactly as configured by `options`. On
///    success the result is bitwise identical to calling [`solve`]
///    directly (nothing about the ladder perturbs the primary path).
/// 2. **Damped retry** — acceleration disabled, damping tightened to
///    `0.6×` the configured value, iteration budget doubled. Catches
///    profiles where Anderson extrapolation oscillates.
/// 3. **Bounded bisection safe mode** — guaranteed bracketing with its
///    own fixed budgets, independent of how starved `options` was.
///    Homogeneous profiles go straight to the monotone scalar bisection
///    of [`solve_symmetric`]. Heterogeneous profiles use the interval
///    enclosure of the anti-monotone sweep map `G` (each `τ_i` is
///    decreasing in every other `τ_j`, so `G∘G` is monotone and the pair
///    iteration `l ← G(u), u ← G(l)` from `l = 0, u = G(0)` brackets
///    every fixed point between monotone bounds). When the bracket
///    collapses the midpoint **is** the solution; when it stalls on a
///    two-cycle, a heavily-damped continuation finishes from the bracket
///    midpoint — far inside the basin the enclosure certified.
///
/// # Errors
///
/// * [`DcfError::InvalidParameter`] for an empty profile, a zero window,
///   or invalid damping — input validation is not retried;
/// * [`DcfError::SolveDidNotConverge`] only if all three rungs fail; the
///   `attempts` field then records each rung's iterations and residual.
pub fn solve_robust(
    windows: &[u32],
    params: &DcfParams,
    options: SolveOptions,
) -> Result<RobustSolve, DcfError> {
    telemetry::counter("dcf.solver.robust.solves", 1);
    let mut attempts = Vec::new();
    match solve(windows, params, options) {
        Ok(equilibrium) => {
            return Ok(RobustSolve { equilibrium, rung: SolveRung::Accelerated, attempts })
        }
        Err(DcfError::SolveDidNotConverge { iterations, residual, .. }) => {
            attempts.push(SolveAttempt { rung: SolveRung::Accelerated, iterations, residual });
        }
        Err(other) => return Err(other),
    }
    telemetry::counter("dcf.solver.robust.retries", 1);
    let retry = SolveOptions {
        accelerate: false,
        damping: options.damping * 0.6,
        max_iterations: options.max_iterations.saturating_mul(2).max(1),
        tolerance: options.tolerance,
    };
    match solve(windows, params, retry) {
        Ok(equilibrium) => {
            return Ok(RobustSolve { equilibrium, rung: SolveRung::Damped, attempts })
        }
        Err(DcfError::SolveDidNotConverge { iterations, residual, .. }) => {
            attempts.push(SolveAttempt { rung: SolveRung::Damped, iterations, residual });
        }
        Err(other) => return Err(other),
    }
    telemetry::counter("dcf.solver.robust.safe_mode", 1);
    let ladder_error = |mut attempts: Vec<SolveAttempt>, iterations, residual| {
        attempts.push(SolveAttempt { rung: SolveRung::Bisection, iterations, residual });
        telemetry::counter("dcf.solver.robust.failures", 1);
        DcfError::SolveDidNotConverge {
            iterations: attempts.iter().map(|a| a.iterations).sum(),
            residual,
            attempts,
        }
    };
    match solve_bisection_safe(windows, params, options.tolerance) {
        Ok(equilibrium) => {
            let residual = equilibrium.residual(windows, params)?;
            if residual <= SAFE_MODE_RESIDUAL.max(options.tolerance) {
                Ok(RobustSolve { equilibrium, rung: SolveRung::Bisection, attempts })
            } else {
                let iterations = equilibrium.iterations;
                Err(ladder_error(attempts, iterations, residual))
            }
        }
        Err(DcfError::SolveDidNotConverge { iterations, residual, .. }) => {
            Err(ladder_error(attempts, iterations, residual))
        }
        Err(other) => Err(other),
    }
}

/// The bounded safe mode behind [`solve_robust`]'s last rung. Has its own
/// fixed iteration budgets so that it stays reliable even when the caller
/// starved `SolveOptions::max_iterations`.
fn solve_bisection_safe(
    windows: &[u32],
    params: &DcfParams,
    tolerance: f64,
) -> Result<Equilibrium, DcfError> {
    validate_windows(windows)?;
    let n = windows.len();
    // Homogeneous: the scalar bisection is monotone and guaranteed.
    if windows.iter().all(|&w| w == windows[0]) {
        let sym = solve_symmetric(n, windows[0], params)?;
        return Ok(Equilibrium {
            taus: vec![sym.tau; n],
            collision_probs: vec![sym.collision_prob; n],
            iterations: 1,
        });
    }
    let m = params.max_backoff_stage();
    // The undamped sweep map. G_i does not depend on τ_i and is
    // decreasing in every τ_j (j ≠ i): more competition ⇒ more
    // collisions ⇒ slower transmission.
    let sweep = |taus: &[f64]| -> Result<Vec<f64>, DcfError> {
        let total_log: f64 = taus.iter().map(|&t| (1.0 - t).max(f64::MIN_POSITIVE).ln()).sum();
        windows
            .iter()
            .zip(taus)
            .map(|(&w, &t)| {
                let others = (total_log - (1.0 - t).max(f64::MIN_POSITIVE).ln()).exp();
                transmission_probability(w, (1.0 - others).clamp(0.0, 1.0), m)
            })
            .collect()
    };
    // Interval enclosure: anti-monotone G makes G∘G monotone, so from the
    // trivial bracket [0, G(0)] the pair iteration produces lower bounds
    // that only rise and upper bounds that only fall, with every fixed
    // point in between. Either the bracket collapses (solved, with a
    // rigorous certificate) or it stalls on a two-cycle of G.
    let mut lo = vec![0.0f64; n];
    let mut hi = sweep(&lo)?;
    let mut sweeps = 2usize;
    for _ in 0..500 {
        let new_lo = sweep(&hi)?;
        let new_hi = sweep(&lo)?;
        sweeps += 2;
        let moved = new_lo
            .iter()
            .zip(&lo)
            .chain(new_hi.iter().zip(&hi))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        lo = new_lo;
        hi = new_hi;
        let gap = hi.iter().zip(&lo).map(|(h, l)| h - l).fold(0.0f64, f64::max);
        if gap < tolerance.max(1e-14) {
            let taus: Vec<f64> = lo.iter().zip(&hi).map(|(l, h)| 0.5 * (l + h)).collect();
            let total_log: f64 =
                taus.iter().map(|&t| (1.0 - t).max(f64::MIN_POSITIVE).ln()).sum();
            let collision_probs = taus
                .iter()
                .map(|&t| {
                    let others = (total_log - (1.0 - t).max(f64::MIN_POSITIVE).ln()).exp();
                    (1.0 - others).clamp(0.0, 1.0)
                })
                .collect();
            return Ok(Equilibrium { taus, collision_probs, iterations: sweeps });
        }
        if moved < 1e-15 {
            break;
        }
    }
    // Stalled enclosure: finish with a heavily-damped continuation from
    // the bracket midpoint, dropping the damping until one converges.
    let midpoint: Vec<f64> = lo.iter().zip(&hi).map(|(l, h)| 0.5 * (l + h)).collect();
    let mut last = DcfError::did_not_converge(sweeps, f64::INFINITY);
    for damping in [0.25, 0.1, 0.04] {
        let opts = SolveOptions {
            max_iterations: 60_000,
            tolerance,
            damping,
            accelerate: false,
        };
        match solve_with_guess(windows, params, opts, Some(&midpoint)) {
            Ok(mut eq) => {
                eq.iterations += sweeps;
                return Ok(eq);
            }
            Err(err @ DcfError::SolveDidNotConverge { .. }) => last = err,
            Err(other) => return Err(other),
        }
    }
    Err(last)
}

/// Symmetric operating point: every node on window `w`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SymmetricPoint {
    /// Number of nodes.
    pub n: usize,
    /// Common contention window.
    pub window: u32,
    /// Common transmission probability `τ_c`.
    pub tau: f64,
    /// Common collision probability `p_c = 1 − (1−τ_c)^{n−1}`.
    pub collision_prob: f64,
}

/// Solves the homogeneous fixed point (all `n` nodes on window `w`) by
/// bisection on `f(τ) = τ − τ(W, 1 − (1−τ)^{n−1})`, which is strictly
/// increasing, so the root is unique — the uniqueness result Bianchi proved
/// for the homogeneous case.
///
/// # Examples
///
/// ```
/// use macgame_dcf::fixedpoint::solve_symmetric;
/// use macgame_dcf::DcfParams;
///
/// // Five nodes at the paper's Table II operating point.
/// let sym = solve_symmetric(5, 76, &DcfParams::default())?;
/// assert!((sym.tau - 0.0226).abs() < 1e-3);
/// assert!((sym.collision_prob - 0.088).abs() < 5e-3);
/// # Ok::<(), macgame_dcf::DcfError>(())
/// ```
///
/// # Errors
///
/// Returns [`DcfError::InvalidParameter`] if `n == 0` or `w == 0`.
pub fn solve_symmetric(n: usize, w: u32, params: &DcfParams) -> Result<SymmetricPoint, DcfError> {
    if n == 0 {
        return Err(DcfError::invalid("n", "need at least one node"));
    }
    validate_windows(&[w])?;
    telemetry::counter("dcf.solver.bisections", 1);
    let m = params.max_backoff_stage();
    if n == 1 {
        let tau = transmission_probability(w, 0.0, m)?;
        return Ok(SymmetricPoint { n, window: w, tau, collision_prob: 0.0 });
    }
    let f = |tau: f64| -> Result<f64, DcfError> {
        let p = 1.0 - (1.0 - tau).powi(n as i32 - 1);
        Ok(tau - transmission_probability(w, p.clamp(0.0, 1.0), m)?)
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    // f(0) = −τ(W, 0) < 0 and f(1) = 1 − τ(W, 1) > 0: the root is bracketed.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid)? <= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let tau = 0.5 * (lo + hi);
    let collision_prob = (1.0 - (1.0 - tau).powi(n as i32 - 1)).clamp(0.0, 1.0);
    Ok(SymmetricPoint { n, window: w, tau, collision_prob })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DcfParams {
        DcfParams::default()
    }

    #[test]
    fn symmetric_satisfies_equations() {
        let p = params();
        for &(n, w) in &[(2usize, 16u32), (5, 32), (10, 64), (50, 879), (5, 1)] {
            let sym = solve_symmetric(n, w, &p).unwrap();
            let expect_p = 1.0 - (1.0 - sym.tau).powi(n as i32 - 1);
            assert!((sym.collision_prob - expect_p).abs() < 1e-12);
            let expect_tau =
                transmission_probability(w, sym.collision_prob, p.max_backoff_stage()).unwrap();
            assert!(
                (sym.tau - expect_tau).abs() < 1e-10,
                "n={n} w={w}: τ={} expected {}",
                sym.tau,
                expect_tau
            );
        }
    }

    #[test]
    fn single_node_never_collides() {
        let sym = solve_symmetric(1, 31, &params()).unwrap();
        assert_eq!(sym.collision_prob, 0.0);
        assert!((sym.tau - 2.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_matches_symmetric_on_equal_profile() {
        let p = params();
        let eq = solve(&[32; 7], &p, SolveOptions::default()).unwrap();
        let sym = solve_symmetric(7, 32, &p).unwrap();
        for i in 0..7 {
            assert!((eq.taus[i] - sym.tau).abs() < 1e-10);
            assert!((eq.collision_probs[i] - sym.collision_prob).abs() < 1e-10);
        }
    }

    #[test]
    fn heterogeneous_residual_is_tiny() {
        let p = params();
        let windows = [8u32, 16, 32, 64, 128, 256];
        let eq = solve(&windows, &p, SolveOptions::default()).unwrap();
        assert!(eq.residual(&windows, &p).unwrap() < 1e-9);
    }

    #[test]
    fn lemma1_ordering_holds() {
        // W_i > W_j ⇒ p_i > p_j and τ_i < τ_j (paper Lemma 1).
        let p = params();
        let windows = [16u32, 64, 256];
        let eq = solve(&windows, &p, SolveOptions::default()).unwrap();
        assert!(eq.taus[0] > eq.taus[1] && eq.taus[1] > eq.taus[2]);
        assert!(
            eq.collision_probs[0] < eq.collision_probs[1]
                && eq.collision_probs[1] < eq.collision_probs[2]
        );
    }

    #[test]
    fn tau_decreases_as_population_grows() {
        let p = params();
        let mut prev = f64::INFINITY;
        for n in 2..30 {
            let sym = solve_symmetric(n, 32, &p).unwrap();
            assert!(sym.tau < prev);
            prev = sym.tau;
        }
    }

    #[test]
    fn aggressive_windows_converge_too() {
        // W = 1 for everyone: extremely congested but still solvable.
        let p = params();
        let eq = solve(&[1, 1, 1, 1], &p, SolveOptions::default()).unwrap();
        assert!(eq.residual(&[1, 1, 1, 1], &p).unwrap() < 1e-9);
        // Exponential backoff tempers even W = 1: p settles near 0.63.
        assert!(eq.collision_probs[0] > 0.5, "p = {}", eq.collision_probs[0]);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let p = params();
        assert!(solve(&[], &p, SolveOptions::default()).is_err());
        assert!(solve(&[0, 4], &p, SolveOptions::default()).is_err());
        assert!(solve_symmetric(0, 4, &p).is_err());
        let bad = SolveOptions { damping: 0.0, ..SolveOptions::default() };
        assert!(solve(&[2, 4], &p, bad).is_err());
    }

    #[test]
    fn mixed_extreme_profile_converges() {
        let p = params();
        let windows = [1u32, 1024, 1, 1024, 512];
        let eq = solve(&windows, &p, SolveOptions::default()).unwrap();
        assert!(eq.residual(&windows, &p).unwrap() < 1e-8);
    }

    #[test]
    fn homogeneous_iteration_count_is_honest() {
        let p = params();
        let eq = solve(&[64; 5], &p, SolveOptions::default()).unwrap();
        assert!(eq.iterations >= 1, "seeded verification must still sweep");
        // The bisection seed is the fixed point: one confirming sweep.
        assert!(eq.iterations <= 3, "iterations = {}", eq.iterations);
    }

    #[test]
    fn warm_start_cuts_iterations_and_agrees_with_cold() {
        let p = params();
        let options = SolveOptions::default();
        let windows_a = [16u32, 32, 64, 128, 256];
        let windows_b = [16u32, 32, 76, 128, 256];
        let cold_a = solve(&windows_a, &p, options).unwrap();
        let cold_b = solve(&windows_b, &p, options).unwrap();
        let warm_b =
            solve_with_guess(&windows_b, &p, options, Some(&cold_a.taus)).unwrap();
        assert!(
            warm_b.iterations < cold_b.iterations,
            "warm {} vs cold {}",
            warm_b.iterations,
            cold_b.iterations
        );
        for i in 0..windows_b.len() {
            assert!((warm_b.taus[i] - cold_b.taus[i]).abs() < 10.0 * options.tolerance);
            assert!(
                (warm_b.collision_probs[i] - cold_b.collision_probs[i]).abs()
                    < 10.0 * options.tolerance
            );
        }
    }

    #[test]
    fn warm_start_from_exact_solution_verifies_in_one_sweep() {
        let p = params();
        let options = SolveOptions::default();
        let windows = [8u32, 16, 32, 64];
        let first = solve(&windows, &p, options).unwrap();
        let again = solve_with_guess(&windows, &p, options, Some(&first.taus)).unwrap();
        assert!(again.iterations <= 2, "iterations = {}", again.iterations);
        assert!(again.residual(&windows, &p).unwrap() < 1e-9);
    }

    #[test]
    fn robust_matches_plain_solve_bitwise_on_success() {
        let p = params();
        let options = SolveOptions::default();
        for windows in [vec![32u32; 5], vec![8, 16, 32, 64, 128], vec![1, 1024, 1, 512]] {
            let plain = solve(&windows, &p, options).unwrap();
            let robust = solve_robust(&windows, &p, options).unwrap();
            assert_eq!(robust.rung, SolveRung::Accelerated);
            assert!(robust.attempts.is_empty());
            assert_eq!(robust.equilibrium, plain, "windows {windows:?}");
        }
    }

    #[test]
    fn bisection_safe_mode_agrees_with_plain_solve() {
        let p = params();
        for windows in [vec![32u32; 5], vec![8, 16, 32, 64, 128], vec![1, 1024, 1, 512]] {
            let plain = solve(&windows, &p, SolveOptions::default()).unwrap();
            let safe = solve_bisection_safe(&windows, &p, 1e-12).unwrap();
            assert!(safe.residual(&windows, &p).unwrap() < 1e-9, "windows {windows:?}");
            for i in 0..windows.len() {
                assert!(
                    (safe.taus[i] - plain.taus[i]).abs() < 1e-8,
                    "windows {windows:?} node {i}: {} vs {}",
                    safe.taus[i],
                    plain.taus[i]
                );
            }
        }
    }

    #[test]
    fn ladder_falls_through_to_bisection_with_diagnostics() {
        let p = params();
        // One sweep is never enough for the iterative rungs; the ladder
        // must land on the guaranteed safe mode, carrying both attempts.
        let starved = SolveOptions { max_iterations: 1, ..SolveOptions::default() };
        let robust = solve_robust(&[16, 64, 256], &p, starved).unwrap();
        assert_eq!(robust.rung, SolveRung::Bisection);
        assert_eq!(
            robust.attempts.iter().map(|a| a.rung).collect::<Vec<_>>(),
            vec![SolveRung::Accelerated, SolveRung::Damped]
        );
        assert!(robust.equilibrium.residual(&[16, 64, 256], &p).unwrap() < 1e-8);
    }

    #[test]
    fn robust_propagates_invalid_input_without_retrying() {
        let p = params();
        let err = solve_robust(&[0, 4], &p, SolveOptions::default()).unwrap_err();
        assert!(matches!(err, DcfError::InvalidParameter { .. }));
    }

    #[test]
    fn class_solver_agrees_with_dense_reference() {
        let p = params();
        let options = SolveOptions::default();
        for windows in [
            vec![32u32; 5],
            vec![8, 16, 32, 64, 128],
            vec![76, 76, 1, 76, 512],
            vec![1, 1024, 1, 512],
        ] {
            let class = solve(&windows, &p, options).unwrap();
            let dense = solve_dense(&windows, &p, options).unwrap();
            for i in 0..windows.len() {
                assert!(
                    (class.taus[i] - dense.taus[i]).abs() < 1e-12,
                    "windows {windows:?} node {i}: τ {} vs {}",
                    class.taus[i],
                    dense.taus[i]
                );
                assert!(
                    (class.collision_probs[i] - dense.collision_probs[i]).abs() < 1e-12,
                    "windows {windows:?} node {i}: p {} vs {}",
                    class.collision_probs[i],
                    dense.collision_probs[i]
                );
            }
            assert!(class.residual(&windows, &p).unwrap() < 1e-9);
        }
    }

    #[test]
    fn solve_is_class_collapse_expand_bitwise() {
        // The public node-level path *is* collapse → class solve → expand,
        // so doing those steps by hand must reproduce it exactly.
        let p = params();
        let options = SolveOptions::default();
        for windows in [vec![32u32; 5], vec![16, 48, 96, 192], vec![64, 16, 64, 8]] {
            let eq = solve(&windows, &p, options).unwrap();
            let (profile, assignment) = ClassProfile::from_windows(&windows).unwrap();
            let ceq = solve_classes(&profile, &p, options).unwrap();
            assert_eq!(ceq.expand(&assignment), eq, "windows {windows:?}");
        }
    }

    #[test]
    fn symmetric_memo_never_changes_results() {
        let p = params();
        let options = SolveOptions::default();
        let memo = SymmetricMemo::new(p);
        for _ in 0..2 {
            // Cold miss on the first pass, memo hit on the second: both
            // bitwise-identical to the memo-free solve.
            let seeded = solve_seeded(&[76; 5], &p, options, None, Some(&memo)).unwrap();
            let plain = solve(&[76; 5], &p, options).unwrap();
            assert_eq!(seeded, plain);
        }
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn rejects_bad_guesses() {
        let p = params();
        let options = SolveOptions::default();
        assert!(solve_with_guess(&[8, 16], &p, options, Some(&[0.1])).is_err());
        assert!(solve_with_guess(&[8, 16], &p, options, Some(&[0.1, f64::NAN])).is_err());
        // Out-of-range entries are clamped, not rejected.
        let eq = solve_with_guess(&[8, 16], &p, options, Some(&[-0.5, 2.0])).unwrap();
        assert!(eq.residual(&[8, 16], &p).unwrap() < 1e-9);
    }
}
