//! The rule catalog: token-stream checks enforcing the workspace's
//! determinism, panic-policy, and API-discipline contracts.
//!
//! Every rule reports [`Finding`]s with a stable rule id (`area/name`),
//! the workspace-relative path, and a 1-based line — the coordinates the
//! waiver file ([`crate::waivers`]) matches against.
//!
//! # Scope
//!
//! * **Library code** (`src/**` of a workspace crate, including binaries)
//!   outside `#[cfg(test)]` regions is held to every contract.
//! * **Test regions** (`#[cfg(test)]` modules/items, `#[test]` functions)
//!   and **dev code** (top-level `tests/`, `benches/`, `examples/` files)
//!   are exempt from the determinism and panic-policy rules — tests may
//!   hash, time, and unwrap freely — but *not* from the deprecated-API
//!   rule: new code should not spread deprecated constructors even in
//!   tests (waive the sites that deliberately pin deprecated behavior).
//! * Vendored shims under `vendor/` are never code-linted (they *implement*
//!   the APIs these rules police); their manifests are still checked.

use crate::lexer::{lex, TokenKind};

/// A single rule violation (or waived ex-violation) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier, e.g. `determinism/hash-container`.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human explanation of the contract that was broken.
    pub message: String,
    /// The trimmed source line, truncated for stable artifact output.
    pub snippet: String,
    /// Whether a `lint-allow.toml` waiver covers this finding.
    pub waived: bool,
    /// The waiver's rationale when `waived`.
    pub reason: Option<String>,
    /// Call-path witness (root → … → sink) for graph-reachability
    /// findings; empty for token-level findings.
    pub witness: Vec<String>,
}

/// Rule id: `HashMap`/`HashSet` in artifact-serializing library code.
pub const RULE_HASH: &str = "determinism/hash-container";
/// Rule id: `Instant::now`/`SystemTime::now` outside the timings quarantine.
pub const RULE_WALL_CLOCK: &str = "determinism/wall-clock";
/// Rule id: entropy-seeded RNG (`thread_rng`, `from_entropy`).
pub const RULE_ENTROPY: &str = "determinism/entropy-rng";
/// Rule id: unmarked `unwrap`/`expect`/`panic!`/`assert!` family call.
pub const RULE_PANIC: &str = "panic-policy/unmarked-panic";
/// Rule id: a `// PANIC-POLICY:` marker with no rationale text.
pub const RULE_EMPTY_MARKER: &str = "panic-policy/empty-marker";
/// Rule id: call to a deprecated panicking constructor.
pub const RULE_DEPRECATED: &str = "api/deprecated-constructor";
/// Rule id: `Ordering::Relaxed` outside the telemetry allowlist.
pub const RULE_RELAXED: &str = "api/relaxed-ordering";

/// How a source file participates in the build, which decides rule scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` of a workspace crate (libraries *and* binaries).
    Library,
    /// Top-level `tests/`, `benches/`, or `examples/` compilation units.
    Dev,
}

/// Per-file context handed to [`check_source`].
#[derive(Debug, Clone)]
pub struct FileContext<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    /// Library or dev code.
    pub kind: FileKind,
    /// Exact relative paths allowed to call `Instant::now`/`SystemTime::now`
    /// (the telemetry wall-clock quarantine).
    pub wall_clock_allow: &'a [String],
    /// Relative-path prefixes allowed to use `Ordering::Relaxed`.
    pub relaxed_allow: &'a [String],
}

/// Macro names whose invocation panics (checked with a trailing `!`).
/// `debug_assert*` is deliberately absent: it is compiled out of the
/// release builds that produce artifacts.
pub(crate) const PANIC_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

/// Methods whose call panics (checked as `.name(`).
pub(crate) const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Deprecated panicking constructors: `Type::method` call paths.
const DEPRECATED_CTORS: &[(&str, &str)] = &[("GenerousTft", "new"), ("HillClimb", "new")];

/// Runs every code rule over one file's source.
#[must_use]
pub fn check_source(ctx: &FileContext<'_>, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let tokens = &lexed.tokens;
    let mut findings = Vec::new();

    let snippet = |line: u32| -> String {
        let text = lines.get(line as usize - 1).map_or("", |l| l.trim());
        let mut s: String = text.chars().take(96).collect();
        if text.chars().count() > 96 {
            s.push('…');
        }
        s
    };
    let mut push = |rule: &'static str, line: u32, message: String| {
        findings.push(Finding {
            rule,
            path: ctx.rel_path.to_string(),
            line,
            message,
            snippet: snippet(line),
            waived: false,
            reason: None,
            witness: Vec::new(),
        });
    };

    let wall_clock_quarantined = ctx.wall_clock_allow.iter().any(|p| p == ctx.rel_path);
    let relaxed_allowed = ctx.relaxed_allow.iter().any(|p| ctx.rel_path.starts_with(p.as_str()));
    let is_dev = ctx.kind == FileKind::Dev;

    // --- test-region tracking ---------------------------------------------
    let mut brace_depth: i64 = 0;
    let mut test_regions: Vec<i64> = Vec::new(); // brace depths of open test bodies
    let mut pending_test = false; // saw a test-gating attribute, body not yet entered
    let mut file_is_test = false; // inner `#![cfg(test)]`

    let ident = |idx: usize| -> Option<&str> {
        match tokens.get(idx).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct = |idx: usize, c: char| -> bool {
        matches!(tokens.get(idx).map(|t| &t.kind), Some(TokenKind::Punct(p)) if *p == c)
    };

    let mut i = 0usize;
    while i < tokens.len() {
        let line = tokens[i].line;
        match &tokens[i].kind {
            TokenKind::Punct('#') => {
                // Attribute: `#[…]` or inner `#![…]`; collect its idents.
                let mut j = i + 1;
                let inner = punct(j, '!');
                if inner {
                    j += 1;
                }
                if punct(j, '[') {
                    let mut depth = 1i64;
                    j += 1;
                    let mut ids: Vec<&str> = Vec::new();
                    while j < tokens.len() && depth > 0 {
                        match &tokens[j].kind {
                            TokenKind::Punct('[') => depth += 1,
                            TokenKind::Punct(']') => depth -= 1,
                            TokenKind::Ident(s) => ids.push(s.as_str()),
                            _ => {}
                        }
                        j += 1;
                    }
                    let gating = (ids.first() == Some(&"cfg")
                        && ids.contains(&"test")
                        && !ids.contains(&"not"))
                        || ids == ["test"];
                    if gating {
                        if inner {
                            file_is_test = true;
                        } else {
                            pending_test = true;
                        }
                    }
                    i = j;
                    continue;
                }
            }
            TokenKind::Punct('{') => {
                brace_depth += 1;
                if pending_test {
                    test_regions.push(brace_depth);
                    pending_test = false;
                }
            }
            TokenKind::Punct('}') => {
                if test_regions.last() == Some(&brace_depth) {
                    test_regions.pop();
                }
                brace_depth -= 1;
            }
            TokenKind::Punct(';') => {
                // `#[cfg(test)] use …;` — a body-less test item ends here.
                pending_test = false;
            }
            _ => {}
        }
        let in_test = file_is_test || pending_test || !test_regions.is_empty();

        // --- deprecated constructors: everywhere, tests included ----------
        if let Some(head) = ident(i) {
            for (ty, method) in DEPRECATED_CTORS {
                if head == *ty
                    && punct(i + 1, ':')
                    && punct(i + 2, ':')
                    && ident(i + 3) == Some(method)
                {
                    push(
                        RULE_DEPRECATED,
                        line,
                        format!(
                            "`{ty}::{method}` is a deprecated panicking constructor; \
                             call `{ty}::try_new` and handle the error"
                        ),
                    );
                }
            }
        }

        if is_dev || in_test {
            i += 1;
            continue;
        }

        // --- determinism: hash containers ---------------------------------
        if let Some(name) = ident(i) {
            if name == "HashMap" || name == "HashSet" {
                push(
                    RULE_HASH,
                    line,
                    format!(
                        "`{name}` iteration order is nondeterministic; use `BTreeMap`/\
                         `BTreeSet` or waive with proof the order never reaches an artifact"
                    ),
                );
            }
            // --- determinism: wall clock ----------------------------------
            if (name == "Instant" || name == "SystemTime")
                && punct(i + 1, ':')
                && punct(i + 2, ':')
                && ident(i + 3) == Some("now")
                && !wall_clock_quarantined
            {
                push(
                    RULE_WALL_CLOCK,
                    line,
                    format!(
                        "`{name}::now` outside the telemetry timings quarantine breaks \
                         byte-for-byte artifact determinism"
                    ),
                );
            }
            // --- determinism: entropy-seeded RNG --------------------------
            if name == "thread_rng" || name == "from_entropy" {
                push(
                    RULE_ENTROPY,
                    line,
                    format!(
                        "`{name}` draws OS entropy; all randomness must come from a \
                         seeded ChaCha8 stream (see `faults::rng::derive_seed`)"
                    ),
                );
            }
            // --- api discipline: relaxed atomics --------------------------
            if name == "Ordering"
                && punct(i + 1, ':')
                && punct(i + 2, ':')
                && ident(i + 3) == Some("Relaxed")
                && !relaxed_allowed
            {
                push(
                    RULE_RELAXED,
                    line,
                    "`Ordering::Relaxed` outside the telemetry allowlist; use a stronger \
                     ordering or waive with proof the value never reaches an artifact"
                        .to_string(),
                );
            }
        }

        // --- panic policy --------------------------------------------------
        let panic_hit: Option<String> = match ident(i) {
            Some(name) if PANIC_MACROS.contains(&name) && punct(i + 1, '!') => {
                Some(format!("{name}!"))
            }
            Some(name)
                if PANIC_METHODS.contains(&name) && i > 0 && punct(i - 1, '.') && punct(i + 1, '(') =>
            {
                Some(format!(".{name}()"))
            }
            _ => None,
        };
        if let Some(what) = panic_hit {
            let marker = lexed
                .panic_markers
                .get(&line)
                .or_else(|| line.checked_sub(1).and_then(|l| lexed.panic_markers.get(&l)));
            match marker {
                None => push(
                    RULE_PANIC,
                    line,
                    format!(
                        "`{what}` in non-test library code without a `// PANIC-POLICY:` \
                         contract marker (DESIGN.md §12); return a `Result` or document \
                         the programmer-error contract"
                    ),
                ),
                Some(rationale) if rationale.is_empty() => push(
                    RULE_EMPTY_MARKER,
                    line,
                    format!("`{what}` carries a `// PANIC-POLICY:` marker with no rationale"),
                ),
                Some(_) => {}
            }
        }

        i += 1;
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx<'a>() -> FileContext<'a> {
        FileContext {
            rel_path: "crates/x/src/lib.rs",
            kind: FileKind::Library,
            wall_clock_allow: &[],
            relaxed_allow: &[],
        }
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "
            pub fn f() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let _ = HashMap::<u32, u32>::new(); assert!(true); }
            }
        ";
        assert!(check_source(&lib_ctx(), src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn f() { let x: Option<u32> = None; x.unwrap(); }\n";
        assert_eq!(rules_of(&check_source(&lib_ctx(), src)), vec![RULE_PANIC]);
    }

    #[test]
    fn marker_on_same_or_previous_line_exempts() {
        let src = "
            fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap(); // PANIC-POLICY: caller guarantees Some
                // PANIC-POLICY: second call shares the contract
                let b = x.unwrap();
                a + b
            }
        ";
        assert!(check_source(&lib_ctx(), src).is_empty());
    }

    #[test]
    fn empty_marker_is_reported() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // PANIC-POLICY:\n";
        assert_eq!(rules_of(&check_source(&lib_ctx(), src)), vec![RULE_EMPTY_MARKER]);
    }

    #[test]
    fn unwrap_or_variants_do_not_trigger() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }\n";
        assert!(check_source(&lib_ctx(), src).is_empty());
    }

    #[test]
    fn deprecated_ctor_fires_even_in_tests() {
        let src = "
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let _ = GenerousTft::new(100, 2, 0.9); }
            }
        ";
        assert_eq!(rules_of(&check_source(&lib_ctx(), src)), vec![RULE_DEPRECATED]);
    }

    #[test]
    fn try_new_is_fine() {
        let src = "fn f() { let _ = GenerousTft::try_new(100, 2, 0.9); }\n";
        assert!(check_source(&lib_ctx(), src).is_empty());
    }

    #[test]
    fn wall_clock_quarantine_and_relaxed_allowlist() {
        let src = "fn f() { let _ = Instant::now(); ENABLED.load(Ordering::Relaxed); }\n";
        let allowed = FileContext {
            rel_path: "crates/telemetry/src/global.rs",
            kind: FileKind::Library,
            wall_clock_allow: &["crates/telemetry/src/global.rs".to_string()],
            relaxed_allow: &["crates/telemetry/src/".to_string()],
        };
        assert!(check_source(&allowed, src).is_empty());
        let denied = lib_ctx();
        assert_eq!(
            rules_of(&check_source(&denied, src)),
            vec![RULE_WALL_CLOCK, RULE_RELAXED]
        );
    }

    #[test]
    fn dev_files_only_get_deprecated_rule() {
        let src = "fn main() { let _ = Instant::now(); let _ = HillClimb::new(1, 1); }\n";
        let ctx = FileContext {
            rel_path: "crates/x/tests/it.rs",
            kind: FileKind::Dev,
            wall_clock_allow: &[],
            relaxed_allow: &[],
        };
        assert_eq!(rules_of(&check_source(&ctx, src)), vec![RULE_DEPRECATED]);
    }

    #[test]
    fn entropy_rng_flagged_outside_tests() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        assert_eq!(rules_of(&check_source(&lib_ctx(), src)), vec![RULE_ENTROPY]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "
            /// Docs mentioning HashMap, Instant::now() and .unwrap().
            fn f() -> &'static str { \"HashMap thread_rng panic!\" }
        ";
        assert!(check_source(&lib_ctx(), src).is_empty());
    }

    #[test]
    fn findings_carry_location_and_snippet() {
        let src = "fn f() {\n    let m = std::collections::HashMap::<u32, u32>::new();\n}\n";
        let f = &check_source(&lib_ctx(), src)[0];
        assert_eq!((f.rule, f.line), (RULE_HASH, 2));
        assert!(f.snippet.contains("HashMap"));
        assert_eq!(f.path, "crates/x/src/lib.rs");
    }
}
