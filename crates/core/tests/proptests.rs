//! Property-based tests of the game layer: the paper's ordering lemmas on
//! random profiles, TFT dynamics, and deviation pricing.

use macgame_core::deviation::shortsighted_deviation;
use macgame_core::edca::{edca_cheating_gain, EdcaAxis, EdcaStageMemo};
use macgame_core::generalized::FiniteGame;
use macgame_core::population::{replicator, PopulationState};
use macgame_core::tournament::TournamentResult;
use macgame_core::ratecontrol::{rate_game, rate_set_80211b, RateMbps};
use macgame_core::evaluator::AnalyticalEvaluator;
use macgame_core::history::{History, StageRecord};
use macgame_core::lemmas::{lemma4_report, verify_lemma1};
use macgame_core::strategy::{GenerousTft, Strategy, Tft};
use macgame_core::{GameConfig, RepeatedGame};
use proptest::prelude::*;

fn game(n: usize) -> GameConfig {
    GameConfig::builder(n).build().unwrap()
}

fn record(observed: Vec<u32>) -> StageRecord {
    let n = observed.len();
    StageRecord { windows: observed.clone(), observed, utilities: vec![0.0; n] }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lemma1_holds_on_random_profiles(
        windows in prop::collection::vec(1u32..1024, 2..7),
    ) {
        let g = game(windows.len());
        let verdict = verify_lemma1(&g, &windows).unwrap();
        prop_assert!(verdict.is_ok(), "violation {:?}", verdict.unwrap_err());
    }

    #[test]
    fn lemma4_ordering_on_random_deviations(
        w_k in 4u32..512,
        frac in 0.1f64..3.0,
        n in 3usize..8,
    ) {
        let w_dev = ((f64::from(w_k) * frac) as u32).max(1);
        let g = game(n);
        let report = lemma4_report(&g, w_k, w_dev).unwrap();
        prop_assert!(report.ordered(w_dev, w_k), "w_k={w_k} w_dev={w_dev}: {report:?}");
    }

    #[test]
    fn tft_matches_min_of_any_observation(
        observed in prop::collection::vec(1u32..4096, 2..8),
    ) {
        let g = game(observed.len());
        let mut tft = Tft::new(64);
        let mut h = History::new();
        let min = *observed.iter().min().unwrap();
        h.push(record(observed));
        prop_assert_eq!(tft.next_window(0, &g, &h).unwrap(), min.clamp(1, g.w_max()));
    }

    #[test]
    fn gtft_never_fires_on_uniform_play(
        w in 1u32..4096,
        r0 in 1usize..6,
        beta in 0.5f64..1.0,
        stages in 1usize..6,
    ) {
        let g = game(3);
        let mut gtft = GenerousTft::try_new(w, r0, beta).unwrap();
        let mut h = History::new();
        for _ in 0..stages {
            h.push(record(vec![w.clamp(1, g.w_max()); 3]));
        }
        prop_assert_eq!(gtft.next_window(0, &g, &h).unwrap(), w.clamp(1, g.w_max()));
    }

    #[test]
    fn tft_play_converges_to_min_initial(
        initials in prop::collection::vec(2u32..512, 2..6),
    ) {
        let g = game(initials.len());
        let players: Vec<Box<dyn Strategy>> =
            initials.iter().map(|&w| Box::new(Tft::new(w)) as Box<dyn Strategy>).collect();
        let evaluator = Box::new(AnalyticalEvaluator::new(g.clone()));
        let mut rg = RepeatedGame::new(g, players, evaluator).unwrap();
        rg.play(3).unwrap();
        let expect = *initials.iter().min().unwrap();
        prop_assert_eq!(rg.history().converged_window(), Some(expect));
        prop_assert!(rg.history().convergence_stage().unwrap() <= 1);
    }

    #[test]
    fn deviation_gain_monotone_in_reaction_lag(
        n in 3usize..8,
        delta in 0.1f64..0.95,
    ) {
        let g = game(n);
        let ne = macgame_core::equilibrium::efficient_ne(&g).unwrap();
        let w_s = (ne.window / 2).max(1);
        let fast = shortsighted_deviation(&g, ne.window, w_s, 1, delta).unwrap();
        let slow = shortsighted_deviation(&g, ne.window, w_s, 4, delta).unwrap();
        prop_assert!(slow.deviant_payoff >= fast.deviant_payoff - 1e-9);
    }

    #[test]
    fn discounted_history_bounded_by_undiscounted(
        utilities in prop::collection::vec(0.0f64..100.0, 1..20),
        delta in 0.0f64..0.999,
    ) {
        let mut h = History::new();
        for &u in &utilities {
            h.push(StageRecord { windows: vec![8], observed: vec![8], utilities: vec![u] });
        }
        let disc = h.discounted_utility(0, delta);
        let plain: f64 = utilities.iter().sum();
        prop_assert!(disc <= plain + 1e-9);
        prop_assert!(disc >= utilities[0] - 1e-9);
    }

    #[test]
    fn br_dynamics_fixed_points_are_nash(
        payoffs in prop::collection::vec(0.0f64..10.0, 16),
        start in prop::collection::vec(0usize..4, 2),
    ) {
        // Random 2-player 4-action game from a shared payoff table.
        let table = payoffs.clone();
        let g = FiniteGame::new(2, vec![0u8, 1, 2, 3], move |i, p| {
            let (me, other) = (p[i], p[1 - i]);
            table[me * 4 + other]
        })
        .unwrap();
        let out = g.best_response_dynamics(&start, 50);
        if out.converged {
            prop_assert!(g.is_pure_nash(&out.profile));
        }
    }

    #[test]
    fn rate_game_fast_is_always_best_response(
        n in 2usize..8,
        w in 8u32..256,
        profile_seed in 0usize..1000,
    ) {
        let params = macgame_dcf::DcfParams::builder()
            .access_mode(macgame_dcf::AccessMode::RtsCts)
            .build()
            .unwrap();
        let g = rate_game(
            n,
            w,
            &params,
            &macgame_dcf::UtilityParams::default(),
            rate_set_80211b(),
        )
        .unwrap();
        let profile: Vec<usize> = (0..n).map(|i| (profile_seed + i) % 4).collect();
        for i in 0..n {
            prop_assert_eq!(g.best_response(i, &profile), 3, "profile {:?}", profile);
        }
    }

    #[test]
    fn rate_utilities_increase_with_any_speedup(
        n in 2usize..6,
        w in 8u32..128,
        who in 0usize..6,
    ) {
        let who = who % n;
        let params = macgame_dcf::DcfParams::builder()
            .access_mode(macgame_dcf::AccessMode::RtsCts)
            .build()
            .unwrap();
        let g = rate_game(
            n,
            w,
            &params,
            &macgame_dcf::UtilityParams::default(),
            vec![RateMbps(1.0), RateMbps(11.0)],
        )
        .unwrap();
        // Upgrading any single node from slow to fast raises *everyone's*
        // utility (pure positive externality).
        let slow = vec![0usize; n];
        let mut upgraded = slow.clone();
        upgraded[who] = 1;
        for i in 0..n {
            prop_assert!(g.utility_of(i, &upgraded) > g.utility_of(i, &slow));
        }
    }

    #[test]
    fn replicator_preserves_the_simplex(
        scores in prop::collection::vec(0.1f64..100.0, 9),
        generations in 1usize..100,
    ) {
        let t = TournamentResult {
            names: vec!["a".into(), "b".into(), "c".into()],
            scores: scores.chunks(3).map(<[f64]>::to_vec).collect(),
            stages: 1,
        };
        let trace = replicator(&t, &PopulationState::uniform(3), generations).unwrap();
        for state in &trace.generations {
            let total: f64 = state.shares.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(state.shares.iter().all(|&s| (0.0..=1.0 + 1e-12).contains(&s)));
        }
    }

    #[test]
    fn replicator_eliminates_strictly_dominated_strategies(
        base in prop::collection::vec(1.0f64..50.0, 4),
        margin in 0.5f64..10.0,
    ) {
        // Row 1 = row 0 + margin entrywise: strategy 0 is strictly
        // dominated and must shrink.
        let t = TournamentResult {
            names: vec!["dominated".into(), "dominant".into()],
            scores: vec![
                vec![base[0], base[1]],
                vec![base[0] + margin, base[1] + margin],
            ],
            stages: 1,
        };
        let trace = replicator(&t, &PopulationState::uniform(2), 300).unwrap();
        prop_assert!(trace.final_state().share(0) < 0.5);
        prop_assert_eq!(trace.final_state().dominant(), 1);
    }
}

/// Cheating gain of the deviation that moves `axis` to `value`, the crowd
/// pinned on `sym`.
fn knob_gain(
    g: &GameConfig,
    sym: macgame_dcf::EdcaTuple,
    axis: EdcaAxis,
    value: u32,
    memo: &mut EdcaStageMemo,
) -> f64 {
    edca_cheating_gain(g, sym, axis.apply(sym, value), memo).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The Banchs selfishness direction, property-checked: moving any
    // single knob further selfish-ward (lower CWmin, lower AIFS, higher
    // TXOP) never *decreases* the deviator's cheating gain. Domains stay
    // in the paper's moderate-congestion regime (small n, crowd windows
    // well above the efficient scale) where stage rates are positive.

    #[test]
    fn edca_gain_monotone_in_cw_min(
        n in 3usize..7,
        w_sym in 32u32..200,
        lo in 8u32..128,
        step in 1u32..128,
    ) {
        let g = game(n);
        let m = g.params().max_backoff_stage();
        let sym = macgame_dcf::EdcaTuple::new(w_sym, m, 1, 1).unwrap();
        let mut memo = EdcaStageMemo::new();
        let g_lo = knob_gain(&g, sym, EdcaAxis::CwMin, lo, &mut memo);
        let g_hi = knob_gain(&g, sym, EdcaAxis::CwMin, lo + step, &mut memo);
        prop_assert!(
            g_lo >= g_hi - 1e-9,
            "CWmin {lo} gains {g_lo} < CWmin {} gains {g_hi}", lo + step
        );
    }

    #[test]
    fn edca_gain_monotone_in_aifs(
        n in 3usize..7,
        w_sym in 32u32..200,
        sym_aifs in 0u32..3,
        a_lo in 0u32..5,
        extra in 1u32..4,
    ) {
        let g = game(n);
        let m = g.params().max_backoff_stage();
        let sym = macgame_dcf::EdcaTuple::new(w_sym, m, sym_aifs, 1).unwrap();
        let mut memo = EdcaStageMemo::new();
        let g_lo = knob_gain(&g, sym, EdcaAxis::Aifs, a_lo, &mut memo);
        let g_hi = knob_gain(&g, sym, EdcaAxis::Aifs, a_lo + extra, &mut memo);
        prop_assert!(
            g_lo >= g_hi - 1e-9,
            "AIFS {a_lo} gains {g_lo} < AIFS {} gains {g_hi}", a_lo + extra
        );
    }

    #[test]
    fn edca_gain_monotone_in_txop(
        n in 3usize..7,
        w_sym in 32u32..200,
        k_lo in 1u32..9,
        extra in 1u32..8,
    ) {
        let g = game(n);
        let m = g.params().max_backoff_stage();
        let sym = macgame_dcf::EdcaTuple::new(w_sym, m, 1, 1).unwrap();
        let mut memo = EdcaStageMemo::new();
        let g_lo = knob_gain(&g, sym, EdcaAxis::Txop, k_lo, &mut memo);
        let g_hi = knob_gain(&g, sym, EdcaAxis::Txop, k_lo + extra, &mut memo);
        prop_assert!(
            g_hi >= g_lo - 1e-9,
            "TXOP {} gains {g_hi} < TXOP {k_lo} gains {g_lo}", k_lo + extra
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Wrapping any evaluator in a zero-rate observation channel changes
    /// nothing: utilities and observed windows are bitwise identical for
    /// arbitrary profiles.
    #[test]
    fn noop_observation_wrapper_is_identity(
        profile in prop::collection::vec(1u32..1024, 2..6),
    ) {
        use macgame_core::evaluator::{NoisyObservationEvaluator, StageEvaluator};
        use macgame_faults::ObservationFaults;
        let g = game(profile.len());
        let mut bare = AnalyticalEvaluator::new(g.clone());
        let mut wrapped = NoisyObservationEvaluator::new(
            AnalyticalEvaluator::new(g.clone()),
            ObservationFaults::noop(),
            profile.len(),
            g.w_max(),
        );
        let a = bare.evaluate(&profile).unwrap();
        let b = wrapped.evaluate(&profile).unwrap();
        prop_assert_eq!(a, b);
    }
}
