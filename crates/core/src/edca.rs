//! The stage game lifted to the EDCA product strategy space
//! `(CWmin, m, AIFS, TXOP)` — Banchs-style multi-knob selfishness.
//!
//! The paper's machinery fixes the strategy space to the initial
//! contention window; Banchs et al. (*Thwarting Selfish Behavior in
//! 802.11 WLANs*) show a cheater has four knobs, every one of which buys
//! throughput at the crowd's expense. This module prices that cheating:
//! per-stage utilities with one tuple deviator against a symmetric crowd
//! ([`edca_deviator_stage`]), multiplicative cheating gains per knob
//! ([`edca_axis_sweep`]), best-response search over an explicit tuple
//! lattice ([`edca_best_response`]), and the paper's Section V.D TFT
//! head/tail pricing re-run over the `(CWmin, TXOP)` plane
//! ([`edca_plane_ne`]).
//!
//! Every stage rate routes through one memoized class-level EDCA solve
//! ([`EdcaStageMemo`]): a deviator profile collapses to at most two
//! classes, so lattice and plane scans pay `O(k)` per distinct profile
//! regardless of the player count.

use std::collections::HashMap;

use macgame_dcf::fixedpoint::SolveOptions;
use macgame_dcf::{edca_utilities, solve_edca, EdcaProfile, EdcaTuple};
use serde::{Deserialize, Serialize};

use crate::deviation::DeviatorStage;
use crate::error::GameError;
use crate::game::GameConfig;

/// One knob of the EDCA tuple, for axis-wise sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdcaAxis {
    /// The initial contention window `CWmin` — selfish-ward is *down*.
    CwMin,
    /// The maximum backoff stage `m` — selfish-ward is *down* (a smaller
    /// cap keeps the window small after collisions).
    StageCap,
    /// The arbitration inter-frame space — selfish-ward is *down* (a
    /// smaller AIFS contends in more slots than the crowd).
    Aifs,
    /// The TXOP burst length — selfish-ward is *up* (more frames per won
    /// access).
    Txop,
}

impl EdcaAxis {
    /// `base` with this axis replaced by `value`, other knobs untouched.
    #[must_use]
    pub fn apply(self, base: EdcaTuple, value: u32) -> EdcaTuple {
        let mut tuple = base;
        match self {
            EdcaAxis::CwMin => tuple.cw_min = value,
            EdcaAxis::StageCap => tuple.stage_cap = value,
            EdcaAxis::Aifs => tuple.aifs = value,
            EdcaAxis::Txop => tuple.txop = value,
        }
        tuple
    }

    /// Stable lowercase name, used for artifact keys.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EdcaAxis::CwMin => "cw_min",
            EdcaAxis::StageCap => "stage_cap",
            EdcaAxis::Aifs => "aifs",
            EdcaAxis::Txop => "txop",
        }
    }
}

/// Memo of class-level EDCA stage solves keyed on the canonical tuple
/// profile: the product-space analog of [`crate::deviation::StageMemo`].
/// Lattice and plane scans revisit the same one-deviator profiles many
/// times; each distinct profile is solved exactly once.
#[derive(Debug, Default)]
pub struct EdcaStageMemo {
    rates: HashMap<EdcaProfile, Vec<f64>>,
    hits: u64,
    misses: u64,
}

impl EdcaStageMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Self {
        EdcaStageMemo::default()
    }

    /// Number of lookups answered from the memo.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that required a fresh solve.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Per-class stage utility rates (per µs) of `profile`, solved once
    /// and memoized.
    fn class_rates(
        &mut self,
        game: &GameConfig,
        profile: &EdcaProfile,
    ) -> Result<Vec<f64>, GameError> {
        if let Some(rates) = self.rates.get(profile) {
            self.hits += 1;
            return Ok(rates.clone());
        }
        self.misses += 1;
        let eq = solve_edca(profile, game.params(), SolveOptions::default())?;
        let rates = edca_utilities(profile, &eq, game.params(), game.utility());
        self.rates.insert(profile.clone(), rates.clone());
        Ok(rates)
    }
}

/// Stage utility rate (per µs) when all `n` players sit on `tuple` — the
/// product-space analog of [`crate::deviation::symmetric_stage`].
///
/// # Errors
///
/// Propagates solver and tuple-validation failures.
pub fn edca_symmetric_stage(
    game: &GameConfig,
    tuple: EdcaTuple,
    memo: &mut EdcaStageMemo,
) -> Result<f64, GameError> {
    let profile = EdcaProfile::new(vec![tuple], vec![game.player_count()])?;
    let rates = memo.class_rates(game, &profile)?;
    Ok(rates[0])
}

/// Stage utilities with one deviator on `dev` against `n − 1` players on
/// `sym` — the product-space analog of [`crate::deviation::deviator_stage`].
///
/// # Errors
///
/// Returns [`GameError::InvalidConfig`] for fewer than two players;
/// propagates solver and tuple-validation failures.
pub fn edca_deviator_stage(
    game: &GameConfig,
    sym: EdcaTuple,
    dev: EdcaTuple,
    memo: &mut EdcaStageMemo,
) -> Result<DeviatorStage, GameError> {
    let n = game.player_count();
    if n < 2 {
        return Err(GameError::InvalidConfig("deviation needs at least two players".into()));
    }
    if dev == sym {
        let rate = edca_symmetric_stage(game, sym, memo)?;
        return Ok(DeviatorStage { deviator: rate, compliant: rate });
    }
    let profile = EdcaProfile::new(vec![dev, sym], vec![1, n - 1])?;
    let rates = memo.class_rates(game, &profile)?;
    // Classes are in canonical tuple order; locate the deviator's class.
    let dev_class = profile
        .tuples()
        .iter()
        .position(|t| *t == dev)
        .ok_or_else(|| GameError::InvalidConfig("deviator tuple missing from profile".into()))?;
    Ok(DeviatorStage { deviator: rates[dev_class], compliant: rates[1 - dev_class] })
}

/// The Banchs-style multiplicative *cheating gain*: the deviator's stage
/// rate on `dev` divided by its rate when everyone (itself included)
/// complies with `sym`. A gain above 1 means the knob setting pays while
/// the crowd has not yet reacted.
///
/// # Errors
///
/// Returns [`GameError::InvalidConfig`] if the compliant baseline rate is
/// not strictly positive (the ratio would be meaningless); propagates
/// solver failures.
pub fn edca_cheating_gain(
    game: &GameConfig,
    sym: EdcaTuple,
    dev: EdcaTuple,
    memo: &mut EdcaStageMemo,
) -> Result<f64, GameError> {
    let baseline = edca_symmetric_stage(game, sym, memo)?;
    if baseline <= 0.0 {
        return Err(GameError::InvalidConfig(
            "cheating gain needs a positive compliant baseline".into(),
        ));
    }
    let during = edca_deviator_stage(game, sym, dev, memo)?;
    Ok(during.deviator / baseline)
}

/// One row of a per-knob cheating-gain sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdcaGainRow {
    /// The swept knob's value in this row.
    pub value: u32,
    /// The full deviator tuple (baseline with the knob replaced).
    pub deviator: EdcaTuple,
    /// Deviator's stage rate while the crowd still complies.
    pub deviator_rate: f64,
    /// Each compliant player's stage rate during the deviation.
    pub compliant_rate: f64,
    /// Multiplicative cheating gain vs the all-compliant baseline.
    pub gain: f64,
}

/// Sweeps one knob of the deviator's tuple over `values`, holding the
/// crowd at `sym` and the deviator's other knobs at `sym`'s — one slice
/// of the Banchs cheating-gain surface.
///
/// # Errors
///
/// Same conditions as [`edca_cheating_gain`].
pub fn edca_axis_sweep(
    game: &GameConfig,
    sym: EdcaTuple,
    axis: EdcaAxis,
    values: &[u32],
    memo: &mut EdcaStageMemo,
) -> Result<Vec<EdcaGainRow>, GameError> {
    let baseline = edca_symmetric_stage(game, sym, memo)?;
    if baseline <= 0.0 {
        return Err(GameError::InvalidConfig(
            "cheating gain needs a positive compliant baseline".into(),
        ));
    }
    values
        .iter()
        .map(|&value| {
            let deviator = axis.apply(sym, value);
            let during = edca_deviator_stage(game, sym, deviator, memo)?;
            Ok(EdcaGainRow {
                value,
                deviator,
                deviator_rate: during.deviator,
                compliant_rate: during.compliant,
                gain: during.deviator / baseline,
            })
        })
        .collect()
}

/// An explicit finite lattice of candidate tuples: the strategy space a
/// best-response search walks. Axes with a single value pin that knob.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdcaLattice {
    /// Candidate `CWmin` values.
    pub cw_mins: Vec<u32>,
    /// Candidate stage caps.
    pub stage_caps: Vec<u32>,
    /// Candidate AIFS values.
    pub aifs: Vec<u32>,
    /// Candidate TXOP burst lengths.
    pub txops: Vec<u32>,
}

impl EdcaLattice {
    /// All lattice points in deterministic nested order
    /// (`cw_min` outermost, `txop` innermost), validated.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidConfig`] when any axis is empty;
    /// propagates tuple-validation failures for out-of-range values.
    pub fn candidates(&self) -> Result<Vec<EdcaTuple>, GameError> {
        if self.cw_mins.is_empty()
            || self.stage_caps.is_empty()
            || self.aifs.is_empty()
            || self.txops.is_empty()
        {
            return Err(GameError::InvalidConfig("every lattice axis needs a value".into()));
        }
        let mut out =
            Vec::with_capacity(self.cw_mins.len() * self.stage_caps.len() * self.aifs.len());
        for &w in &self.cw_mins {
            for &m in &self.stage_caps {
                for &a in &self.aifs {
                    for &k in &self.txops {
                        out.push(EdcaTuple::new(w, m, a, k)?);
                    }
                }
            }
        }
        Ok(out)
    }
}

/// The best reply found by a lattice search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdcaBestResponse {
    /// The maximizing tuple (first maximizer in lattice order).
    pub tuple: EdcaTuple,
    /// Its stage rate against the compliant crowd.
    pub rate: f64,
    /// Its multiplicative cheating gain vs the all-compliant baseline.
    pub gain: f64,
}

/// Exhaustive best-response search over a tuple lattice: the deviator's
/// stage-rate argmax against a crowd pinned at `sym`. Ties resolve to the
/// first maximizer in lattice order (strict improvement required), so the
/// result is deterministic.
///
/// # Errors
///
/// Same conditions as [`edca_cheating_gain`] plus lattice validation.
pub fn edca_best_response(
    game: &GameConfig,
    sym: EdcaTuple,
    lattice: &EdcaLattice,
    memo: &mut EdcaStageMemo,
) -> Result<EdcaBestResponse, GameError> {
    let baseline = edca_symmetric_stage(game, sym, memo)?;
    if baseline <= 0.0 {
        return Err(GameError::InvalidConfig(
            "cheating gain needs a positive compliant baseline".into(),
        ));
    }
    let candidates = lattice.candidates()?;
    let mut best: Option<EdcaBestResponse> = None;
    for tuple in candidates {
        let during = edca_deviator_stage(game, sym, tuple, memo)?;
        let better = match &best {
            Some(b) => during.deviator > b.rate,
            None => true,
        };
        if better {
            best = Some(EdcaBestResponse {
                tuple,
                rate: during.deviator,
                gain: during.deviator / baseline,
            });
        }
    }
    // PANIC-POLICY: candidates() rejects empty axes — the search space is non-empty.
    Ok(best.expect("non-empty lattice always has a maximizer"))
}

/// The efficient symmetric window at TXOP burst length `txop` — the
/// product-space analog of [`crate::equilibrium::efficient_ne`], holding
/// AIFS at 0 and the stage cap at the protocol default. Returns the
/// maximizing window and the per-node stage utility rate (per µs) there.
///
/// Uses the same exponential-bracket / ternary-cut / local-sweep search as
/// the scalar optimizer: the symmetric utility is unimodal in `W` for any
/// fixed burst length (the burst only rescales the success term).
///
/// # Errors
///
/// Returns [`GameError::InvalidConfig`] for an out-of-range burst length
/// (via tuple validation); propagates solver failures.
pub fn edca_wc_star(
    game: &GameConfig,
    txop: u32,
    memo: &mut EdcaStageMemo,
) -> Result<(u32, f64), GameError> {
    let m = game.params().max_backoff_stage();
    let w_max = game.w_max();
    let u_at = |w: u32, memo: &mut EdcaStageMemo| -> Result<f64, GameError> {
        edca_symmetric_stage(game, EdcaTuple::new(w, m, 0, txop)?, memo)
    };
    if game.player_count() < 2 {
        // A lone node maximizes by transmitting as often as possible.
        let u = u_at(1, memo)?;
        return Ok((1, u));
    }
    // Exponential bracketing: find where the utility stops improving.
    let mut hi = 2u32;
    let mut prev = u_at(1, memo)?;
    while hi <= w_max {
        let cur = u_at(hi, memo)?;
        if cur < prev {
            break;
        }
        prev = cur;
        hi = hi.saturating_mul(2);
    }
    let mut hi = hi.min(w_max);
    let mut lo = 1u32;
    while hi - lo > 8 {
        let m1 = lo + (hi - lo) / 3;
        let m2 = hi - (hi - lo) / 3;
        if u_at(m1, memo)? < u_at(m2, memo)? {
            lo = m1 + 1;
        } else {
            hi = m2 - 1;
        }
    }
    // Final local sweep (widened to tolerate near-flat tops).
    let sweep_lo = lo.saturating_sub(8).max(1);
    let sweep_hi = (hi + 8).min(w_max);
    let mut best = (sweep_lo, f64::NEG_INFINITY);
    for w in sweep_lo..=sweep_hi {
        let u = u_at(w, memo)?;
        if u > best.1 {
            best = (w, u);
        }
    }
    Ok(best)
}

/// One cell of the `(CWmin, TXOP)` TFT-priced deviation plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdcaPlaneCell {
    /// The deviator's `CWmin` in this cell.
    pub cw_min: u32,
    /// The deviator's TXOP burst length in this cell.
    pub txop: u32,
    /// Deviator's total discounted payoff under the deviation.
    pub deviant_payoff: f64,
    /// Deviator's total discounted payoff had it complied with `sym`.
    pub compliant_payoff: f64,
    /// Whether deviating strictly beats complying.
    pub profitable: bool,
}

/// Prices the Section V.D short-sighted deviation over a `(CWmin, TXOP)`
/// grid of deviant tuples: the deviator plays the cell's tuple for
/// `reaction_stages` stages, after which the TFT crowd retaliates by
/// matching it (exactly the scalar model's punishment, lifted to the
/// plane), discounting at `delta_s`:
///
/// ```text
/// U_s = (1 − δ_s^r)/(1 − δ_s) · u_s(dev | crowd at sym)
///     +        δ_s^r/(1 − δ_s) · u_s(dev | crowd at dev)
/// ```
///
/// versus `U_s⁰ = u(sym)/(1 − δ_s)` for compliance. The grid row/column
/// order follows `cw_mins` × `txops`, so the output is deterministic.
///
/// # Errors
///
/// Returns [`GameError::InvalidConfig`] for a zero reaction lag, an
/// out-of-range discount, or an empty grid axis; propagates solver and
/// tuple-validation failures.
#[allow(clippy::too_many_arguments)]
pub fn edca_plane_ne(
    game: &GameConfig,
    sym: EdcaTuple,
    cw_mins: &[u32],
    txops: &[u32],
    reaction_stages: u32,
    delta_s: f64,
    memo: &mut EdcaStageMemo,
) -> Result<Vec<EdcaPlaneCell>, GameError> {
    if reaction_stages == 0 {
        return Err(GameError::InvalidConfig("TFT reaction takes at least one stage".into()));
    }
    if !(0.0..1.0).contains(&delta_s) {
        return Err(GameError::InvalidConfig("deviator discount must be in [0, 1)".into()));
    }
    if cw_mins.is_empty() || txops.is_empty() {
        return Err(GameError::InvalidConfig("the deviation plane needs both axes".into()));
    }
    let t = game.stage_duration().value();
    let m = i32::try_from(reaction_stages)
        .map_err(|_| GameError::InvalidConfig("reaction lag out of range".into()))?;
    let head = (1.0 - delta_s.powi(m)) / (1.0 - delta_s);
    let tail = delta_s.powi(m) / (1.0 - delta_s);
    let at_star = edca_symmetric_stage(game, sym, memo)?;
    let compliant_payoff = t * at_star / (1.0 - delta_s);
    let mut cells = Vec::with_capacity(cw_mins.len() * txops.len());
    for &w in cw_mins {
        for &k in txops {
            let dev = EdcaTuple::new(w, sym.stage_cap, sym.aifs, k)?;
            let during = edca_deviator_stage(game, sym, dev, memo)?;
            let after = edca_symmetric_stage(game, dev, memo)?;
            let deviant_payoff = t * (head * during.deviator + tail * after);
            cells.push(EdcaPlaneCell {
                cw_min: w,
                txop: k,
                deviant_payoff,
                compliant_payoff,
                profitable: deviant_payoff > compliant_payoff,
            });
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deviation::{deviator_stage, symmetric_stage};

    fn game(n: usize) -> GameConfig {
        GameConfig::builder(n).build().unwrap()
    }

    fn legacy(w: u32, game: &GameConfig) -> EdcaTuple {
        EdcaTuple::legacy(w, game.params()).unwrap()
    }

    fn rel(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(1e-12)
    }

    #[test]
    fn degenerate_stages_match_the_scalar_stage_game() {
        let g = game(5);
        let mut memo = EdcaStageMemo::new();
        let sym = legacy(76, &g);
        let dev = legacy(20, &g);
        let edca_sym = edca_symmetric_stage(&g, sym, &mut memo).unwrap();
        let scalar_sym = symmetric_stage(&g, 76).unwrap();
        assert!(rel(edca_sym, scalar_sym) < 1e-9, "{edca_sym} vs {scalar_sym}");
        let edca_dev = edca_deviator_stage(&g, sym, dev, &mut memo).unwrap();
        let scalar_dev = deviator_stage(&g, 76, 20).unwrap();
        assert!(rel(edca_dev.deviator, scalar_dev.deviator) < 1e-9);
        assert!(rel(edca_dev.compliant, scalar_dev.compliant) < 1e-9);
    }

    #[test]
    fn every_knob_pays_selfish_ward() {
        let g = game(5);
        let mut memo = EdcaStageMemo::new();
        let sym = EdcaTuple::new(76, g.params().max_backoff_stage(), 1, 1).unwrap();
        // Lower CWmin, lower AIFS, higher TXOP: each alone must gain.
        let cw = edca_cheating_gain(&g, sym, EdcaAxis::CwMin.apply(sym, 16), &mut memo).unwrap();
        assert!(cw > 1.0, "CWmin gain {cw}");
        let aifs = edca_cheating_gain(&g, sym, EdcaAxis::Aifs.apply(sym, 0), &mut memo).unwrap();
        assert!(aifs > 1.0, "AIFS gain {aifs}");
        let txop = edca_cheating_gain(&g, sym, EdcaAxis::Txop.apply(sym, 8), &mut memo).unwrap();
        assert!(txop > 1.0, "TXOP gain {txop}");
        // And the no-op deviation gains exactly 1.
        let noop = edca_cheating_gain(&g, sym, sym, &mut memo).unwrap();
        assert!((noop - 1.0).abs() < 1e-12);
    }

    #[test]
    fn axis_sweep_rows_are_consistent() {
        let g = game(5);
        let mut memo = EdcaStageMemo::new();
        let sym = legacy(76, &g);
        let rows = edca_axis_sweep(&g, sym, EdcaAxis::Txop, &[1, 2, 4, 8], &mut memo).unwrap();
        assert_eq!(rows.len(), 4);
        for pair in rows.windows(2) {
            assert!(
                pair[1].gain >= pair[0].gain - 1e-12,
                "TXOP gain must not fall: {} then {}",
                pair[0].gain,
                pair[1].gain
            );
        }
        assert!((rows[0].gain - 1.0).abs() < 1e-9, "TXOP = 1 is the baseline");
        // The deviator's burst also helps the crowd a little less than it
        // helps the deviator.
        assert!(rows[3].deviator_rate > rows[3].compliant_rate);
    }

    #[test]
    fn memo_deduplicates_profiles() {
        let g = game(5);
        let mut memo = EdcaStageMemo::new();
        let sym = legacy(76, &g);
        let dev = legacy(20, &g);
        edca_deviator_stage(&g, sym, dev, &mut memo).unwrap();
        let misses = memo.misses();
        edca_deviator_stage(&g, sym, dev, &mut memo).unwrap();
        edca_cheating_gain(&g, sym, dev, &mut memo).unwrap();
        assert_eq!(memo.misses(), misses + 1, "only the symmetric baseline is new");
        assert!(memo.hits() >= 2);
    }

    #[test]
    fn best_response_picks_the_most_selfish_corner() {
        let g = game(5);
        let mut memo = EdcaStageMemo::new();
        let m = g.params().max_backoff_stage();
        let sym = EdcaTuple::new(76, m, 1, 1).unwrap();
        let lattice = EdcaLattice {
            cw_mins: vec![16, 76],
            stage_caps: vec![m],
            aifs: vec![0, 1],
            txops: vec![1, 4],
        };
        let br = edca_best_response(&g, sym, &lattice, &mut memo).unwrap();
        assert_eq!(br.tuple, EdcaTuple::new(16, m, 0, 4).unwrap());
        assert!(br.gain > 1.0);
        // Solves are shared across the 8 candidates and the baseline.
        assert!(memo.misses() <= 9);
    }

    #[test]
    fn plane_ne_prices_patience_like_the_scalar_model() {
        let g = game(5);
        let mut memo = EdcaStageMemo::new();
        let sym = legacy(79, &g);
        let cw_mins = [20u32, 79];
        let txops = [1u32, 4];
        // A fully myopic deviator profits somewhere on the plane…
        let myopic =
            edca_plane_ne(&g, sym, &cw_mins, &txops, 1, 0.0, &mut memo).unwrap();
        assert_eq!(myopic.len(), 4);
        assert!(myopic.iter().any(|c| c.profitable), "myopic cheating must pay");
        // …a long-sighted one does not (TFT retaliation eats the gain on
        // the CW axis, and matching bursts keep TXOP from strictly
        // helping a patient deviator).
        let patient =
            edca_plane_ne(&g, sym, &[20], &[1], 1, 0.999, &mut memo).unwrap();
        assert!(!patient[0].profitable, "patient CW undercut must not pay");
        // The compliant corner (sym itself) never strictly profits.
        let corner = myopic.iter().find(|c| c.cw_min == 79 && c.txop == 1).unwrap();
        assert!(!corner.profitable);
    }

    #[test]
    fn wc_star_search_matches_scalar_and_improves_with_bursts() {
        let g = game(5);
        let mut memo = EdcaStageMemo::new();
        let (w1, u1) = edca_wc_star(&g, 1, &mut memo).unwrap();
        let scalar = crate::equilibrium::efficient_ne(&g).unwrap();
        // Class-level and dense utilities agree to solver tolerance, so on
        // the near-flat top the argmax can land a step or two away.
        assert!(
            (i64::from(w1) - i64::from(scalar.window)).abs() <= 2,
            "edca {w1} vs scalar {}",
            scalar.window
        );
        assert!(rel(u1, scalar.utility) < 1e-6);
        // Bursts amortize contention overhead: the crowd-optimal utility
        // strictly improves with TXOP.
        let (w4, u4) = edca_wc_star(&g, 4, &mut memo).unwrap();
        assert!(u4 > u1, "{u4} vs {u1}");
        assert!(w4 >= 1);
        assert!(edca_wc_star(&g, 0, &mut memo).is_err());
    }

    #[test]
    fn invalid_inputs_surface_errors() {
        let g = game(5);
        let mut memo = EdcaStageMemo::new();
        let sym = legacy(76, &g);
        assert!(edca_plane_ne(&g, sym, &[20], &[1], 0, 0.0, &mut memo).is_err());
        assert!(edca_plane_ne(&g, sym, &[20], &[1], 1, 1.0, &mut memo).is_err());
        assert!(edca_plane_ne(&g, sym, &[], &[1], 1, 0.0, &mut memo).is_err());
        let empty = EdcaLattice {
            cw_mins: vec![],
            stage_caps: vec![5],
            aifs: vec![0],
            txops: vec![1],
        };
        assert!(edca_best_response(&g, sym, &empty, &mut memo).is_err());
        let single = game(1);
        assert!(edca_deviator_stage(&single, sym, sym, &mut memo).is_err());
    }
}
