//! Bounded slot-event tracing.
//!
//! A [`Trace`] is a fixed-capacity ring buffer of per-slot events that an
//! engine driver can feed from [`crate::Engine::step`]'s outcomes. It
//! keeps the most recent `capacity` events, serializes to JSON via serde,
//! and renders a compact timeline for debugging ("what was the channel
//! doing right before the payoff dropped?").

use macgame_dcf::MicroSecs;
use serde::{Deserialize, Serialize};

use crate::engine::SlotOutcome;

/// One traced slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Slot index (engine-global).
    pub slot: u64,
    /// Channel time at the *start* of the slot.
    pub at: MicroSecs,
    /// What happened.
    pub outcome: SlotOutcome,
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    capacity: usize,
    events: Vec<TraceEvent>,
    /// Index of the logically-first event inside `events`.
    head: usize,
    /// Total events ever recorded (including evicted ones).
    recorded: u64,
}

impl Trace {
    /// Creates a trace keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        Trace { capacity, events: Vec::with_capacity(capacity), head: 0, recorded: 0 }
    }

    /// Capacity of the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded (≥ [`Self::len`]).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    /// Retained events, oldest first.
    #[must_use]
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Compact one-character-per-slot timeline of the retained window:
    /// `.` idle, digit = successful transmitter (mod 10), `X` collision,
    /// `E` injected channel error, `C` injected capture.
    #[must_use]
    pub fn timeline(&self) -> String {
        self.to_vec()
            .iter()
            .map(|e| match e.outcome {
                SlotOutcome::Idle => '.',
                SlotOutcome::Success { node } => {
                    char::from_digit((node % 10) as u32, 10).expect("mod 10 digit") // PANIC-POLICY: invariant: mod 10 digit
                }
                SlotOutcome::Collision { .. } => 'X',
                SlotOutcome::ChannelError { .. } => 'E',
                SlotOutcome::Capture { .. } => 'C',
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(slot: u64, outcome: SlotOutcome) -> TraceEvent {
        TraceEvent { slot, at: MicroSecs::new(slot as f64 * 50.0), outcome }
    }

    #[test]
    fn keeps_most_recent_events() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.record(ev(i, SlotOutcome::Idle));
        }
        let slots: Vec<u64> = t.to_vec().iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![2, 3, 4]);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn timeline_rendering() {
        let mut t = Trace::new(8);
        t.record(ev(0, SlotOutcome::Idle));
        t.record(ev(1, SlotOutcome::Success { node: 3 }));
        t.record(ev(2, SlotOutcome::Collision { transmitters: 2 }));
        t.record(ev(3, SlotOutcome::Success { node: 12 }));
        t.record(ev(4, SlotOutcome::ChannelError { node: 1 }));
        t.record(ev(5, SlotOutcome::Capture { winner: 0, transmitters: 3 }));
        assert_eq!(t.timeline(), ".3X2EC");
    }

    #[test]
    fn serde_round_trip() {
        let mut t = Trace::new(4);
        for i in 0..6 {
            t.record(ev(i, SlotOutcome::Success { node: i as usize }));
        }
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn integrates_with_engine() {
        use crate::{Engine, SimConfig};
        let config = SimConfig::builder().symmetric(3, 8).seed(9).build().unwrap();
        let mut engine = Engine::new(&config);
        let mut trace = Trace::new(64);
        for _ in 0..200 {
            let at = engine.clock();
            let slot = engine.total_slots();
            let outcome = engine.step();
            trace.record(TraceEvent { slot, at, outcome });
        }
        assert_eq!(trace.len(), 64);
        assert_eq!(trace.recorded(), 200);
        let line = trace.timeline();
        assert_eq!(line.chars().count(), 64);
        // A busy 3-node cell at W = 8 must show some successes.
        assert!(line.chars().any(|c| c.is_ascii_digit()), "timeline {line}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Trace::new(0);
    }

    #[test]
    fn capacity_one_ring_retains_only_the_latest() {
        let mut t = Trace::new(1);
        assert!(t.is_empty());
        for i in 0..10 {
            t.record(ev(i, SlotOutcome::Success { node: i as usize }));
            assert_eq!(t.len(), 1);
            assert_eq!(t.to_vec()[0].slot, i, "ring must hold exactly the latest event");
        }
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.timeline(), "9");
    }

    #[test]
    fn wraparound_stays_ordered_across_many_laps() {
        // Drive the head pointer through several full laps and check the
        // logical ordering after every single eviction.
        let mut t = Trace::new(4);
        for i in 0..23u64 {
            t.record(ev(i, SlotOutcome::Idle));
            let slots: Vec<u64> = t.to_vec().iter().map(|e| e.slot).collect();
            let expect: Vec<u64> = (i.saturating_sub(3)..=i).collect();
            assert_eq!(slots, expect, "after recording slot {i}");
        }
        assert_eq!(t.recorded(), 23);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn serde_round_trip_mid_wrap_preserves_ring_state() {
        // Serialize while the head is rotated (head ≠ 0) and keep recording
        // into the deserialized copy: eviction order must be unaffected.
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.record(ev(i, SlotOutcome::Collision { transmitters: 2 }));
        }
        let json = serde_json::to_string(&t).unwrap();
        let mut back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.recorded(), 5);
        back.record(ev(5, SlotOutcome::Idle));
        back.record(ev(6, SlotOutcome::Idle));
        let slots: Vec<u64> = back.to_vec().iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![4, 5, 6]);
        assert_eq!(back.recorded(), 7);
    }

    #[test]
    fn recorded_counts_evicted_events_and_len_saturates() {
        let mut t = Trace::new(5);
        for i in 0..3 {
            t.record(ev(i, SlotOutcome::Idle));
        }
        // Below capacity: every event is retained.
        assert_eq!((t.recorded(), t.len()), (3, 3));
        for i in 3..100 {
            t.record(ev(i, SlotOutcome::Idle));
        }
        // Above capacity: `recorded` keeps counting, `len` saturates.
        assert_eq!((t.recorded(), t.len()), (100, 5));
        assert!(t.recorded() >= t.len() as u64);
    }
}
