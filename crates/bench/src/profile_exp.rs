//! The `repro -- profile` experiment: run a deterministic cross-workspace
//! workload under the telemetry [`CollectingRecorder`] and snapshot every
//! counter, gauge, histogram, and span timing.
//!
//! The workload is anchored on the paper's Table II `n = 10` scenario and
//! exercises every instrumented layer: the `dcf` fixed-point solver and
//! sweep cache, the `core` evaluator/search/tournament machinery, the
//! `sim` slot engine and replica batches, and the `multihop` convergence
//! and spatial simulator paths.
//!
//! # Determinism
//!
//! Everything the workload records outside the `timings` section is
//! thread-count invariant: parallel phases either take the `threads` knob
//! explicitly or fan deterministic per-item work over `map_in_order`, and
//! the cache phases only present *distinct* canonical profiles to the
//! solve caches, so hit/miss counts cannot race. The regression tests in
//! `crates/bench/tests/profile_telemetry.rs` pin both properties.

use std::sync::{Arc, Mutex};

use macgame_core::equilibrium::{ne_interval, scan_ne_interval, DEFAULT_NE_EPSILON};
use macgame_core::evaluator::{AnalyticalEvaluator, CachingEvaluator, StageEvaluator};
use macgame_core::search::{run_search, AnalyticProbe};
use macgame_core::GameConfig;
use macgame_dcf::cache::SolveCache;
use macgame_dcf::fixedpoint::SolveOptions;
use macgame_dcf::optimal::efficient_cw;
use macgame_dcf::parallel::solve_sweep_cached;
use macgame_dcf::MicroSecs;
use macgame_multihop::convergence::check_multihop_ne;
use macgame_multihop::{
    local_optimal_windows, tft_converge, LocalRule, SpatialConfig, SpatialEngine, Topology,
};
use macgame_sim::{replicate_threads, SimConfig};
use macgame_telemetry::{self as telemetry, CollectingRecorder, Snapshot};

use crate::BenchError;

/// Tuning knobs for the profile workload.
#[derive(Debug, Clone, Copy)]
pub struct ProfileSettings {
    /// Shrink the simulation phases for CI-speed runs.
    pub quick: bool,
    /// Worker-thread knob passed to every phase that accepts one
    /// (`0` = the `MACGAME_THREADS` default).
    pub threads: usize,
}

impl ProfileSettings {
    /// Full-size workload on the default thread pool.
    #[must_use]
    pub fn full() -> Self {
        ProfileSettings { quick: false, threads: 0 }
    }

    /// CI-speed workload on the default thread pool.
    #[must_use]
    pub fn quick() -> Self {
        ProfileSettings { quick: true, threads: 0 }
    }
}

/// Serializes profile runs within one process: the telemetry facade is a
/// process-global, so concurrent runs (e.g. parallel `#[test]`s) would
/// pollute each other's snapshots.
static PROFILE_LOCK: Mutex<()> = Mutex::new(());

/// Runs the instrumented workload under a fresh [`CollectingRecorder`] and
/// returns its snapshot. The recorder is installed on entry and cleared
/// before returning (also on error).
///
/// # Errors
///
/// Propagates failures from any workload phase.
pub fn run_profile(settings: ProfileSettings) -> Result<Snapshot, BenchError> {
    let _guard = PROFILE_LOCK.lock().expect("profile lock poisoned"); // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
    let recorder = Arc::new(CollectingRecorder::new());
    telemetry::set_recorder(recorder.clone());
    let result = run_workload(settings);
    telemetry::clear_recorder();
    result?;
    Ok(recorder.snapshot())
}

fn run_workload(settings: ProfileSettings) -> Result<(), BenchError> {
    let _total = telemetry::span("profile.total");
    let n = 10usize;
    let game = GameConfig::builder(n).build()?;
    let params = *game.params();
    let utility = *game.utility();

    // Phase 1 — solver: the Table II n = 10 NE-interval scan (memoized
    // symmetric stages, warm-chained accelerated deviation sweeps).
    let interval = {
        let _span = telemetry::span("profile.solver_scan");
        let interval = ne_interval(&game)?;
        let checks = scan_ne_interval(
            &game,
            interval.lower,
            interval.upper,
            1,
            DEFAULT_NE_EPSILON,
            settings.threads,
        )?;
        telemetry::gauge("profile.scan.windows", checks.len() as f64);
        telemetry::gauge(
            "profile.scan.ne_count",
            checks.iter().filter(|c| c.is_ne).count() as f64,
        );
        interval
    };

    // Phase 2 — solve cache: one deviator sweeping its window against an
    // otherwise-fixed W_c* profile. All profiles are distinct multisets, so
    // pass one is all misses and pass two all hits, at any thread count.
    {
        let _span = telemetry::span("profile.cache_sweep");
        let w_star = interval.upper;
        let profiles: Vec<Vec<u32>> = (1..=100u32)
            .map(|w_s| {
                let mut p = vec![w_star; n];
                p[0] = w_s;
                p
            })
            .collect();
        let cache = SolveCache::new(params, SolveOptions::default());
        solve_sweep_cached(&profiles, &cache, settings.threads)?;
        solve_sweep_cached(&profiles, &cache, settings.threads)?;
        telemetry::gauge("profile.cache.entries", cache.len() as f64);
    }

    // Phase 3 — evaluator cache: serial repeated evaluation (driver-side,
    // so hit/miss counts are trivially deterministic).
    {
        let _span = telemetry::span("profile.evaluator");
        let mut evaluator = CachingEvaluator::new(AnalyticalEvaluator::new(game.clone()));
        for w_s in [1u32, 8, 32, interval.upper] {
            let mut profile = vec![interval.upper; n];
            profile[0] = w_s;
            evaluator.evaluate(&profile)?;
            evaluator.evaluate(&profile)?;
        }
    }

    // Phase 4 — slot engine: replicated Table II n = 10 runs at W_c*.
    {
        let _span = telemetry::span("profile.sim_batch");
        let w_star = efficient_cw(n, &params, &utility, game.w_max())?.window;
        let config = SimConfig::builder()
            .params(params)
            .windows(vec![w_star; n])
            .seed(2007)
            .build()?;
        let (slots, replications) = if settings.quick { (20_000, 4) } else { (200_000, 8) };
        let reports = replicate_threads(&config, slots, replications, 2007, settings.threads)?;
        telemetry::gauge("profile.sim.tau_hat_mean", {
            let taus: Vec<f64> = reports.iter().map(|r| r.tau_hat(0)).collect();
            taus.iter().sum::<f64>() / taus.len() as f64
        });
    }

    // Phase 5 — best-response search (Section V.C) and the strategy
    // tournament built on repeated analytic games.
    {
        let _span = telemetry::span("profile.search_tournament");
        let game5 = GameConfig::builder(5).build()?;
        let mut probe = AnalyticProbe::new(game5);
        run_search(&mut probe, &GameConfig::builder(5).build()?, 100, 0.0)?;
        crate::extensions_exp::tournament_ranking(if settings.quick { 5 } else { 25 })?;
    }

    // Phase 6 — multihop: TFT convergence to W_m, local-game solves, the
    // distributed NE check, and the spatial hidden-terminal simulator.
    {
        let _span = telemetry::span("profile.multihop");
        let topology = Topology::grid(4, 4);
        let local = local_optimal_windows(
            &topology,
            &params,
            &utility,
            game.w_max(),
            LocalRule::ExactArgmax,
        )?;
        let initial: Vec<u32> = (0..topology.len()).map(|i| 50 + 17 * i as u32).collect();
        let trace = tft_converge(&topology, &initial)?;
        telemetry::gauge("profile.multihop.rounds_to_wm", trace.rounds_needed as f64);
        check_multihop_ne(&topology, &local, local[0], &game, DEFAULT_NE_EPSILON)?;

        let spatial_seconds = if settings.quick { 1.0 } else { 5.0 };
        let mut spatial =
            SpatialEngine::new(n, &vec![local[0].max(2); n], SpatialConfig::paper(7))?;
        let report = spatial.run_for(MicroSecs::from_seconds(spatial_seconds));
        telemetry::gauge("profile.multihop.p_hn_worst", {
            report
                .hidden
                .iter()
                .filter_map(|h| h.p_hn())
                .fold(1.0f64, f64::min)
        });
    }
    Ok(())
}

/// Rows of the human-readable profile table: every counter and gauge, then
/// each span with derived throughput where the pairing makes sense.
#[must_use]
pub fn profile_table(snapshot: &Snapshot) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for (name, value) in &snapshot.counters {
        rows.push(vec!["counter".into(), name.clone(), value.to_string()]);
    }
    for (name, value) in &snapshot.gauges {
        rows.push(vec!["gauge".into(), name.clone(), format!("{value:.6}")]);
    }
    for (name, h) in &snapshot.histograms {
        rows.push(vec![
            "histogram".into(),
            name.clone(),
            format!("n={} min={:.3e} max={:.3e}", h.count, h.min, h.max),
        ]);
    }
    for (name, t) in &snapshot.timings {
        let mut cell = format!("{:.1} ms over {} span(s)", t.total_ms(), t.count);
        if name == "sim.engine.run" {
            let slots = snapshot.counter("sim.engine.slots");
            if t.total_nanos > 0 {
                cell.push_str(&format!(
                    ", {:.2} Mslots/s",
                    slots as f64 / (t.total_nanos as f64 / 1e9) / 1e6
                ));
            }
        }
        rows.push(vec!["timing".into(), name.clone(), cell]);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use macgame_dcf::{DcfParams, UtilityParams};

    fn dcf_params() -> DcfParams {
        DcfParams::default()
    }

    #[test]
    fn settings_constructors_differ_only_in_quick() {
        let quick = ProfileSettings::quick();
        let full = ProfileSettings::full();
        assert!(quick.quick && !full.quick);
        assert_eq!(quick.threads, full.threads);
        // Smoke-check that the shared workload parameters resolve.
        assert!(efficient_cw(10, &dcf_params(), &UtilityParams::default(), 1024).is_ok());
    }
}
