//! Side-by-side validation of the analytical model against the simulator
//! — the Section VII.A methodology packaged as a library call.
//!
//! [`validate_fixed_point`] runs the slot engine on a window profile and
//! compares every node's measured `τ̂`, `p̂` (and the network throughput)
//! to the fixed-point predictions of `macgame_dcf`.

use macgame_dcf::fixedpoint::{solve, SolveOptions};
use macgame_dcf::throughput::normalized_throughput;
use macgame_dcf::{DcfParams, UtilityParams};
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::SimError;

/// Per-node prediction-vs-measurement comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Node index.
    pub node: usize,
    /// Configured contention window.
    pub window: u32,
    /// Predicted transmission probability.
    pub tau_predicted: f64,
    /// Measured transmission probability.
    pub tau_measured: f64,
    /// Predicted conditional collision probability.
    pub p_predicted: f64,
    /// Measured conditional collision probability.
    pub p_measured: f64,
}

impl ValidationRow {
    /// Relative error of the measured `τ̂`.
    #[must_use]
    pub fn tau_relative_error(&self) -> f64 {
        (self.tau_measured - self.tau_predicted).abs() / self.tau_predicted
    }

    /// Relative error of the measured `p̂`.
    #[must_use]
    pub fn p_relative_error(&self) -> f64 {
        if self.p_predicted == 0.0 {
            self.p_measured
        } else {
            (self.p_measured - self.p_predicted).abs() / self.p_predicted
        }
    }
}

/// Full validation report for one profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// One comparison per node.
    pub rows: Vec<ValidationRow>,
    /// Predicted normalized throughput.
    pub throughput_predicted: f64,
    /// Measured normalized throughput.
    pub throughput_measured: f64,
    /// Slots simulated.
    pub slots: u64,
}

impl ValidationReport {
    /// Worst per-node relative `τ` error.
    #[must_use]
    pub fn max_tau_error(&self) -> f64 {
        self.rows.iter().map(ValidationRow::tau_relative_error).fold(0.0, f64::max)
    }

    /// Worst per-node relative `p` error.
    #[must_use]
    pub fn max_p_error(&self) -> f64 {
        self.rows.iter().map(ValidationRow::p_relative_error).fold(0.0, f64::max)
    }

    /// Relative throughput error.
    #[must_use]
    pub fn throughput_relative_error(&self) -> f64 {
        (self.throughput_measured - self.throughput_predicted).abs()
            / self.throughput_predicted
    }
}

/// Simulates `slots` slots on `windows` and compares against the
/// analytical fixed point.
///
/// # Examples
///
/// ```
/// use macgame_dcf::DcfParams;
/// use macgame_sim::validate_fixed_point;
///
/// let report = validate_fixed_point(&[76; 5], &DcfParams::default(), 100_000, 1)?;
/// assert!(report.max_tau_error() < 0.1);
/// # Ok::<(), macgame_sim::SimError>(())
/// ```
///
/// # Errors
///
/// Propagates configuration and solver failures.
pub fn validate_fixed_point(
    windows: &[u32],
    params: &DcfParams,
    slots: u64,
    seed: u64,
) -> Result<ValidationReport, SimError> {
    let eq = solve(windows, params, SolveOptions::default())?;
    let config = SimConfig::builder()
        .params(*params)
        .utility(UtilityParams::default())
        .windows(windows.to_vec())
        .seed(seed)
        .build()?;
    let mut engine = Engine::new(&config);
    let report = engine.run_slots(slots);
    let rows = (0..windows.len())
        .map(|i| ValidationRow {
            node: i,
            window: windows[i],
            tau_predicted: eq.taus[i],
            tau_measured: report.tau_hat(i),
            p_predicted: eq.collision_probs[i],
            p_measured: report.p_hat(i),
        })
        .collect();
    Ok(ValidationReport {
        rows,
        throughput_predicted: normalized_throughput(&eq.taus, params),
        throughput_measured: report.throughput(params),
        slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use macgame_dcf::AccessMode;

    #[test]
    fn symmetric_profile_validates_tightly() {
        let report =
            validate_fixed_point(&[76; 5], &DcfParams::default(), 400_000, 11).unwrap();
        assert!(report.max_tau_error() < 0.05, "τ error {}", report.max_tau_error());
        assert!(report.max_p_error() < 0.10, "p error {}", report.max_p_error());
        assert!(
            report.throughput_relative_error() < 0.03,
            "S error {}",
            report.throughput_relative_error()
        );
    }

    #[test]
    fn heterogeneous_profile_validates() {
        let windows = [16u32, 48, 96, 192];
        let report =
            validate_fixed_point(&windows, &DcfParams::default(), 400_000, 5).unwrap();
        assert!(report.max_tau_error() < 0.08, "τ error {}", report.max_tau_error());
        for row in &report.rows {
            assert_eq!(row.window, windows[row.node]);
        }
    }

    #[test]
    fn rtscts_profile_validates() {
        let params = DcfParams::builder().access_mode(AccessMode::RtsCts).build().unwrap();
        let report = validate_fixed_point(&[48; 8], &params, 400_000, 7).unwrap();
        assert!(report.max_tau_error() < 0.05, "τ error {}", report.max_tau_error());
        assert!(report.throughput_predicted > 0.5);
    }

    #[test]
    fn rejects_bad_profiles() {
        assert!(validate_fixed_point(&[], &DcfParams::default(), 100, 0).is_err());
        assert!(validate_fixed_point(&[0, 4], &DcfParams::default(), 100, 0).is_err());
    }
}
