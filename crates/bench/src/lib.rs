//! Experiment harness: the code behind every table and figure of the
//! paper, shared by the Criterion benches and the `repro` binary.
//!
//! Run `cargo run --release -p macgame-bench --bin repro -- all` to
//! regenerate everything (add `--quick` for a fast pass); each experiment
//! prints the paper-value comparison and writes a JSON artifact under
//! `artifacts/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod detect_exp;
pub mod deviation_exp;
pub mod edca_exp;
pub mod extensions_exp;
pub mod figures;
pub mod multihop_exp;
pub mod profile_exp;
pub mod render;
pub mod robustness_exp;
pub mod search_exp;
pub mod tables;

use core::fmt;

/// Errors surfaced by the harness.
#[derive(Debug)]
#[non_exhaustive]
pub enum BenchError {
    /// Analytical-model error.
    Model(macgame_dcf::DcfError),
    /// Simulator error.
    Sim(macgame_sim::SimError),
    /// Game-layer error.
    Game(macgame_core::GameError),
    /// Multi-hop layer error.
    Multihop(macgame_multihop::MultihopError),
    /// Filesystem error while writing artifacts.
    Io(std::io::Error),
    /// Artifact serialization error.
    Json(serde_json::Error),
    /// Conformance-gate error (failing claims or fixture trouble).
    Conformance(macgame_conformance::ConformanceError),
    /// Fault-injection configuration error.
    Faults(macgame_faults::FaultError),
    /// Static-analysis harness error (I/O or workspace-shape trouble).
    Lint(macgame_lint::LintError),
    /// Serve-layer error (engine construction, wire round-trips).
    Serve(macgame_serve::ServeError),
    /// The workspace lint pass found unwaived violations.
    LintFindings(usize),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Model(e) => write!(f, "model error: {e}"),
            BenchError::Sim(e) => write!(f, "simulation error: {e}"),
            BenchError::Game(e) => write!(f, "game error: {e}"),
            BenchError::Multihop(e) => write!(f, "multihop error: {e}"),
            BenchError::Io(e) => write!(f, "io error: {e}"),
            BenchError::Json(e) => write!(f, "serialization error: {e}"),
            BenchError::Conformance(e) => write!(f, "conformance error: {e}"),
            BenchError::Faults(e) => write!(f, "fault-injection error: {e}"),
            BenchError::Lint(e) => write!(f, "lint error: {e}"),
            BenchError::Serve(e) => write!(f, "serve error: {e}"),
            BenchError::LintFindings(n) => {
                write!(f, "lint: {n} unwaived finding(s); fix or waive in lint-allow.toml")
            }
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Model(e) => Some(e),
            BenchError::Sim(e) => Some(e),
            BenchError::Game(e) => Some(e),
            BenchError::Multihop(e) => Some(e),
            BenchError::Io(e) => Some(e),
            BenchError::Json(e) => Some(e),
            BenchError::Conformance(e) => Some(e),
            BenchError::Faults(e) => Some(e),
            BenchError::Lint(e) => Some(e),
            BenchError::Serve(e) => Some(e),
            BenchError::LintFindings(_) => None,
        }
    }
}

impl From<macgame_dcf::DcfError> for BenchError {
    fn from(e: macgame_dcf::DcfError) -> Self {
        BenchError::Model(e)
    }
}

impl From<macgame_sim::SimError> for BenchError {
    fn from(e: macgame_sim::SimError) -> Self {
        BenchError::Sim(e)
    }
}

impl From<macgame_core::GameError> for BenchError {
    fn from(e: macgame_core::GameError) -> Self {
        BenchError::Game(e)
    }
}

impl From<macgame_multihop::MultihopError> for BenchError {
    fn from(e: macgame_multihop::MultihopError) -> Self {
        BenchError::Multihop(e)
    }
}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> Self {
        BenchError::Io(e)
    }
}

impl From<serde_json::Error> for BenchError {
    fn from(e: serde_json::Error) -> Self {
        BenchError::Json(e)
    }
}

impl From<macgame_conformance::ConformanceError> for BenchError {
    fn from(e: macgame_conformance::ConformanceError) -> Self {
        BenchError::Conformance(e)
    }
}

impl From<macgame_faults::FaultError> for BenchError {
    fn from(e: macgame_faults::FaultError) -> Self {
        BenchError::Faults(e)
    }
}

impl From<macgame_lint::LintError> for BenchError {
    fn from(e: macgame_lint::LintError) -> Self {
        BenchError::Lint(e)
    }
}

impl From<macgame_serve::ServeError> for BenchError {
    fn from(e: macgame_serve::ServeError) -> Self {
        BenchError::Serve(e)
    }
}
