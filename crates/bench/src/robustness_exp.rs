//! The `repro -- robustness` experiment: deterministic fault injection
//! across the workspace, answering "how much imperfection can the paper's
//! equilibria absorb?".
//!
//! Four sections, all seed-deterministic and fully serial (so the
//! artifact bytes are identical at every `MACGAME_THREADS` setting):
//!
//! * **GTFT grid** — Generous TFT players at `W_c*` behind a noisy
//!   observation channel: which `(r₀, β)` parameterizations still hold
//!   the efficient window as the estimation noise grows (the paper's
//!   Section IV motivation, quantified)?
//! * **Channel sweep** — the slot engine under injected channel errors
//!   and capture effects, including the zero-rate bitwise-identity gate.
//! * **Churn** — TFT min-propagation over a mesh while nodes leave, join
//!   and reset, with per-event re-convergence metrics.
//! * **Solver ladder** — `solve_robust` on benign and adversarial
//!   profiles, checking the fallback rungs agree with the plain solver
//!   wherever it converges.

use std::sync::{Arc, Mutex};

use macgame_core::evaluator::{
    AnalyticalEvaluator, NoisyObservationEvaluator, StageEvaluator,
};
use macgame_core::strategy::{GenerousTft, Strategy};
use macgame_core::{GameConfig, RepeatedGame};
use macgame_dcf::fixedpoint::{solve, solve_robust, SolveOptions};
use macgame_dcf::optimal::efficient_cw;
use macgame_faults::{ChannelFaults, ChurnSchedule, ObservationFaults};
use macgame_multihop::{churn_converge, Topology};
use macgame_sim::{Engine, SimConfig};
use macgame_telemetry::{self as telemetry, CollectingRecorder};
use serde::Serialize;

use crate::BenchError;

/// Tuning knobs for the robustness workload.
#[derive(Debug, Clone, Copy)]
pub struct RobustnessSettings {
    /// Shrink the grids and slot counts for CI-speed runs.
    pub quick: bool,
}

impl RobustnessSettings {
    /// Full-size workload.
    #[must_use]
    pub fn full() -> Self {
        RobustnessSettings { quick: false }
    }

    /// CI-speed workload.
    #[must_use]
    pub fn quick() -> Self {
        RobustnessSettings { quick: true }
    }
}

/// Serializes robustness runs within one process: the telemetry facade is
/// a process-global, so concurrent runs (e.g. parallel `#[test]`s) would
/// pollute each other's counters.
static ROBUSTNESS_LOCK: Mutex<()> = Mutex::new(());

/// One cell of the GTFT `(r₀, β) × noise` convergence map.
#[derive(Debug, Clone, Serialize)]
pub struct GtftCell {
    /// GTFT averaging memory `r₀`.
    pub r0: usize,
    /// GTFT tolerance `β`.
    pub beta: f64,
    /// Multiplicative observation-noise amplitude.
    pub noise: f64,
    /// Whether every player still played `W_c*` at the final stage.
    pub held: bool,
    /// Smallest window played at the final stage.
    pub final_min: u32,
    /// Stages simulated.
    pub stages: usize,
}

/// One operating point of the channel-fault sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ChannelPoint {
    /// Injected per-success channel-error probability.
    pub error_rate: f64,
    /// Injected per-collision capture probability.
    pub capture_prob: f64,
    /// Slots delivered (captures included).
    pub success: u64,
    /// Slots lost to collision (channel errors included).
    pub collision: u64,
    /// Idle slots.
    pub idle: u64,
    /// Lone transmissions corrupted by the fault plane.
    pub injected_errors: u64,
    /// Collisions resolved by capture.
    pub injected_captures: u64,
}

/// One seeded churn run over the mesh.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnRun {
    /// Schedule seed.
    pub seed: u64,
    /// Events the schedule fired.
    pub events: usize,
    /// Propagation rounds run.
    pub rounds_run: usize,
    /// Whether the dynamics settled after the last event.
    pub settled: bool,
    /// Slowest per-event re-convergence, in rounds.
    pub max_reconvergence_rounds: Option<usize>,
    /// Common window of the surviving nodes, if uniform.
    pub converged_window: Option<u32>,
}

/// One profile through the solver fallback ladder.
#[derive(Debug, Clone, Serialize)]
pub struct LadderPoint {
    /// The window profile solved.
    pub profile: Vec<u32>,
    /// Iteration budget used (`"default"` or `"starved"`).
    pub budget: String,
    /// Rung that produced the equilibrium.
    pub rung: String,
    /// Exhausted-rung diagnostics carried on the result.
    pub retries: usize,
    /// Whether the plain solver also converged on this profile.
    pub plain_converged: bool,
    /// Largest per-node |τ| gap versus the plain solve, when available.
    pub max_tau_gap: Option<f64>,
}

/// Everything `repro -- robustness` measures, serialized to
/// `artifacts/ROBUSTNESS.json`.
#[derive(Debug, Clone, Serialize)]
pub struct RobustnessReport {
    /// Whether the quick grids were used.
    pub quick: bool,
    /// The efficient window the GTFT section defends.
    pub w_star: u32,
    /// Fault-rate-0 engine runs are bitwise identical to the no-fault
    /// engine (the zero-cost guarantee of the fault plane).
    pub zero_rate_bitwise_identical: bool,
    /// A no-op observation channel returns the bare evaluator's outcome
    /// verbatim.
    pub noop_observation_identical: bool,
    /// The GTFT `(r₀, β) × noise` convergence map.
    pub gtft_grid: Vec<GtftCell>,
    /// The channel error/capture sweep.
    pub channel_sweep: Vec<ChannelPoint>,
    /// The churn re-convergence runs.
    pub churn: Vec<ChurnRun>,
    /// The solver-ladder agreement checks.
    pub ladder: Vec<LadderPoint>,
    /// Every telemetry counter the workload recorded, sorted by name
    /// (deterministic; wall-clock timings are deliberately excluded).
    pub telemetry_counters: Vec<(String, u64)>,
}

/// Runs the full robustness workload and returns its report.
///
/// # Errors
///
/// Propagates failures from any section.
pub fn run_robustness(settings: RobustnessSettings) -> Result<RobustnessReport, BenchError> {
    let _guard = ROBUSTNESS_LOCK.lock().expect("robustness lock poisoned"); // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
    let recorder = Arc::new(CollectingRecorder::new());
    telemetry::set_recorder(recorder.clone());
    let result = run_sections(settings);
    telemetry::clear_recorder();
    let mut report = result?;
    report.telemetry_counters = recorder.snapshot().counters.into_iter().collect();
    Ok(report)
}

fn run_sections(settings: RobustnessSettings) -> Result<RobustnessReport, BenchError> {
    let n = 5usize;
    let game = GameConfig::builder(n).build()?;
    let w_star = efficient_cw(n, game.params(), game.utility(), game.w_max())?.window;

    let noop_observation_identical = noop_observation_check(&game)?;
    let gtft_grid = gtft_grid(&game, w_star, settings.quick)?;
    let (channel_sweep, zero_rate_bitwise_identical) =
        channel_sweep(&game, w_star, settings.quick)?;
    let churn = churn_runs(settings.quick)?;
    let ladder = ladder_points(&game)?;

    Ok(RobustnessReport {
        quick: settings.quick,
        w_star,
        zero_rate_bitwise_identical,
        noop_observation_identical,
        gtft_grid,
        channel_sweep,
        churn,
        ladder,
        telemetry_counters: Vec::new(),
    })
}

/// Section gate: a no-op observation channel must be invisible, bitwise.
fn noop_observation_check(game: &GameConfig) -> Result<bool, BenchError> {
    let n = game.player_count();
    let mut bare = AnalyticalEvaluator::new(game.clone());
    let mut wrapped = NoisyObservationEvaluator::new(
        AnalyticalEvaluator::new(game.clone()),
        ObservationFaults::noop(),
        n,
        game.w_max(),
    );
    let mut identical = true;
    for profile in [vec![76u32; n], vec![16, 64, 256, 128, 32]] {
        identical &= bare.evaluate(&profile)? == wrapped.evaluate(&profile)?;
    }
    Ok(identical)
}

/// Section A: map which GTFT parameterizations hold `W_c*` under noise.
fn gtft_grid(
    game: &GameConfig,
    w_star: u32,
    quick: bool,
) -> Result<Vec<GtftCell>, BenchError> {
    let n = game.player_count();
    let (r0s, betas, noises, stages): (Vec<usize>, Vec<f64>, Vec<f64>, usize) = if quick {
        (vec![1, 3], vec![0.7, 0.9], vec![0.1, 0.3], 12)
    } else {
        (
            vec![1, 2, 4],
            vec![0.6, 0.75, 0.9, 0.98],
            vec![0.05, 0.1, 0.2, 0.3],
            25,
        )
    };
    let mut cells = Vec::new();
    for &r0 in &r0s {
        for &beta in &betas {
            for (k, &noise) in noises.iter().enumerate() {
                let faults =
                    ObservationFaults::noise(noise, 40 + k as u64).map_err(BenchError::from)?;
                let evaluator = NoisyObservationEvaluator::new(
                    AnalyticalEvaluator::new(game.clone()),
                    faults,
                    n,
                    game.w_max(),
                );
                let players: Vec<Box<dyn Strategy>> = (0..n)
                    .map(|_| {
                        GenerousTft::try_new(w_star, r0, beta)
                            .map(|s| Box::new(s) as Box<dyn Strategy>)
                    })
                    .collect::<Result<_, _>>()?;
                let mut rg = RepeatedGame::new(game.clone(), players, Box::new(evaluator))?;
                rg.play(stages)?;
                let last = rg.history().last().expect("stages played"); // PANIC-POLICY: invariant: stages played
                cells.push(GtftCell {
                    r0,
                    beta,
                    noise,
                    held: last.windows.iter().all(|&w| w == w_star),
                    final_min: *last.windows.iter().min().expect("nonempty profile"), // PANIC-POLICY: invariant: nonempty profile
                    stages,
                });
            }
        }
    }
    Ok(cells)
}

/// Section B: the slot engine under channel-error/capture injection, plus
/// the zero-rate identity gate.
fn channel_sweep(
    game: &GameConfig,
    w_star: u32,
    quick: bool,
) -> Result<(Vec<ChannelPoint>, bool), BenchError> {
    let n = game.player_count();
    let slots = if quick { 20_000 } else { 200_000 };
    let config = SimConfig::builder()
        .params(*game.params())
        .utility(*game.utility())
        .symmetric(n, w_star)
        .seed(2007)
        .build()?;

    // Zero-rate gate: a noop fault config must be bitwise invisible.
    let identity_slots = slots / 4;
    let plain_report = Engine::new(&config).run_slots(identity_slots);
    let noop_report =
        Engine::with_faults(&config, ChannelFaults::noop())?.run_slots(identity_slots);
    let zero_rate_identical = plain_report == noop_report;

    let grid = [
        (0.0, 0.0),
        (0.05, 0.0),
        (0.2, 0.0),
        (0.0, 0.5),
        (0.1, 0.25),
    ];
    let mut points = Vec::new();
    for &(error_rate, capture_prob) in &grid {
        let faults = ChannelFaults::new(error_rate, capture_prob, 9).map_err(BenchError::from)?;
        let mut engine = Engine::with_faults(&config, faults)?;
        let report = engine.run_slots(slots);
        points.push(ChannelPoint {
            error_rate,
            capture_prob,
            success: report.channel.success,
            collision: report.channel.collision,
            idle: report.channel.idle,
            injected_errors: engine.channel_error_count(),
            injected_captures: engine.capture_count(),
        });
    }
    Ok((points, zero_rate_identical))
}

/// Section C: churn over a 4×4 mesh with seeded random schedules.
fn churn_runs(quick: bool) -> Result<Vec<ChurnRun>, BenchError> {
    let topology = Topology::grid(4, 4);
    let nodes = topology.len();
    let initial: Vec<u32> = (0..nodes).map(|i| 20 + 7 * i as u32).collect();
    let seeds: Vec<u64> = if quick { vec![1, 2] } else { vec![1, 2, 3, 4, 5] };
    let mut runs = Vec::new();
    for &seed in &seeds {
        let schedule =
            ChurnSchedule::random(nodes, 40, 0.25, 128, seed).map_err(BenchError::from)?;
        let trace = churn_converge(&topology, &initial, &schedule)?;
        runs.push(ChurnRun {
            seed,
            events: schedule.events().len(),
            rounds_run: trace.rounds_run(),
            settled: trace.settled,
            max_reconvergence_rounds: trace.max_reconvergence_rounds(),
            converged_window: trace.converged_window(),
        });
    }
    Ok(runs)
}

/// Section D: the solver fallback ladder versus the plain solver.
fn ladder_points(game: &GameConfig) -> Result<Vec<LadderPoint>, BenchError> {
    let params = game.params();
    let profiles: Vec<Vec<u32>> = vec![
        vec![76; 5],
        vec![16, 64, 256],
        vec![8, 16, 32, 64, 128],
        vec![1, 1024, 1, 512],
        vec![2; 10],
    ];
    let mut points = Vec::new();
    for profile in &profiles {
        points.push(ladder_point(profile, params, SolveOptions::default(), "default")?);
    }
    // Starve the iterative rungs so the bisection safe mode must carry a
    // profile the plain solver handles easily — the diagnostics path.
    let starved = SolveOptions { max_iterations: 1, ..SolveOptions::default() };
    points.push(ladder_point(&[16, 64, 256], params, starved, "starved")?);
    Ok(points)
}

fn ladder_point(
    profile: &[u32],
    params: &macgame_dcf::DcfParams,
    options: SolveOptions,
    budget: &str,
) -> Result<LadderPoint, BenchError> {
    let robust = solve_robust(profile, params, options)?;
    let plain = solve(profile, params, SolveOptions::default());
    let (plain_converged, max_tau_gap) = match plain {
        Ok(eq) => {
            let gap = eq
                .taus
                .iter()
                .zip(&robust.equilibrium.taus)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            (true, Some(gap))
        }
        Err(_) => (false, None),
    };
    Ok(LadderPoint {
        profile: profile.to_vec(),
        budget: budget.to_string(),
        rung: robust.rung.to_string(),
        retries: robust.attempts.len(),
        plain_converged,
        max_tau_gap,
    })
}

/// Rows of the human-readable robustness summary.
#[must_use]
pub fn robustness_table(report: &RobustnessReport) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    rows.push(vec![
        "gate".into(),
        "zero-rate engine bitwise identity".into(),
        report.zero_rate_bitwise_identical.to_string(),
    ]);
    rows.push(vec![
        "gate".into(),
        "noop observation identity".into(),
        report.noop_observation_identical.to_string(),
    ]);
    let held = report.gtft_grid.iter().filter(|c| c.held).count();
    rows.push(vec![
        "gtft".into(),
        format!("cells holding W_c* = {}", report.w_star),
        format!("{held}/{}", report.gtft_grid.len()),
    ]);
    for p in &report.channel_sweep {
        rows.push(vec![
            "channel".into(),
            format!("err={:.2} cap={:.2}", p.error_rate, p.capture_prob),
            format!(
                "S={} C={} injected {}E/{}C",
                p.success, p.collision, p.injected_errors, p.injected_captures
            ),
        ]);
    }
    for r in &report.churn {
        rows.push(vec![
            "churn".into(),
            format!("seed {}", r.seed),
            format!(
                "{} events, {} rounds, settled={}, worst reconvergence {:?}",
                r.events, r.rounds_run, r.settled, r.max_reconvergence_rounds
            ),
        ]);
    }
    for l in &report.ladder {
        rows.push(vec![
            "ladder".into(),
            format!("{:?} ({})", l.profile, l.budget),
            format!(
                "rung={} retries={} gap={:?}",
                l.rung, l.retries, l.max_tau_gap
            ),
        ]);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_constructors_differ_only_in_quick() {
        assert!(RobustnessSettings::quick().quick);
        assert!(!RobustnessSettings::full().quick);
    }
}
