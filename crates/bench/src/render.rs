//! Plain-text table rendering and JSON artifact output for the `repro`
//! binary.

use serde::Serialize;
use std::fs;
use std::path::{Path, PathBuf};

use crate::BenchError;

/// Renders a fixed-width text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
#[must_use]
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!("{cell:>w$}  ", w = w));
        }
        line.trim_end().to_string() + "\n"
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push_str(&fmt_row(
        widths.iter().map(|_| "─").collect(),
        &widths.to_vec(),
    ));
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Writes a JSON artifact under `artifacts/`, creating the directory.
///
/// # Errors
///
/// Returns [`BenchError::Io`] on filesystem failures.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) -> Result<PathBuf, BenchError> {
    let dir = Path::new("artifacts");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)?;
    fs::write(&path, json)?;
    Ok(path)
}

/// Writes an already-rendered artifact under `artifacts/`, creating the
/// directory. Used for payloads that control their own byte-exact layout
/// (e.g. the telemetry snapshot, whose non-`timings` bytes are compared
/// across thread counts).
///
/// # Errors
///
/// Returns [`BenchError::Io`] on filesystem failures.
pub fn write_raw_artifact(name: &str, contents: &str) -> Result<PathBuf, BenchError> {
    let dir = Path::new("artifacts");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = text_table(
            &["n", "W*"],
            &[vec!["5".into(), "76".into()], vec!["50".into(), "879".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("W*"));
        assert!(lines[3].contains("879"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = text_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
