//! Error types for the analytical model.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Which rung of the solver fallback ladder produced a result or attempt
/// (see [`crate::fixedpoint::solve_robust`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolveRung {
    /// The primary solver exactly as configured (Anderson-accelerated by
    /// default).
    Accelerated,
    /// The damped retry: acceleration disabled, tighter damping, larger
    /// iteration budget.
    Damped,
    /// The bounded-bisection safe mode: guaranteed monotone convergence,
    /// used as the last resort.
    Bisection,
}

impl fmt::Display for SolveRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SolveRung::Accelerated => "accelerated",
            SolveRung::Damped => "damped",
            SolveRung::Bisection => "bisection",
        })
    }
}

/// Diagnostic record of one exhausted rung of the fallback ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolveAttempt {
    /// The solver configuration that was tried.
    pub rung: SolveRung,
    /// Iterations spent before the rung gave up.
    pub iterations: usize,
    /// Residual (max update magnitude) when the rung gave up.
    pub residual: f64,
}

/// Errors produced by the analytical DCF model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DcfError {
    /// An iterative solver failed to reach the requested tolerance.
    SolveDidNotConverge {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual (max update magnitude) at the last iteration.
        residual: f64,
        /// What the fallback ladder tried before giving up, in order.
        /// Empty when the failure came from a single-configuration solve
        /// (no ladder was involved).
        attempts: Vec<SolveAttempt>,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// The offending parameter.
        name: &'static str,
        /// Human-readable constraint description.
        reason: String,
    },
}

impl DcfError {
    /// Convenience constructor for [`DcfError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        DcfError::InvalidParameter { name, reason: reason.into() }
    }

    /// Convenience constructor for a single-configuration
    /// [`DcfError::SolveDidNotConverge`] (no ladder diagnostics).
    #[must_use]
    pub fn did_not_converge(iterations: usize, residual: f64) -> Self {
        DcfError::SolveDidNotConverge { iterations, residual, attempts: Vec::new() }
    }
}

impl fmt::Display for DcfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcfError::SolveDidNotConverge { iterations, residual, attempts } => {
                write!(
                    f,
                    "fixed-point solver did not converge after {iterations} iterations \
                     (residual {residual:.3e})"
                )?;
                if !attempts.is_empty() {
                    write!(f, "; ladder:")?;
                    for a in attempts {
                        write!(f, " [{} ×{} → {:.3e}]", a.rung, a.iterations, a.residual)?;
                    }
                }
                Ok(())
            }
            DcfError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for DcfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let e = DcfError::did_not_converge(10, 1e-3);
        let msg = e.to_string();
        assert!(msg.contains("10 iterations"));
        let e = DcfError::invalid("w", "must be at least 1");
        assert_eq!(e.to_string(), "invalid parameter `w`: must be at least 1");
    }

    #[test]
    fn display_lists_ladder_attempts() {
        let e = DcfError::SolveDidNotConverge {
            iterations: 40,
            residual: 2e-2,
            attempts: vec![
                SolveAttempt { rung: SolveRung::Accelerated, iterations: 10, residual: 0.5 },
                SolveAttempt { rung: SolveRung::Damped, iterations: 20, residual: 0.1 },
                SolveAttempt { rung: SolveRung::Bisection, iterations: 10, residual: 2e-2 },
            ],
        };
        let msg = e.to_string();
        assert!(msg.contains("ladder:"), "{msg}");
        assert!(msg.contains("accelerated"), "{msg}");
        assert!(msg.contains("damped"), "{msg}");
        assert!(msg.contains("bisection"), "{msg}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<DcfError>();
    }
}
