#!/usr/bin/env bash
# Regenerate the golden conformance fixtures under tests/golden/.
#
# The fixtures pin the analytical artifacts (fixed-point solutions,
# Theorem 2 NE intervals, the Section V.C search trajectory, deviation
# payoffs, multi-hop convergence traces) byte-for-byte. Run this after an
# *intended* change to the analytical model, inspect `git diff
# tests/golden/`, and commit the new fixtures together with the change
# that motivated them.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> regenerating tests/golden/ (UPDATE_GOLDEN=1)"
UPDATE_GOLDEN=1 cargo test -q --test conformance_golden

echo "==> verifying the fresh fixtures round-trip"
cargo test -q --test conformance_golden

echo "==> blessed fixtures:"
git status --short tests/golden/ || true
echo "Inspect 'git diff tests/golden/' before committing."
echo "Reminder: golden updates ship with a clean lint run — check with"
echo "  cargo run --release -p macgame-bench --bin repro -- lint"
