//! Axelrod-style strategy tournaments on the MAC game.
//!
//! The paper leans on TFT's reputation as "the best strategy in
//! non-cooperative environments". This module makes that claim testable in
//! *this* game: entrants play pairwise repeated MAC games (round robin,
//! self-play included, as in Axelrod's tournaments) or one mixed-population
//! game, and are ranked by total discounted payoff.

use macgame_dcf::parallel::resolve_threads;
use macgame_telemetry as telemetry;
use serde::{Deserialize, Serialize};

use crate::error::GameError;
use crate::evaluator::AnalyticalEvaluator;
use crate::game::GameConfig;
use crate::repeated::RepeatedGame;
use crate::strategy::Strategy;

/// A named strategy entrant; the factory builds a fresh (stateless-start)
/// strategy instance per match. `Send + Sync` so tournaments can play
/// matches on worker threads (each match instantiates and uses its
/// strategies on one thread).
pub struct Entrant {
    name: String,
    factory: Box<dyn Fn() -> Box<dyn Strategy> + Send + Sync>,
}

impl Entrant {
    /// Creates an entrant.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn Strategy> + Send + Sync + 'static,
    ) -> Self {
        Entrant { name: name.into(), factory: Box::new(factory) }
    }

    /// The entrant's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instantiates a fresh strategy for one match.
    #[must_use]
    pub fn build(&self) -> Box<dyn Strategy> {
        (self.factory)()
    }
}

impl core::fmt::Debug for Entrant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Entrant").field("name", &self.name).finish_non_exhaustive()
    }
}

/// Results of a round-robin tournament.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentResult {
    /// Entrant names, indexing the score matrix.
    pub names: Vec<String>,
    /// `scores[i][j]`: entrant `i`'s discounted payoff when playing
    /// against entrant `j` (row player's score, including `i == j`
    /// self-play).
    pub scores: Vec<Vec<f64>>,
    /// Stages played per match.
    pub stages: usize,
}

impl TournamentResult {
    /// Total score of entrant `i` across all its matches.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn total(&self, i: usize) -> f64 {
        self.scores[i].iter().sum()
    }

    /// Entrants ranked by total score, best first.
    #[must_use]
    pub fn ranking(&self) -> Vec<(String, f64)> {
        let mut order: Vec<(String, f64)> = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), self.total(i)))
            .collect();
        order.sort_by(|a, b| b.1.total_cmp(&a.1));
        order
    }
}

/// Runs a pairwise round robin: every ordered pair of entrants (self-play
/// included) plays a 2-player repeated MAC game for `stages` stages on the
/// analytical evaluator.
///
/// Matches are independent, so they are fanned out over the
/// `MACGAME_THREADS` worker pool (each match builds its own strategies,
/// evaluator and engine); scores land in the matrix in pair order, so the
/// result is identical for every thread count.
///
/// # Errors
///
/// Returns [`GameError::InvalidConfig`] for an empty field; propagates
/// engine failures.
pub fn round_robin(
    entrants: &[Entrant],
    template: &GameConfig,
    stages: usize,
) -> Result<TournamentResult, GameError> {
    if entrants.is_empty() {
        return Err(GameError::InvalidConfig("need at least one entrant".into()));
    }
    let game = GameConfig::builder(2)
        .params(*template.params())
        .utility(*template.utility())
        .stage_duration(template.stage_duration())
        .discount(template.discount())
        .w_max(template.w_max())
        .build()?;
    let n = entrants.len();
    let pairs: Vec<(usize, usize)> = (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
    telemetry::counter("core.tournament.matches", pairs.len() as u64);
    let _span = telemetry::span("core.tournament.round_robin");
    let played: Vec<Result<f64, GameError>> =
        rayon::map_in_order(pairs, resolve_threads(0), |(i, j)| {
            let players: Vec<Box<dyn Strategy>> =
                vec![(entrants[i].factory)(), (entrants[j].factory)()];
            let evaluator = Box::new(AnalyticalEvaluator::new(game.clone()));
            let mut rg = RepeatedGame::new(game.clone(), players, evaluator)?;
            rg.play(stages)?;
            Ok(rg.discounted_payoffs()[0])
        });
    let mut scores = vec![vec![0.0; n]; n];
    for (k, score) in played.into_iter().enumerate() {
        scores[k / n][k % n] = score?;
    }
    Ok(TournamentResult {
        names: entrants.iter().map(|e| e.name.clone()).collect(),
        scores,
        stages,
    })
}

/// Plays one mixed-population repeated game (entrant `k` controls player
/// `k`) and returns each entrant's discounted payoff.
///
/// # Errors
///
/// Propagates engine failures.
pub fn population_match(
    entrants: &[Entrant],
    template: &GameConfig,
    stages: usize,
) -> Result<Vec<(String, f64)>, GameError> {
    let game = GameConfig::builder(entrants.len())
        .params(*template.params())
        .utility(*template.utility())
        .stage_duration(template.stage_duration())
        .discount(template.discount())
        .w_max(template.w_max())
        .build()?;
    let players: Vec<Box<dyn Strategy>> = entrants.iter().map(|e| (e.factory)()).collect();
    let evaluator = Box::new(AnalyticalEvaluator::new(game.clone()));
    let mut rg = RepeatedGame::new(game, players, evaluator)?;
    rg.play(stages)?;
    Ok(entrants
        .iter()
        .map(|e| e.name.clone())
        .zip(rg.discounted_payoffs())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::efficient_ne;
    use crate::strategy::{Constant, GenerousTft, Tft};

    fn template() -> GameConfig {
        GameConfig::builder(2).discount(0.999).build().unwrap()
    }

    fn field(w_star: u32) -> Vec<Entrant> {
        vec![
            Entrant::new("tft", move || Box::new(Tft::new(w_star))),
            Entrant::new("gtft", move || Box::new(GenerousTft::try_new(w_star, 2, 0.9).expect("valid GTFT parameters"))),
            Entrant::new("aggressor", move || Box::new(Constant::new((w_star / 4).max(1)))),
            Entrant::new("compliant", move || Box::new(Constant::new(w_star))),
        ]
    }

    #[test]
    fn tft_self_play_beats_aggressor_self_play() {
        let t = template();
        let two = GameConfig::builder(2).build().unwrap();
        let w_star = efficient_ne(&two).unwrap().window;
        let result = round_robin(&field(w_star), &t, 30).unwrap();
        let idx = |name: &str| result.names.iter().position(|n| n == name).unwrap();
        let tft = idx("tft");
        let agg = idx("aggressor");
        assert!(
            result.scores[tft][tft] > result.scores[agg][agg],
            "cooperative self-play must dominate mutual aggression"
        );
    }

    #[test]
    fn reciprocators_win_among_reciprocators() {
        // Axelrod's condition: in a field of *conditional* cooperators,
        // the reciprocal strategies outrank the unconditional aggressor —
        // every exploitation attempt is punished for the rest of the match.
        let t = template();
        let two = GameConfig::builder(2).build().unwrap();
        let w_star = efficient_ne(&two).unwrap().window;
        let field: Vec<Entrant> = vec![
            Entrant::new("tft", move || Box::new(Tft::new(w_star))),
            Entrant::new("gtft", move || Box::new(GenerousTft::try_new(w_star, 2, 0.9).expect("valid GTFT parameters"))),
            Entrant::new("aggressor", move || Box::new(Constant::new((w_star / 8).max(1)))),
        ];
        let result = round_robin(&field, &t, 30).unwrap();
        let ranking = result.ranking();
        let rank_of = |name: &str| ranking.iter().position(|(n, _)| n == name).unwrap();
        assert!(rank_of("tft") < rank_of("aggressor"), "ranking was {ranking:?}");
        assert!(rank_of("gtft") < rank_of("aggressor"), "ranking was {ranking:?}");
    }

    #[test]
    fn a_sucker_in_the_field_can_hand_the_tournament_to_the_aggressor() {
        // The flip side — and a genuine property of this game's flat payoff
        // curve: punishment costs the aggressor little, so one unconditional
        // cooperator to feast on can carry it to the top of the table. TFT
        // protects *its own* payoff, not the ranking.
        let t = template();
        let two = GameConfig::builder(2).build().unwrap();
        let w_star = efficient_ne(&two).unwrap().window;
        let result = round_robin(&field(w_star), &t, 30).unwrap();
        let idx = |name: &str| result.names.iter().position(|n| n == name).unwrap();
        // The aggressor's biggest single score is against the sucker.
        let agg = idx("aggressor");
        let best_prey = result.scores[agg]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best_prey, idx("compliant"));
    }

    #[test]
    fn aggressor_exploits_unconditional_compliance() {
        // Head-to-head, the aggressor beats a strategy that never punishes
        // — exactly why reciprocity (not politeness) sustains the NE.
        let t = template();
        let two = GameConfig::builder(2).build().unwrap();
        let w_star = efficient_ne(&two).unwrap().window;
        let result = round_robin(&field(w_star), &t, 30).unwrap();
        let idx = |name: &str| result.names.iter().position(|n| n == name).unwrap();
        let agg = idx("aggressor");
        let comp = idx("compliant");
        assert!(result.scores[agg][comp] > result.scores[comp][agg]);
    }

    #[test]
    fn population_match_reports_everyone() {
        let t = template();
        let two = GameConfig::builder(2).build().unwrap();
        let w_star = efficient_ne(&two).unwrap().window;
        let result = population_match(&field(w_star), &t, 10).unwrap();
        assert_eq!(result.len(), 4);
        assert!(result.iter().all(|(_, p)| p.is_finite()));
    }

    #[test]
    fn empty_field_rejected() {
        assert!(round_robin(&[], &template(), 5).is_err());
    }
}
