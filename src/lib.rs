//! `macgame` — a reproduction of *"Selfishness, Not Always A Nightmare:
//! Modeling Selfish MAC Behaviors in Wireless Mobile Ad Hoc Networks"*
//! (Lin Chen & Jean Leneutre, ICDCS 2007) as a Rust workspace.
//!
//! This facade crate re-exports the four library crates:
//!
//! * [`dcf`] — analytical IEEE 802.11 DCF model with heterogeneous
//!   contention windows (Bianchi-style Markov chain, fixed point,
//!   throughput, utility, symmetric optimum);
//! * [`sim`] — slot-level discrete-event simulator of saturated DCF
//!   (basic and RTS/CTS), the measurement substrate standing in for NS-2;
//! * [`game`] — the repeated non-cooperative MAC game: TFT/GTFT
//!   strategies, Nash equilibria and refinement, the distributed
//!   equilibrium-search protocol, short-sighted and malicious deviations;
//! * [`multihop`] — mobility, topology, hidden terminals, local games and
//!   network-wide TFT convergence (Theorem 3), with quasi-optimality
//!   metrics.
//!
//! # The paper in one assertion
//!
//! ```
//! use macgame::game::equilibrium::{check_symmetric_ne, efficient_ne, DEFAULT_NE_EPSILON};
//! use macgame::game::GameConfig;
//!
//! // Five selfish, long-sighted, TFT-playing saturated nodes…
//! let game = GameConfig::builder(5).build()?;
//! let ne = efficient_ne(&game)?;
//! // …self-organize onto a contention window that is simultaneously a
//! // Nash equilibrium and the social optimum: selfishness, not a nightmare.
//! assert!(check_symmetric_ne(&game, ne.window, 1, DEFAULT_NE_EPSILON)?.is_ne);
//! # Ok::<(), macgame::game::GameError>(())
//! ```

#![warn(missing_docs)]

pub use macgame_core as game;
pub use macgame_dcf as dcf;
pub use macgame_multihop as multihop;
pub use macgame_sim as sim;
