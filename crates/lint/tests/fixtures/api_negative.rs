// Lint fixture: no API-discipline rule should fire on this file.
use std::sync::atomic::{AtomicU64, Ordering};

fn fallible_constructors() -> Result<(), String> {
    let g = GenerousTft::try_new(3, 0.9).map_err(|e| e.to_string())?;
    let h = HillClimb::try_new(1, 8).map_err(|e| e.to_string())?;
    let _ = (g, h);
    Ok(())
}

fn strongly_ordered(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::SeqCst);
    counter.load(Ordering::Acquire)
}
