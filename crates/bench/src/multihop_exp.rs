//! The Section VII.B multi-hop experiment.
//!
//! 100 nodes under random waypoint in 1 km² with 250 m RTS/CTS radios:
//! local games → TFT convergence to `W_m` → quasi-optimality of the
//! converged NE (paper: converged CW 26 in their scenario; each node gets
//! ≥ 96 % of its max local payoff; global payoff within 3 % of optimum),
//! plus the `p_hn`-vs-CW table that justifies the Section VI.A
//! approximation.

use macgame_dcf::MicroSecs;
use macgame_multihop::convergence::tft_converge;
use macgame_multihop::localgame::{analytic_p_hn, local_optimal_windows, local_taus, LocalRule};
use macgame_multihop::metrics::{evaluate_quasi_optimality, QuasiOptimality};
use macgame_multihop::spatialsim::{SpatialConfig, SpatialEngine};
use serde::{Deserialize, Serialize};

use crate::BenchError;

/// Experiment knobs (scaled down by `--quick`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultihopSettings {
    /// Node count (paper: 100).
    pub n: usize,
    /// Placement/mobility seed.
    pub seed: u64,
    /// Measurement duration per sweep point (paper: 1000 s).
    pub duration: MicroSecs,
    /// How many nodes to sample for the local metric.
    pub sample_size: usize,
}

impl MultihopSettings {
    /// The paper-faithful configuration (long; ~minutes of CPU).
    #[must_use]
    pub fn full() -> Self {
        MultihopSettings {
            n: 100,
            seed: 7,
            duration: MicroSecs::from_seconds(1000.0),
            sample_size: 10,
        }
    }

    /// A minutes-to-seconds scale-down for CI and `--quick`.
    #[must_use]
    pub fn quick() -> Self {
        MultihopSettings {
            n: 100,
            seed: 7,
            duration: MicroSecs::from_seconds(60.0),
            sample_size: 6,
        }
    }
}

/// Results of the Section VII.B experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultihopOutcome {
    /// Settings used.
    pub settings: MultihopSettings,
    /// Whether the placement's topology was connected.
    pub connected: bool,
    /// Topology diameter (None when disconnected).
    pub diameter: Option<usize>,
    /// Min/mean/max node degree.
    pub degrees: (usize, f64, usize),
    /// Min/max of the local optimal windows.
    pub local_window_range: (u32, u32),
    /// TFT rounds to convergence.
    pub convergence_rounds: usize,
    /// The converged NE window `W_m` (paper run: 26).
    pub w_m: u32,
    /// Quasi-optimality measurements at `W_m`.
    pub quality: QuasiOptimality,
    /// `(window, measured p_hn, analytic p_hn)` samples validating the
    /// CW-independence approximation and the slotted interference model.
    pub p_hn_by_window: Vec<(u32, f64, f64)>,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates model/simulator failures.
pub fn run(settings: MultihopSettings) -> Result<MultihopOutcome, BenchError> {
    let config = SpatialConfig::paper(settings.seed);
    let engine = SpatialEngine::new(settings.n, &vec![64; settings.n], config.clone())?;
    let positions = engine.positions().to_vec();
    let topo = engine.topology().clone();
    let degrees: Vec<usize> = (0..settings.n).map(|i| topo.degree(i)).collect();

    let local = local_optimal_windows(
        &topo,
        &config.params,
        &config.utility,
        2048,
        LocalRule::ExactArgmax,
    )?;
    let trace = tft_converge(&topo, &local)?;
    let w_m = trace.converged_window().unwrap_or_else(|| {
        // Disconnected placements: evaluate the largest component's min.
        let comp = topo.components().into_iter().max_by_key(Vec::len).expect("nonempty"); // PANIC-POLICY: invariant: nonempty
        comp.iter().map(|&i| trace.final_windows[i]).min().expect("nonempty component") // PANIC-POLICY: invariant: nonempty component
    });

    let sweep: Vec<u32> =
        [w_m / 4, w_m / 2, w_m, w_m * 2, w_m * 4].into_iter().filter(|&w| w >= 1).collect();
    let sample: Vec<usize> = (0..settings.n)
        .filter(|&i| topo.degree(i) >= 1)
        .step_by((settings.n / settings.sample_size).max(1))
        .take(settings.sample_size)
        .collect();
    // The paper measures on the mobile network over 1000 s; mobility
    // averaging is what makes per-node payoffs quasi-uniform.
    let quality = evaluate_quasi_optimality(
        &positions,
        w_m,
        &sweep,
        &sample,
        &sweep,
        &config,
        settings.duration,
    )?;

    // p_hn per window, on the static snapshot (topology held fixed so the
    // comparison isolates the CW effect).
    let static_config = SpatialConfig { mobility: None, ..config };
    let mut p_hn_by_window = Vec::new();
    let p_hn_duration = MicroSecs::from_seconds((settings.duration.to_seconds() / 10.0).max(5.0));
    for &w in &sweep {
        let mut engine = SpatialEngine::with_positions(
            positions.clone(),
            &vec![w; settings.n],
            static_config.clone(),
        )?;
        let report = engine.run_for(p_hn_duration);
        if let Some(p_hn) = report.network_p_hn() {
            let taus = local_taus(&topo, w, &static_config.params)?;
            let analytic = analytic_p_hn(&topo, &taus)?;
            let analytic_mean =
                analytic.iter().sum::<f64>() / analytic.len() as f64;
            p_hn_by_window.push((w, p_hn, analytic_mean));
        }
    }

    Ok(MultihopOutcome {
        settings,
        connected: topo.is_connected(),
        diameter: topo.diameter(),
        degrees: (
            degrees.iter().copied().min().expect("nonempty"), // PANIC-POLICY: invariant: nonempty
            degrees.iter().sum::<usize>() as f64 / settings.n as f64,
            degrees.iter().copied().max().expect("nonempty"), // PANIC-POLICY: invariant: nonempty
        ),
        local_window_range: (
            *local.iter().min().expect("nonempty"), // PANIC-POLICY: invariant: nonempty
            *local.iter().max().expect("nonempty"), // PANIC-POLICY: invariant: nonempty
        ),
        convergence_rounds: trace.rounds_needed,
        w_m,
        quality,
        p_hn_by_window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_reproduces_the_shape() {
        let settings = MultihopSettings {
            n: 60,
            seed: 7,
            duration: MicroSecs::from_seconds(20.0),
            sample_size: 4,
        };
        let out = run(settings).unwrap();
        // Converged window is a small two-digit number like the paper's 26.
        assert!(
            (5..=80).contains(&out.w_m),
            "W_m = {} far from the paper's scale",
            out.w_m
        );
        // Convergence within the diameter (when connected).
        if let Some(d) = out.diameter {
            assert!(out.convergence_rounds <= d);
        }
        // Quasi-optimality: the global payoff at W_m is most of the best.
        assert!(
            out.quality.global_fraction > 0.75,
            "global fraction {}",
            out.quality.global_fraction
        );
        // p_hn stays in a credible band and doesn't explode across CWs.
        for &(w, p_hn, analytic) in &out.p_hn_by_window {
            assert!((0.4..=1.0).contains(&p_hn), "W={w}: p_hn={p_hn}");
            assert!(
                (p_hn - analytic).abs() < 0.2,
                "W={w}: measured {p_hn} vs analytic {analytic}"
            );
        }
    }
}
