//! Standalone entry point: `cargo run -p macgame-lint [-- <root>]`.
//!
//! Lints the enclosing workspace (or an explicit root), prints the finding
//! table, writes `artifacts/LINT.json` under the root, and exits nonzero
//! on any unwaived finding — the same gate `repro -- lint` and CI apply.

use std::path::PathBuf;
use std::process::ExitCode;

use macgame_lint::{find_workspace_root, run_lint};

fn main() -> ExitCode {
    let arg_root = std::env::args().nth(1).map(PathBuf::from);
    let root = match arg_root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("macgame-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("macgame-lint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("macgame-lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_text());
    let artifact_dir = root.join("artifacts");
    let artifact = artifact_dir.join("LINT.json");
    if let Err(e) =
        std::fs::create_dir_all(&artifact_dir).and_then(|()| std::fs::write(&artifact, report.to_json()))
    {
        eprintln!("macgame-lint: cannot write {}: {e}", artifact.display());
        return ExitCode::from(2);
    }
    println!("artifact: {}", artifact.display());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "macgame-lint: {} unwaived finding(s); fix them or add a waiver with a \
             rationale to lint-allow.toml",
            report.unwaived().len()
        );
        ExitCode::FAILURE
    }
}
