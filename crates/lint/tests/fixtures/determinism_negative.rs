// Lint fixture: no determinism rule should fire on this file.
use std::collections::BTreeMap;
use std::collections::BTreeSet;

fn containers() -> usize {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    let s: BTreeSet<u32> = BTreeSet::new();
    m.len() + s.len()
}

fn strings_do_not_count() -> &'static str {
    // Identifiers inside literals and comments are data, not code:
    // HashMap, Instant::now(), thread_rng().
    "HashMap Instant::now thread_rng from_entropy"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let m: HashMap<u32, u32> = HashMap::new();
        let t = std::time::Instant::now();
        let mut rng = rand::thread_rng();
        assert!(m.is_empty() && t.elapsed().as_nanos() < u128::MAX && rng.gen::<bool>() || true);
    }
}
