//! Noisy-observation channel for contention-window estimates.
//!
//! Strategies like TFT and Generous TFT act on *estimates* of their
//! peers' windows, obtained by overhearing traffic. This module models
//! the estimation error explicitly: multiplicative noise (proportional
//! estimation error), additive noise (quantization/offset error), stale
//! reads (a node repeats its previous estimate) and dropped observations
//! (no estimate at all this stage — the previous one, or the prior
//! belief, is carried forward).

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::{require_probability, FaultError};

/// Configuration of the noisy-observation channel.
///
/// All-zero parameters make the channel a no-op ([`Self::is_noop`]): the
/// perturbation path is skipped entirely and no randomness is drawn, so
/// a zero-rate channel is bitwise identical to having no channel at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservationFaults {
    /// Relative multiplicative noise amplitude `a ≥ 0`: a true window `W`
    /// is observed as `W·(1 + ε)` with `ε ~ U[−a, a]`.
    pub multiplicative: f64,
    /// Absolute additive noise amplitude `b ≥ 0` (in window units):
    /// adds `U[−b, b]` after the multiplicative term.
    pub additive: f64,
    /// Probability a stage's observation of a node is *stale*: the
    /// previous stage's estimate is reported again.
    pub stale_prob: f64,
    /// Probability a stage's observation of a node is *dropped*: the
    /// previous estimate (or, if none exists, the true value) is kept.
    pub drop_prob: f64,
    /// Base seed of the channel's private ChaCha8 stream.
    pub seed: u64,
}

impl ObservationFaults {
    /// A validated fault configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParameter`] when an amplitude is
    /// negative or non-finite, when `stale_prob`/`drop_prob` are not
    /// probabilities, or when `multiplicative ≥ 1` (which could drive
    /// every observation to the `W = 1` floor and make the channel
    /// degenerate).
    pub fn new(
        multiplicative: f64,
        additive: f64,
        stale_prob: f64,
        drop_prob: f64,
        seed: u64,
    ) -> Result<Self, FaultError> {
        if !multiplicative.is_finite() || !(0.0..1.0).contains(&multiplicative) {
            return Err(FaultError::invalid("multiplicative", "must be in [0, 1)"));
        }
        if !additive.is_finite() || additive < 0.0 {
            return Err(FaultError::invalid("additive", "must be finite and non-negative"));
        }
        require_probability("stale_prob", stale_prob)?;
        require_probability("drop_prob", drop_prob)?;
        Ok(ObservationFaults { multiplicative, additive, stale_prob, drop_prob, seed })
    }

    /// A channel that never perturbs anything (and never draws).
    #[must_use]
    pub fn noop() -> Self {
        ObservationFaults {
            multiplicative: 0.0,
            additive: 0.0,
            stale_prob: 0.0,
            drop_prob: 0.0,
            seed: 0,
        }
    }

    /// Pure multiplicative noise of amplitude `a`, the regime the paper's
    /// Generous TFT tolerance `β` is calibrated against.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParameter`] unless `a ∈ [0, 1)`.
    pub fn noise(a: f64, seed: u64) -> Result<Self, FaultError> {
        Self::new(a, 0.0, 0.0, 0.0, seed)
    }

    /// Whether every fault rate is zero — the channel injects nothing.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.multiplicative == 0.0
            && self.additive == 0.0
            && self.stale_prob == 0.0
            && self.drop_prob == 0.0
    }
}

/// A stateful observation channel: owns the fault stream and the
/// previous-estimate memory needed for stale/dropped reads.
///
/// One channel models the shared promiscuous-mode observation of one
/// game; call [`Self::observe`] once per stage with the true profile.
#[derive(Debug, Clone)]
pub struct ObservationChannel {
    faults: ObservationFaults,
    rng: ChaCha8Rng,
    previous: Vec<Option<u32>>,
}

impl ObservationChannel {
    /// A channel for `nodes` observed nodes under `faults`.
    #[must_use]
    pub fn new(faults: ObservationFaults, nodes: usize) -> Self {
        let rng = crate::rng::stream_rng(faults.seed, "observation", 0);
        ObservationChannel { faults, rng, previous: vec![None; nodes] }
    }

    /// The channel's configuration.
    #[must_use]
    pub fn faults(&self) -> &ObservationFaults {
        &self.faults
    }

    /// Perturbs one stage's true window profile into the estimates the
    /// players actually see, clamped into `[1, w_max]`.
    ///
    /// A no-op configuration returns `true_windows` verbatim without
    /// touching the RNG. Otherwise, per node and in node order: with
    /// `drop_prob` the previous estimate (or the true value, before any
    /// estimate exists) is kept; with `stale_prob` the previous estimate
    /// is repeated; else a fresh noisy read
    /// `W·(1 + U[−a, a]) + U[−b, b]` is taken.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParameter`] if the profile length
    /// differs from the channel's node count.
    pub fn observe(&mut self, true_windows: &[u32], w_max: u32) -> Result<Vec<u32>, FaultError> {
        if true_windows.len() != self.previous.len() {
            return Err(FaultError::invalid(
                "true_windows",
                format!("{} entries for {} observed nodes", true_windows.len(), self.previous.len()),
            ));
        }
        if self.faults.is_noop() {
            return Ok(true_windows.to_vec());
        }
        let w_max = w_max.max(1);
        let mut observed = Vec::with_capacity(true_windows.len());
        for (i, &truth) in true_windows.iter().enumerate() {
            // Fixed draw order per node keeps the stream independent of
            // which branch wins: decision draws first, then noise draws
            // only on the fresh-read branch.
            let dropped = self.faults.drop_prob > 0.0 && self.rng.gen_bool(self.faults.drop_prob);
            let stale = self.faults.stale_prob > 0.0 && self.rng.gen_bool(self.faults.stale_prob);
            let estimate = if dropped {
                self.previous[i].unwrap_or(truth)
            } else if stale {
                match self.previous[i] {
                    Some(prev) => prev,
                    None => self.fresh_read(truth, w_max),
                }
            } else {
                self.fresh_read(truth, w_max)
            };
            self.previous[i] = Some(estimate);
            observed.push(estimate);
        }
        macgame_telemetry::counter("faults.observation.stages", 1);
        Ok(observed)
    }

    fn fresh_read(&mut self, truth: u32, w_max: u32) -> u32 {
        let mut value = f64::from(truth);
        if self.faults.multiplicative > 0.0 {
            let a = self.faults.multiplicative;
            value *= 1.0 + self.rng.gen_range(-a..=a);
        }
        if self.faults.additive > 0.0 {
            let b = self.faults.additive;
            value += self.rng.gen_range(-b..=b);
        }
        let rounded = value.round();
        if rounded <= 1.0 {
            1
        } else if rounded >= f64::from(w_max) {
            w_max
        } else {
            rounded as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ObservationFaults::new(1.0, 0.0, 0.0, 0.0, 0).is_err());
        assert!(ObservationFaults::new(-0.1, 0.0, 0.0, 0.0, 0).is_err());
        assert!(ObservationFaults::new(0.0, -1.0, 0.0, 0.0, 0).is_err());
        assert!(ObservationFaults::new(0.0, 0.0, 1.5, 0.0, 0).is_err());
        assert!(ObservationFaults::new(0.0, 0.0, 0.0, -0.5, 0).is_err());
        assert!(ObservationFaults::new(0.3, 2.0, 0.1, 0.1, 0).is_ok());
    }

    #[test]
    fn noop_channel_is_identity_and_never_draws() {
        let mut channel = ObservationChannel::new(ObservationFaults::noop(), 3);
        let rng_before = channel.rng.clone();
        let out = channel.observe(&[10, 20, 30], 1024).unwrap();
        assert_eq!(out, vec![10, 20, 30]);
        // The RNG state is untouched: bitwise identity with no channel.
        use rand::RngCore;
        assert_eq!(channel.rng.next_u64(), rng_before.clone().next_u64());
    }

    #[test]
    fn noisy_reads_stay_clamped_and_deterministic() {
        let faults = ObservationFaults::noise(0.3, 42).unwrap();
        let mut a = ObservationChannel::new(faults, 2);
        let mut b = ObservationChannel::new(faults, 2);
        for _ in 0..50 {
            let oa = a.observe(&[2, 900], 1000).unwrap();
            let ob = b.observe(&[2, 900], 1000).unwrap();
            assert_eq!(oa, ob);
            assert!(oa.iter().all(|&w| (1..=1000).contains(&w)));
        }
    }

    #[test]
    fn dropped_observation_repeats_the_previous_estimate() {
        let faults = ObservationFaults::new(0.0, 0.0, 0.0, 1.0, 7).unwrap();
        let mut channel = ObservationChannel::new(faults, 1);
        // First stage: nothing to carry forward, the truth is kept.
        assert_eq!(channel.observe(&[50], 1024).unwrap(), vec![50]);
        // The node moves; the channel still reports the old estimate.
        assert_eq!(channel.observe(&[10], 1024).unwrap(), vec![50]);
    }

    #[test]
    fn stale_reads_lag_one_stage() {
        let faults = ObservationFaults::new(0.0, 0.0, 1.0, 0.0, 7).unwrap();
        let mut channel = ObservationChannel::new(faults, 1);
        assert_eq!(channel.observe(&[40], 1024).unwrap(), vec![40]);
        assert_eq!(channel.observe(&[20], 1024).unwrap(), vec![40]);
        assert_eq!(channel.observe(&[20], 1024).unwrap(), vec![40]);
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let mut channel = ObservationChannel::new(ObservationFaults::noop(), 2);
        assert!(channel.observe(&[1, 2, 3], 64).is_err());
    }
}
