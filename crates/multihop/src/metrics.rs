//! Quasi-optimality metrics for the converged multi-hop NE
//! (paper Section VII.B).
//!
//! The paper reports that at the converged NE `W_m`: (1) each node gets at
//! least 96 % of the best *local* payoff it can reach as the common CW
//! varies (under TFT a CW change propagates, so the sweep moves everyone
//! together); (2) the *global* payoff is within 3 % of the best achievable
//! by any common CW. These functions measure both on the spatial simulator
//! with frozen seeds, so every candidate window faces the same topology
//! and noise. [`unilateral_quality`] additionally quantifies the
//! no-reaction deviation temptation that TFT punishment deters.

use macgame_dcf::MicroSecs;
use serde::{Deserialize, Serialize};

use crate::error::MultihopError;
use crate::geometry::Point;
use crate::spatialsim::{SpatialConfig, SpatialEngine};

/// A `(window, measured global payoff rate)` sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlobalSample {
    /// The common window applied to all nodes.
    pub window: u32,
    /// Measured network-wide payoff rate (per µs).
    pub payoff: f64,
}

/// Measures the global payoff with every node on the common window `w`.
///
/// The engine is rebuilt per call with the same seed and positions, so
/// sweeps are paired comparisons.
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn global_payoff_at(
    positions: &[Point],
    w: u32,
    config: &SpatialConfig,
    duration: MicroSecs,
) -> Result<f64, MultihopError> {
    let n = positions.len();
    let mut engine = SpatialEngine::with_positions(positions.to_vec(), &vec![w; n], config.clone())?;
    let report = engine.run_for(duration);
    Ok(report.global_payoff_rate(&config.utility))
}

/// Sweeps the common window over `windows` and reports the global payoff
/// of each (paper Figures 2–3's multi-hop analogue).
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn sweep_global(
    positions: &[Point],
    windows: &[u32],
    config: &SpatialConfig,
    duration: MicroSecs,
) -> Result<Vec<GlobalSample>, MultihopError> {
    windows
        .iter()
        .map(|&w| Ok(GlobalSample { window: w, payoff: global_payoff_at(positions, w, config, duration)? }))
        .collect()
}

/// One node's local quasi-optimality: its payoff at `W_m` as a fraction of
/// its best payoff over the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalQuality {
    /// The node assessed.
    pub node: usize,
    /// Payoff at the NE window.
    pub payoff_at_ne: f64,
    /// Best payoff over the sweep and the window achieving it.
    pub best: (u32, f64),
    /// `payoff_at_ne / best` (clamped into `[0, 1]` for positive payoffs).
    pub fraction: f64,
}

/// Measures [`LocalQuality`] for each node in `sample_nodes` the way the
/// paper's Section VII.B does: the **common** window sweeps
/// `candidate_windows` (everyone moves together, which is what varying a
/// CW means under TFT — the network follows), and each node's payoff curve
/// over the common window is compared to its value at `w_m`.
///
/// For the *unilateral* temptation (one node deviates, nobody reacts) —
/// which TFT punishment exists to deter, and which is **not** the paper's
/// 96 % metric — see [`unilateral_quality`].
///
/// # Errors
///
/// Returns [`MultihopError::InvalidInput`] if a sampled index is out of
/// range or the sweep is empty; propagates engine failures.
pub fn local_quality(
    positions: &[Point],
    w_m: u32,
    sample_nodes: &[usize],
    candidate_windows: &[u32],
    config: &SpatialConfig,
    duration: MicroSecs,
) -> Result<Vec<LocalQuality>, MultihopError> {
    if candidate_windows.is_empty() {
        return Err(MultihopError::InvalidInput("empty candidate sweep".into()));
    }
    let n = positions.len();
    for &node in sample_nodes {
        if node >= n {
            return Err(MultihopError::InvalidInput(format!("node {node} out of range")));
        }
    }
    // One run per common window serves every sampled node.
    let mut sweep: Vec<(u32, Vec<f64>)> = Vec::with_capacity(candidate_windows.len() + 1);
    let mut windows_to_run: Vec<u32> = candidate_windows.to_vec();
    if !windows_to_run.contains(&w_m) {
        windows_to_run.push(w_m);
    }
    for &w in &windows_to_run {
        let mut engine =
            SpatialEngine::with_positions(positions.to_vec(), &vec![w; n], config.clone())?;
        let report = engine.run_for(duration);
        let payoffs =
            (0..n).map(|i| report.payoff_rate(i, &config.utility)).collect::<Vec<_>>();
        sweep.push((w, payoffs));
    }
    let mut out = Vec::with_capacity(sample_nodes.len());
    for &node in sample_nodes {
        let payoff_at_ne = sweep
            .iter()
            .find(|(w, _)| *w == w_m)
            .map(|(_, p)| p[node])
            .expect("w_m was added to the sweep"); // PANIC-POLICY: invariant: w_m was added to the sweep
        let best = sweep
            .iter()
            .map(|(w, p)| (*w, p[node]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("nonempty sweep"); // PANIC-POLICY: invariant: nonempty sweep
        let fraction = if best.1 > 0.0 { (payoff_at_ne / best.1).min(1.0) } else { 1.0 };
        out.push(LocalQuality { node, payoff_at_ne, best, fraction });
    }
    Ok(out)
}

/// The unilateral-deviation temptation: node `i` alone sweeps
/// `candidate_windows` while everyone else stays pinned at `w_m` and *does
/// not react*. The resulting fractions are far below 1 — this is exactly
/// the short-term gain that the TFT punishment of Theorem 3 prices away,
/// quantified on the spatial simulator.
///
/// # Errors
///
/// Same conditions as [`local_quality`].
pub fn unilateral_quality(
    positions: &[Point],
    w_m: u32,
    sample_nodes: &[usize],
    candidate_windows: &[u32],
    config: &SpatialConfig,
    duration: MicroSecs,
) -> Result<Vec<LocalQuality>, MultihopError> {
    if candidate_windows.is_empty() {
        return Err(MultihopError::InvalidInput("empty candidate sweep".into()));
    }
    let n = positions.len();
    let mut out = Vec::with_capacity(sample_nodes.len());
    for &node in sample_nodes {
        if node >= n {
            return Err(MultihopError::InvalidInput(format!("node {node} out of range")));
        }
        let mut payoff_at_ne = None;
        let mut best: Option<(u32, f64)> = None;
        let mut windows_to_run: Vec<u32> = candidate_windows.to_vec();
        if !windows_to_run.contains(&w_m) {
            windows_to_run.push(w_m);
        }
        for &w in &windows_to_run {
            let mut windows = vec![w_m; n];
            windows[node] = w;
            let mut engine =
                SpatialEngine::with_positions(positions.to_vec(), &windows, config.clone())?;
            let report = engine.run_for(duration);
            let payoff = report.payoff_rate(node, &config.utility);
            if w == w_m {
                payoff_at_ne = Some(payoff);
            }
            if best.map_or(true, |(_, b)| payoff > b) {
                best = Some((w, payoff));
            }
        }
        let payoff_at_ne = payoff_at_ne.expect("w_m was added to the sweep"); // PANIC-POLICY: invariant: w_m was added to the sweep
        let best = best.expect("nonempty sweep"); // PANIC-POLICY: invariant: nonempty sweep
        let fraction = if best.1 > 0.0 { (payoff_at_ne / best.1).min(1.0) } else { 1.0 };
        out.push(LocalQuality { node, payoff_at_ne, best, fraction });
    }
    Ok(out)
}

/// Summary of the Section VII.B quasi-optimality evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuasiOptimality {
    /// The converged NE window evaluated.
    pub w_m: u32,
    /// Global payoff at `w_m` divided by the sweep's best global payoff.
    pub global_fraction: f64,
    /// The global sweep samples.
    pub global_sweep: Vec<GlobalSample>,
    /// Per-sampled-node local quality.
    pub local: Vec<LocalQuality>,
}

impl QuasiOptimality {
    /// The worst sampled node's local fraction (the paper's "at least
    /// 96 %" number).
    #[must_use]
    pub fn min_local_fraction(&self) -> f64 {
        self.local.iter().map(|l| l.fraction).fold(f64::INFINITY, f64::min)
    }
}

/// Runs the full quasi-optimality evaluation at `w_m`.
///
/// # Errors
///
/// Propagates failures from [`sweep_global`] and [`local_quality`].
pub fn evaluate_quasi_optimality(
    positions: &[Point],
    w_m: u32,
    global_windows: &[u32],
    sample_nodes: &[usize],
    local_windows: &[u32],
    config: &SpatialConfig,
    duration: MicroSecs,
) -> Result<QuasiOptimality, MultihopError> {
    let global_sweep = sweep_global(positions, global_windows, config, duration)?;
    let at_ne = match global_sweep.iter().find(|s| s.window == w_m) {
        Some(s) => s.payoff,
        None => global_payoff_at(positions, w_m, config, duration)?,
    };
    let best = global_sweep.iter().map(|s| s.payoff).fold(at_ne, f64::max);
    let global_fraction = if best > 0.0 { (at_ne / best).min(1.0) } else { 1.0 };
    let local = local_quality(positions, w_m, sample_nodes, local_windows, config, duration)?;
    Ok(QuasiOptimality { w_m, global_fraction, global_sweep, local })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Arena;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn static_config(seed: u64) -> SpatialConfig {
        SpatialConfig { mobility: None, ..SpatialConfig::paper(seed) }
    }

    fn random_positions(n: usize, seed: u64) -> Vec<Point> {
        let arena = Arena::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| arena.random_point(&mut rng)).collect()
    }

    #[test]
    fn global_sweep_is_unimodal_ish() {
        // Dense cluster (one contention domain of 15 nodes): the pile-up
        // at W = 2 must lose to a window near the cluster's optimum.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let positions: Vec<Point> = (0..15)
            .map(|_| {
                Point::new(500.0 + rng.gen_range(-25.0..25.0), 500.0 + rng.gen_range(-25.0..25.0))
            })
            .collect();
        let config = static_config(2);
        let dur = MicroSecs::from_seconds(4.0);
        let sweep = sweep_global(&positions, &[2, 48, 1024], &config, dur).unwrap();
        assert_eq!(sweep.len(), 3);
        let p2 = sweep[0].payoff;
        let p48 = sweep[1].payoff;
        let p1024 = sweep[2].payoff;
        assert!(p48 > p2, "W=48 ({p48}) should beat W=2 ({p2})");
        assert!(p48 > p1024, "W=48 ({p48}) should beat W=1024 ({p1024})");
    }

    #[test]
    fn local_quality_fraction_in_unit_range() {
        let positions = random_positions(10, 3);
        let config = static_config(4);
        let dur = MicroSecs::from_seconds(3.0);
        let quality =
            local_quality(&positions, 16, &[0, 3], &[8, 16, 32], &config, dur).unwrap();
        assert_eq!(quality.len(), 2);
        for q in &quality {
            assert!((0.0..=1.0).contains(&q.fraction), "fraction {}", q.fraction);
        }
    }

    #[test]
    fn quasi_optimality_summary() {
        let positions = random_positions(10, 5);
        let config = static_config(6);
        let dur = MicroSecs::from_seconds(3.0);
        let q = evaluate_quasi_optimality(
            &positions,
            16,
            &[8, 16, 32],
            &[1],
            &[8, 16, 32],
            &config,
            dur,
        )
        .unwrap();
        assert!((0.0..=1.0).contains(&q.global_fraction));
        assert!((0.0..=1.0).contains(&q.min_local_fraction()));
        assert_eq!(q.w_m, 16);
    }

    #[test]
    fn unilateral_temptation_is_real() {
        // A lone deviator against a pinned crowd profits: its fraction at
        // the NE window is visibly below 1 (TFT exists to deter this).
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let positions: Vec<Point> = (0..10)
            .map(|_| {
                Point::new(500.0 + rng.gen_range(-50.0..50.0), 500.0 + rng.gen_range(-50.0..50.0))
            })
            .collect();
        let config = static_config(3);
        let dur = MicroSecs::from_seconds(4.0);
        let uni =
            unilateral_quality(&positions, 32, &[0], &[4, 8, 16, 32], &config, dur).unwrap();
        assert!(uni[0].fraction < 0.9, "fraction {}", uni[0].fraction);
        assert!(uni[0].best.0 < 32, "best deviation {}", uni[0].best.0);
    }

    #[test]
    fn validation() {
        let positions = random_positions(4, 7);
        let config = static_config(8);
        let dur = MicroSecs::from_seconds(1.0);
        assert!(local_quality(&positions, 16, &[9], &[8], &config, dur).is_err());
        assert!(local_quality(&positions, 16, &[0], &[], &config, dur).is_err());
    }
}
