//! The non-cooperative repeated MAC game over IEEE 802.11 contention
//! windows — the primary contribution of Chen & Leneutre's *"Selfishness,
//! Not Always A Nightmare"* (ICDCS 2007), reimplemented as a library.
//!
//! Selfish saturated nodes each pick a contention window every stage to
//! maximize their discounted utility. Under TIT-FOR-TAT play by
//! long-sighted players, the game admits a continuum of symmetric Nash
//! equilibria `[W_c⁰, W_c*]`, of which refinement keeps the unique
//! efficient NE `(W_c*, …, W_c*)` — selfishness does *not* collapse the
//! network; it drives it to the social optimum.
//!
//! * [`game`] — the game definition `G = (P, S, U, δ)` (Definition 1);
//! * [`strategy`] — TFT, Generous TFT, constant/malicious and myopic
//!   best-response strategies;
//! * [`evaluator`] — stage evaluation on the analytical model (exact) or
//!   the slot simulator (noisy measurement + estimated observation);
//! * [`repeated`] — the multi-stage driver with convergence detection;
//! * [`equilibrium`] — efficient NE, the Theorem 2 interval, explicit
//!   unilateral-deviation checks and the Section V.B refinement;
//! * [`search`] — the distributed Section V.C algorithm for finding
//!   `W_c*` without knowing `n`, plus the lying-broadcaster analysis;
//! * [`protocol`] — the same algorithm as message-passing node actors
//!   over a lossy broadcast bus, quantifying desync under message loss;
//! * [`deviation`] — short-sighted (V.D) and malicious (V.E) players;
//! * [`edca`] — the stage game lifted to the `(CWmin, m, AIFS, TXOP)`
//!   product space: per-knob cheating gains, tuple-lattice best response
//!   and TFT pricing over the `(CWmin, TXOP)` plane;
//! * [`lemmas`] — numeric verification of the ordering Lemmas 1 and 4;
//! * [`generalized`] / [`ratecontrol`] — the conclusion's claim made
//!   concrete: the same framework re-instantiated for selfish PHY-rate
//!   selection (where all-fast is the dominant-strategy NE and the
//!   802.11 performance anomaly is the externality);
//! * [`tournament`] / [`population`] — Axelrod-style round robins and
//!   replicator population dynamics that test TFT's "best strategy"
//!   reputation inside this game;
//! * [`detect`] — the detection-and-enforcement plane: sequential
//!   cheater detection (CUSUM + windowed threshold) over noisy
//!   observations, ROC sweeps under fault grids, detection-gated
//!   punishment strategies and adversarial tournaments.
//!
//! # Quick start
//!
//! ```
//! use macgame_core::equilibrium::{check_symmetric_ne, efficient_ne, DEFAULT_NE_EPSILON};
//! use macgame_core::GameConfig;
//!
//! let game = GameConfig::builder(5).build()?;
//! let ne = efficient_ne(&game)?;
//! // The efficient window is a Nash equilibrium under TFT…
//! assert!(check_symmetric_ne(&game, ne.window, 1, DEFAULT_NE_EPSILON)?.is_ne);
//! // …near the paper's Table II value of 76 for n = 5.
//! assert!((70..=85).contains(&ne.window));
//! # Ok::<(), macgame_core::GameError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod detect;
pub mod deviation;
pub mod edca;
pub mod equilibrium;
pub mod error;
pub mod evaluator;
pub mod game;
pub mod generalized;
pub mod history;
pub mod lemmas;
pub mod population;
pub mod protocol;
pub mod queries;
pub mod ratecontrol;
pub mod repeated;
pub mod search;
pub mod strategy;
pub mod tournament;

pub use edca::{
    edca_axis_sweep, edca_best_response, edca_cheating_gain, edca_deviator_stage, edca_plane_ne,
    edca_symmetric_stage, edca_wc_star, EdcaAxis, EdcaBestResponse, EdcaGainRow, EdcaLattice,
    EdcaPlaneCell, EdcaStageMemo,
};
pub use equilibrium::{check_symmetric_ne, efficient_ne, ne_interval, NeCheck, DEFAULT_NE_EPSILON};
pub use error::GameError;
pub use evaluator::{
    AnalyticalEvaluator, CachingEvaluator, NoisyObservationEvaluator, SimulatedEvaluator,
    StageEvaluator, StageOutcome,
};
pub use game::{GameConfig, GameConfigBuilder};
pub use queries::{evaluate_query, Query, QueryResult, SolveCaches};
pub use history::{History, StageRecord};
pub use repeated::{ConvergenceReport, RepeatedGame};
pub use search::{run_search, AnalyticProbe, SearchOutcome, SimulatedProbe};
pub use strategy::{BestResponse, Constant, GenerousTft, HillClimb, Strategy, Tft};
