//! Thread-aware collecting recorder and its deterministic JSON snapshot.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use crate::recorder::Recorder;

/// Number of internal shards. Counters and histograms are sharded by a hash
/// of the recording thread's id to keep hot-path contention low; shards are
/// merged with integer addition (and exact `min`/`max`) at snapshot time, so
/// the merged result does not depend on which thread recorded what.
const SHARDS: usize = 16;

/// Fixed histogram bucket bounds: a 1–2–5 series per decade covering
/// `1e-15 ..= 1e9`. Chosen to span both solver residuals (down to the
/// `1e-12` tolerance) and iteration/slot counts (up to hundreds of
/// millions) with ~3 buckets per decade.
fn bucket_bounds() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(75);
    for decade in -15i32..=9 {
        for mantissa in [1.0f64, 2.0, 5.0] {
            bounds.push(mantissa * 10f64.powi(decade));
        }
    }
    bounds
}

/// Per-shard mutable state. Metric names key `BTreeMap`s so iteration (and
/// therefore every snapshot) is in stable sorted order.
#[derive(Debug, Default)]
struct Shard {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, HistogramData>,
}

#[derive(Debug)]
struct HistogramData {
    /// `counts[i]` counts observations in `(bounds[i-1], bounds[i]]`;
    /// the final slot is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    min: f64,
    max: f64,
}

impl HistogramData {
    fn new(n_bounds: usize) -> Self {
        Self {
            counts: vec![0; n_bounds + 1],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn record(&mut self, bounds: &[f64], value: f64) {
        let idx = bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn merge_from(&mut self, other: &HistogramData) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct TimingData {
    count: u64,
    total_nanos: u64,
    max_nanos: u64,
}

/// A thread-aware [`Recorder`] that aggregates metrics in memory.
///
/// Counter and histogram updates go to one of `SHARDS` internal shards
/// selected by hashing the calling thread's id; gauges and span timings
/// (both low-rate, driver-side) share single mutexes. Gauges merge by
/// `max` at record time, and [`Self::snapshot`] merges the shards with
/// order-independent operations (integer sums, exact `min`/`max`), so
/// deterministic workloads produce bitwise-identical snapshots regardless
/// of `MACGAME_THREADS`.
pub struct CollectingRecorder {
    bounds: Vec<f64>,
    shards: Vec<Mutex<Shard>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    timings: Mutex<BTreeMap<&'static str, TimingData>>,
}

impl std::fmt::Debug for CollectingRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectingRecorder")
            .field("shards", &SHARDS)
            .finish()
    }
}

impl Default for CollectingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectingRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self {
            bounds: bucket_bounds(),
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            gauges: Mutex::new(BTreeMap::new()),
            timings: Mutex::new(BTreeMap::new()),
        }
    }

    fn shard(&self) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Merge all shards into an immutable, deterministic [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, HistogramData> = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap(); // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
            for (&name, &delta) in &shard.counters {
                *counters.entry(name.to_owned()).or_insert(0) += delta;
            }
            for (&name, data) in &shard.histograms {
                histograms
                    .entry(name.to_owned())
                    .or_insert_with(|| HistogramData::new(self.bounds.len()))
                    .merge_from(data);
            }
        }
        let gauges = self
            .gauges
            .lock()
            .unwrap() // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
            .iter()
            .map(|(&name, &value)| (name.to_owned(), value))
            .collect();
        let timings = self
            .timings
            .lock()
            .unwrap() // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
            .iter()
            .map(|(&name, &data)| {
                (
                    name.to_owned(),
                    TimingSnapshot {
                        count: data.count,
                        total_nanos: data.total_nanos,
                        max_nanos: data.max_nanos,
                    },
                )
            })
            .collect();
        let histograms = histograms
            .into_iter()
            .map(|(name, data)| {
                let buckets = self
                    .bounds
                    .iter()
                    .map(|&b| format_f64(b))
                    .chain(std::iter::once("+Inf".to_owned()))
                    .zip(data.counts.iter().copied())
                    .filter(|&(_, count)| count > 0)
                    .collect();
                (
                    name,
                    HistogramSnapshot {
                        count: data.count,
                        min: data.min,
                        max: data.max,
                        buckets,
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            timings,
        }
    }
}

impl Recorder for CollectingRecorder {
    fn counter_add(&self, name: &'static str, delta: u64) {
        let mut shard = self.shard().lock().unwrap(); // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
        *shard.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        if !value.is_finite() {
            return;
        }
        // Merge-by-max: the retained value is the maximum ever set, which
        // is independent of the order concurrent writers arrive in —
        // last-write-wins would leak thread scheduling into the snapshot.
        self.gauges
            .lock()
            .unwrap() // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
            .entry(name)
            .and_modify(|v| *v = v.max(value))
            .or_insert(value);
    }

    fn histogram_record(&self, name: &'static str, value: f64) {
        if !value.is_finite() {
            return;
        }
        let n_bounds = self.bounds.len();
        let mut shard = self.shard().lock().unwrap(); // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
        let data = shard
            .histograms
            .entry(name)
            .or_insert_with(|| HistogramData::new(n_bounds));
        data.record(&self.bounds, value);
    }

    fn timing_record(&self, name: &'static str, nanos: u64) {
        let mut timings = self.timings.lock().unwrap(); // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
        let data = timings.entry(name).or_default();
        data.count += 1;
        data.total_nanos += nanos;
        data.max_nanos = data.max_nanos.max(nanos);
    }
}

/// Aggregated view of one fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Non-empty buckets as `(upper bound label, count)`; the label is the
    /// decimal rendering of the bound, or `"+Inf"` for the overflow bucket.
    pub buckets: Vec<(String, u64)>,
}

/// Aggregated wall-clock timings for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSnapshot {
    /// Number of completed spans.
    pub count: u64,
    /// Sum of span durations in nanoseconds.
    pub total_nanos: u64,
    /// Longest single span in nanoseconds.
    pub max_nanos: u64,
}

impl TimingSnapshot {
    /// Total wall-clock time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_nanos as f64 / 1e6
    }

    /// Mean span duration in milliseconds (0 if no spans completed).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms() / self.count as f64
        }
    }
}

/// An immutable, merged view of everything a [`CollectingRecorder`]
/// accumulated, with deterministic (sorted) iteration and JSON rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters, merged across shards by integer addition.
    pub counters: BTreeMap<String, u64>,
    /// Gauges, merged by `max` over every value ever set (order- and
    /// thread-independent).
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms, merged across shards by integer addition.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Wall-clock span timings — nondeterministic by nature, quarantined in
    /// the `timings` section of the JSON rendering.
    pub timings: BTreeMap<String, TimingSnapshot>,
}

impl Snapshot {
    /// Value of counter `name`, or 0 if it was never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if it ever recorded an observation.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Timing aggregate for span `name`, if any span completed.
    pub fn timing(&self, name: &str) -> Option<&TimingSnapshot> {
        self.timings.get(name)
    }

    /// Render the full snapshot as pretty-printed JSON with stable key
    /// order. Wall-clock data appears only under the final `"timings"` key;
    /// every byte before it is deterministic for a deterministic workload.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        self.render_deterministic_sections(&mut out);
        out.push_str("  \"timings\": {");
        let mut first = true;
        for (name, t) in &self.timings {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {}: {{ \"count\": {}, \"total_nanos\": {}, \"max_nanos\": {} }}",
                json_string(name),
                t.count,
                t.total_nanos,
                t.max_nanos
            ));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Render only the deterministic sections (counters, gauges,
    /// histograms) — the bytes that must be identical across
    /// `MACGAME_THREADS` settings for a deterministic workload.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::from("{\n");
        self.render_deterministic_sections(&mut out);
        // Trim the trailing section comma so the fragment is valid JSON.
        if out.ends_with(",\n") {
            out.truncate(out.len() - 2);
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }

    fn render_deterministic_sections(&self, out: &mut String) {
        out.push_str("  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {}", json_string(name), value));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("},\n");

        out.push_str("  \"gauges\": {");
        let mut first = true;
        for (name, value) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {}: {}",
                json_string(name),
                format_f64(*value)
            ));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("},\n");

        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {}: {{\n      \"count\": {},\n      \"min\": {},\n      \"max\": {},\n      \"buckets\": [",
                json_string(name),
                h.count,
                format_f64(h.min),
                format_f64(h.max)
            ));
            let mut first_bucket = true;
            for (le, count) in &h.buckets {
                if !first_bucket {
                    out.push(',');
                }
                first_bucket = false;
                out.push_str(&format!(
                    "\n        {{ \"le\": {}, \"count\": {} }}",
                    json_string(le),
                    count
                ));
            }
            if !first_bucket {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
    }
}

/// Render a finite `f64` as a JSON number via Rust's shortest round-trip
/// `Debug` formatting (deterministic for a given value).
fn format_f64(value: f64) -> String {
    debug_assert!(value.is_finite());
    format!("{value:?}")
}

/// Quote and escape a metric name as a JSON string.
fn json_string(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for ch in name.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_across_threads() {
        let recorder = CollectingRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        recorder.counter_add("test.events", 2);
                    }
                });
            }
        });
        assert_eq!(recorder.snapshot().counter("test.events"), 1600);
    }

    #[test]
    fn histogram_buckets_and_extremes() {
        let recorder = CollectingRecorder::new();
        for v in [1.0, 1.5, 2.0, 100.0, 1e12] {
            recorder.histogram_record("test.hist", v);
        }
        let snapshot = recorder.snapshot();
        let h = snapshot.histogram("test.hist").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 1e12);
        // 1.0 -> le 1.0; 1.5 and 2.0 -> le 2.0; 100.0 -> le 100.0; 1e12 -> +Inf.
        let total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 5);
        assert_eq!(h.buckets.last().unwrap(), &("+Inf".to_owned(), 1));
        assert!(h.buckets.iter().any(|(le, c)| le == "2.0" && *c == 2));
    }

    #[test]
    fn snapshot_is_thread_layout_invariant() {
        // The same multiset of events recorded serially and from many
        // threads must merge to identical snapshots (and identical bytes).
        let serial = CollectingRecorder::new();
        for i in 0..400u64 {
            serial.counter_add("inv.count", i % 7);
            serial.histogram_record("inv.hist", (i % 13) as f64);
        }
        let threaded = CollectingRecorder::new();
        std::thread::scope(|scope| {
            for chunk in 0..8u64 {
                let threaded = &threaded;
                scope.spawn(move || {
                    for i in (chunk * 50)..((chunk + 1) * 50) {
                        threaded.counter_add("inv.count", i % 7);
                        threaded.histogram_record("inv.hist", (i % 13) as f64);
                    }
                });
            }
        });
        assert_eq!(
            serial.snapshot().deterministic_json(),
            threaded.snapshot().deterministic_json()
        );
    }

    #[test]
    fn gauges_ignore_non_finite() {
        let recorder = CollectingRecorder::new();
        recorder.gauge_set("test.gauge", f64::NAN);
        recorder.gauge_set("test.gauge2", 1.25);
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.gauge("test.gauge"), None);
        assert_eq!(snapshot.gauge("test.gauge2"), Some(1.25));
    }

    #[test]
    fn gauges_merge_by_max() {
        let recorder = CollectingRecorder::new();
        recorder.gauge_set("test.gauge", 3.0);
        recorder.gauge_set("test.gauge", 1.0);
        recorder.gauge_set("test.gauge", 2.0);
        assert_eq!(recorder.snapshot().gauge("test.gauge"), Some(3.0));
        recorder.gauge_set("test.neg", -5.0);
        recorder.gauge_set("test.neg", -9.0);
        assert_eq!(recorder.snapshot().gauge("test.neg"), Some(-5.0));
    }

    #[test]
    fn gauge_bytes_are_thread_layout_invariant() {
        // The same multiset of gauge writes, delivered serially and from
        // racing threads in arbitrary order, must render identical bytes.
        let serial = CollectingRecorder::new();
        for i in 0..64u64 {
            serial.gauge_set("inv.gauge", (i % 17) as f64);
            serial.gauge_set("inv.other", -((i % 5) as f64));
        }
        let expected = serial.snapshot().deterministic_json();
        for threads in [1usize, 2, 8] {
            let racing = CollectingRecorder::new();
            std::thread::scope(|scope| {
                let chunk = 64 / threads as u64;
                for t in 0..threads as u64 {
                    let racing = &racing;
                    scope.spawn(move || {
                        for i in (t * chunk)..((t + 1) * chunk) {
                            racing.gauge_set("inv.gauge", (i % 17) as f64);
                            racing.gauge_set("inv.other", -((i % 5) as f64));
                        }
                    });
                }
            });
            assert_eq!(
                racing.snapshot().deterministic_json(),
                expected,
                "gauge bytes diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn json_sections_ordered_and_timings_last() {
        let recorder = CollectingRecorder::new();
        recorder.counter_add("b.second", 2);
        recorder.counter_add("a.first", 1);
        recorder.timing_record("t.span", 1_000);
        let snapshot = recorder.snapshot();
        let json = snapshot.to_json();
        let a = json.find("\"a.first\"").unwrap();
        let b = json.find("\"b.second\"").unwrap();
        let t = json.find("\"timings\"").unwrap();
        assert!(a < b && b < t);
        // Deterministic fragment excludes the timings section entirely.
        assert!(!snapshot.deterministic_json().contains("timings"));
    }

    #[test]
    fn empty_snapshot_renders_valid_sections() {
        let snapshot = CollectingRecorder::new().snapshot();
        let json = snapshot.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"timings\": {}"));
    }
}
