//! EDCA queries over the wire: the serve layer must route tuple-bearing
//! `EdcaWcStar` payloads like any other query — structured errors for
//! out-of-range bursts and malformed JSON, never a panic, and the
//! degenerate burst answered bitwise-identically to `WcStar`.

use macgame_core::queries::{Query, QueryResult};
use macgame_dcf::AccessMode;
use macgame_serve::frame::write_frame;
use macgame_serve::{ErrorKind, Reply, ServeHarness};

fn harness() -> ServeHarness {
    ServeHarness::new().unwrap()
}

#[test]
fn edca_wc_star_round_trips_through_the_wire() {
    let h = harness();
    let queries = vec![
        Query::EdcaWcStar { players: 5, mode: AccessMode::Basic, txop: 1, w_max: 512 },
        Query::WcStar { players: 5, mode: AccessMode::Basic, w_max: 512 },
        Query::EdcaWcStar { players: 5, mode: AccessMode::Basic, txop: 4, w_max: 512 },
    ];
    let replies = h.query_batch(&queries).unwrap();
    assert_eq!(replies.len(), 3);
    let Reply::Ok { result: QueryResult::EdcaWcStar { window: w1, utility: u1, txop: 1 }, .. } =
        &replies[0]
    else {
        panic!("expected an EdcaWcStar result: {:?}", replies[0]);
    };
    let Reply::Ok { result: QueryResult::WcStar { window, utility }, .. } = &replies[1] else {
        panic!("expected a WcStar result: {:?}", replies[1]);
    };
    // The degenerate burst answers bitwise like the scalar query.
    assert_eq!(w1, window);
    assert_eq!(u1.to_bits(), utility.to_bits());
    let Reply::Ok { result: QueryResult::EdcaWcStar { utility: u4, txop: 4, .. }, .. } =
        &replies[2]
    else {
        panic!("expected a burst EdcaWcStar result: {:?}", replies[2]);
    };
    assert!(u4 > u1, "burst optimum must beat the single-frame optimum");
}

#[test]
fn out_of_range_bursts_get_structured_errors_not_panics() {
    let h = harness();
    let queries = vec![
        Query::EdcaWcStar { players: 5, mode: AccessMode::Basic, txop: 0, w_max: 512 },
        Query::EdcaWcStar { players: 5, mode: AccessMode::Basic, txop: 65, w_max: 512 },
        Query::EdcaWcStar { players: 5, mode: AccessMode::Basic, txop: 2, w_max: 512 },
    ];
    let replies = h.query_batch(&queries).unwrap();
    assert_eq!(replies.len(), 3);
    for (i, reply) in replies.iter().take(2).enumerate() {
        let Reply::Error { id, error } = reply else {
            panic!("bad burst {i} must yield an error reply: {reply:?}");
        };
        assert_eq!(*id, Some(i as u64 + 1));
        assert_eq!(error.kind, ErrorKind::Evaluation);
        assert!(!error.message.is_empty());
    }
    // The connection keeps serving: the valid neighbor still succeeds.
    assert!(replies[2].is_ok());
}

#[test]
fn malformed_tuple_payloads_cannot_wedge_the_stream() {
    // Hand-written JSON with type-level damage serde must reject: a
    // negative burst, a string burst, and a missing field. Each arrives
    // in its own frame; a valid EDCA query follows to prove the stream
    // resynchronized.
    let h = harness();
    let bad_payloads = [
        br#"{"requests":[{"id":1,"query":{"EdcaWcStar":{"players":5,"mode":"Basic","txop":-3,"w_max":512}}}]}"#.as_slice(),
        br#"{"requests":[{"id":2,"query":{"EdcaWcStar":{"players":5,"mode":"Basic","txop":"four","w_max":512}}}]}"#.as_slice(),
        br#"{"requests":[{"id":3,"query":{"EdcaWcStar":{"players":5,"mode":"Basic"}}}]}"#.as_slice(),
    ];
    let mut wire = Vec::new();
    for payload in bad_payloads {
        write_frame(&mut wire, payload).unwrap();
    }
    let good =
        vec![Query::EdcaWcStar { players: 3, mode: AccessMode::RtsCts, txop: 2, w_max: 256 }];
    wire.extend_from_slice(&ServeHarness::encode_batch(&good).unwrap());
    let out = h.roundtrip_raw(&wire).unwrap();
    let replies = ServeHarness::decode_replies(&out).unwrap();
    assert_eq!(replies.len(), bad_payloads.len() + 1);
    for reply in &replies[..bad_payloads.len()] {
        let Reply::Error { id, error } = reply else {
            panic!("malformed payload must yield an error reply: {reply:?}");
        };
        assert_eq!(*id, None, "no request id is recoverable from a bad batch");
        assert_eq!(error.kind, ErrorKind::MalformedJson);
    }
    assert!(replies[bad_payloads.len()].is_ok(), "stream must stay usable");
}

#[test]
fn edca_replies_are_deterministic_across_connections() {
    let queries =
        vec![Query::EdcaWcStar { players: 8, mode: AccessMode::Basic, txop: 4, w_max: 1024 }];
    let wire = ServeHarness::encode_batch(&queries).unwrap();
    let a = harness().roundtrip_raw(&wire).unwrap();
    let b = harness().roundtrip_raw(&wire).unwrap();
    assert_eq!(a, b, "same wire bytes in, same wire bytes out");
}
