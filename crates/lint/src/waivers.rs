//! `lint-allow.toml` waivers: per-line grants that silence a finding
//! *with a recorded rationale*.
//!
//! Format (checked in at the workspace root):
//!
//! ```toml
//! [[allow]]
//! rule = "determinism/wall-clock"          # required: exact rule id
//! path = "crates/bench/src/bin/repro.rs"   # required: workspace-relative
//! line = 527                                # optional: omit = whole file
//! reason = "bench-solver measures wall-clock speedups on purpose"
//! ```
//!
//! Every entry must carry a non-empty `reason`; a waiver that matches no
//! finding is itself reported (`waiver/stale`) so grants cannot silently
//! outlive the code they excused. Waivers never apply to `waiver/*`
//! findings — the waiver file cannot excuse its own defects.

use crate::rules::Finding;
use crate::toml;

/// Rule id: a waiver entry that matched no finding this run.
pub const RULE_STALE_WAIVER: &str = "waiver/stale";
/// Rule id: a waiver entry missing `rule`, `path`, or a non-empty `reason`.
pub const RULE_INVALID_WAIVER: &str = "waiver/invalid";

/// The conventional waiver-file name at the workspace root.
pub const WAIVER_FILE: &str = "lint-allow.toml";

/// One parsed `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Waiver {
    /// Exact rule id the waiver applies to.
    pub rule: String,
    /// Workspace-relative path the waiver applies to.
    pub path: String,
    /// Specific line, or `None` for a whole-file grant.
    pub line: Option<u32>,
    /// The mandatory rationale.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header in the waiver file.
    pub entry_line: u32,
}

/// Result of parsing the waiver file: usable waivers plus findings for
/// malformed entries.
#[derive(Debug, Default)]
pub struct WaiverSet {
    /// Well-formed waivers.
    pub waivers: Vec<Waiver>,
    /// `waiver/invalid` findings produced during parsing.
    pub findings: Vec<Finding>,
}

/// Parses waiver-file contents (path used only for finding locations).
#[must_use]
pub fn parse_waivers(source: &str) -> WaiverSet {
    let mut set = WaiverSet::default();
    for table in toml::parse(source) {
        if !(table.is_array && table.name == "allow") {
            continue;
        }
        let get_str = |key: &str| -> Option<String> {
            match table.get(key) {
                Some(toml::Value::Str(s)) => Some(s.clone()),
                _ => None,
            }
        };
        let rule = get_str("rule");
        let path = get_str("path");
        let reason = get_str("reason").unwrap_or_default();
        let line = match table.get("line") {
            Some(toml::Value::Int(i)) if *i > 0 => Some(*i as u32),
            Some(_) => {
                set.findings.push(invalid(
                    table.line,
                    "waiver `line` must be a positive integer (omit it for a whole-file grant)",
                ));
                continue;
            }
            None => None,
        };
        match (rule, path) {
            (Some(rule), Some(path)) if !reason.trim().is_empty() => {
                set.waivers.push(Waiver { rule, path, line, reason, entry_line: table.line });
            }
            (Some(_), Some(_)) => {
                set.findings.push(invalid(
                    table.line,
                    "waiver is missing the mandatory non-empty `reason` rationale",
                ));
            }
            _ => {
                set.findings.push(invalid(
                    table.line,
                    "waiver is missing the required `rule` and/or `path` keys",
                ));
            }
        }
    }
    set
}

fn invalid(line: u32, message: &str) -> Finding {
    Finding {
        rule: RULE_INVALID_WAIVER,
        path: WAIVER_FILE.to_string(),
        line,
        message: message.to_string(),
        snippet: String::new(),
        waived: false,
        reason: None,
        witness: Vec::new(),
    }
}

/// Applies `waivers` to `findings` in place, then appends `waiver/stale`
/// findings for unused entries.
pub fn apply_waivers(findings: &mut Vec<Finding>, waivers: &[Waiver]) {
    let mut used = vec![false; waivers.len()];
    for finding in findings.iter_mut() {
        if finding.rule.starts_with("waiver/") {
            continue;
        }
        for (w, waiver) in waivers.iter().enumerate() {
            let line_matches = waiver.line.map_or(true, |l| l == finding.line);
            if waiver.rule == finding.rule && waiver.path == finding.path && line_matches {
                finding.waived = true;
                finding.reason = Some(waiver.reason.clone());
                used[w] = true;
                break;
            }
        }
    }
    for (waiver, used) in waivers.iter().zip(used) {
        if !used {
            findings.push(Finding {
                rule: RULE_STALE_WAIVER,
                path: WAIVER_FILE.to_string(),
                line: waiver.entry_line,
                message: format!(
                    "waiver for `{}` at `{}{}` matched no finding; delete it or fix its \
                     coordinates",
                    waiver.rule,
                    waiver.path,
                    waiver.line.map(|l| format!(":{l}")).unwrap_or_default()
                ),
                snippet: format!("reason: {}", waiver.reason),
                waived: false,
                reason: None,
                witness: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_HASH;

    fn finding(rule: &'static str, path: &str, line: u32) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: String::new(),
            snippet: String::new(),
            waived: false,
            reason: None,
            witness: Vec::new(),
        }
    }

    #[test]
    fn parses_and_matches_line_and_file_scoped_waivers() {
        let src = "\
[[allow]]
rule = \"determinism/hash-container\"
path = \"crates/dcf/src/cache.rs\"
line = 57
reason = \"keyed lookups only\"

[[allow]]
rule = \"determinism/hash-container\"
path = \"crates/core/src/evaluator.rs\"
reason = \"whole-file grant\"
";
        let set = parse_waivers(src);
        assert!(set.findings.is_empty());
        assert_eq!(set.waivers.len(), 2);
        let mut findings = vec![
            finding(RULE_HASH, "crates/dcf/src/cache.rs", 57),
            finding(RULE_HASH, "crates/dcf/src/cache.rs", 99),
            finding(RULE_HASH, "crates/core/src/evaluator.rs", 5),
        ];
        apply_waivers(&mut findings, &set.waivers);
        assert!(findings[0].waived);
        assert!(!findings[1].waived, "line-scoped waiver must not cover other lines");
        assert!(findings[2].waived, "file-scoped waiver covers any line");
        assert_eq!(findings.len(), 3, "no stale findings expected");
    }

    #[test]
    fn missing_reason_is_invalid() {
        let set = parse_waivers("[[allow]]\nrule = \"r\"\npath = \"p\"\nreason = \"  \"\n");
        assert!(set.waivers.is_empty());
        assert_eq!(set.findings.len(), 1);
        assert_eq!(set.findings[0].rule, RULE_INVALID_WAIVER);
    }

    #[test]
    fn unused_waiver_goes_stale() {
        let set =
            parse_waivers("[[allow]]\nrule = \"r\"\npath = \"p.rs\"\nline = 3\nreason = \"x\"\n");
        let mut findings = Vec::new();
        apply_waivers(&mut findings, &set.waivers);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RULE_STALE_WAIVER);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn waiver_findings_cannot_be_waived() {
        let set = parse_waivers(
            "[[allow]]\nrule = \"waiver/stale\"\npath = \"lint-allow.toml\"\nreason = \"no\"\n",
        );
        let mut findings = vec![finding(RULE_STALE_WAIVER, WAIVER_FILE, 1)];
        apply_waivers(&mut findings, &set.waivers);
        assert!(!findings[0].waived);
    }
}
