//! Quickstart: the paper's headline result in a few calls.
//!
//! Computes the efficient Nash equilibrium of the selfish MAC game for a
//! small saturated network, verifies it is an equilibrium under TFT,
//! and watches heterogeneous TFT players converge to a common window.
//!
//! Run with: `cargo run --example quickstart`

use macgame::game::equilibrium::{
    check_symmetric_ne, efficient_ne, ne_interval, refine, DEFAULT_NE_EPSILON,
};
use macgame::game::evaluator::AnalyticalEvaluator;
use macgame::game::strategy::{Strategy, Tft};
use macgame::game::{GameConfig, RepeatedGame};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five selfish saturated nodes, IEEE 802.11 basic access, the paper's
    // Table I parameters (1 Mbit/s, 8184-bit payloads, g = 1, e = 0.01).
    let game = GameConfig::builder(5).build()?;

    // ── The efficient NE (Table II's first row) ────────────────────────
    let ne = efficient_ne(&game)?;
    println!("n = {} players, basic access", game.player_count());
    println!("efficient NE window  W_c* = {}", ne.window);
    println!("transmission prob    τ(W_c*) = {:.5}  (continuous τ* = {:.5})", ne.point.tau, ne.tau_star);
    println!("collision prob       p(W_c*) = {:.5}", ne.point.collision_prob);

    // ── The Theorem 2 equilibrium interval and its refinement ──────────
    let interval = ne_interval(&game)?;
    println!("\nTheorem 2 NE interval: [{}, {}] ({} equilibria)",
        interval.lower, interval.upper, interval.count());
    let refinements = refine(&game, interval)?;
    let efficient: Vec<_> =
        refinements.iter().filter(|r| r.pareto_optimal).map(|r| r.window).collect();
    println!("after refinement (fairness + welfare + Pareto): {efficient:?}");

    // ── Explicit unilateral-deviation check ────────────────────────────
    let check = check_symmetric_ne(&game, ne.window, 1, DEFAULT_NE_EPSILON)?;
    println!("\nunilateral-deviation check at W_c*: is_ne = {}", check.is_ne);
    if let Some((w_dev, gain)) = check.best_deviation {
        println!("most tempting deviation: W' = {w_dev} with discounted gain {gain:.3e}");
    }

    // ── TFT convergence from heterogeneous starts ──────────────────────
    let initials = [120, 76, 150, 90, 200];
    let players: Vec<Box<dyn Strategy>> =
        initials.iter().map(|&w| Box::new(Tft::new(w)) as Box<dyn Strategy>).collect();
    let evaluator = Box::new(AnalyticalEvaluator::new(game.clone()));
    let mut repeated = RepeatedGame::new(game, players, evaluator)?;
    let report = repeated.play_until_converged(20, 3)?;
    println!("\nTFT play from initial windows {initials:?}:");
    for (k, stage) in repeated.history().stages().iter().enumerate().take(4) {
        println!("  stage {k}: {:?}  (stage utility {:.2})", stage.windows, stage.utilities[0]);
    }
    println!(
        "converged = {} at window {:?} after stage {:?}",
        report.converged, report.window, report.stage
    );
    Ok(())
}
