//! Golden-snapshot conformance: every analytical artifact the paper pins
//! down is compared byte-for-byte against its checked-in fixture under
//! `tests/golden/`.
//!
//! Regenerate fixtures with `scripts/bless.sh` (or
//! `UPDATE_GOLDEN=1 cargo test --test conformance_golden`).

use macgame_conformance::fixtures::{
    detect_golden, deviation_golden, edca_golden, fixed_point_golden, multihop_golden,
    ne_intervals_golden, search_golden,
};
use macgame_conformance::golden::bless_requested;
use macgame_conformance::{check_golden, golden_path, ConformanceError};

#[test]
fn fixed_point_matches_golden() {
    check_golden("fixed_point", &fixed_point_golden().unwrap()).unwrap();
}

#[test]
fn ne_intervals_match_golden() {
    check_golden("ne_intervals", &ne_intervals_golden().unwrap()).unwrap();
}

#[test]
fn search_trajectory_matches_golden() {
    check_golden("search", &search_golden().unwrap()).unwrap();
}

#[test]
fn deviation_payoffs_match_golden() {
    check_golden("deviation", &deviation_golden().unwrap()).unwrap();
}

#[test]
fn multihop_convergence_matches_golden() {
    check_golden("multihop", &multihop_golden().unwrap()).unwrap();
}

#[test]
fn edca_matches_golden() {
    check_golden("edca", &edca_golden().unwrap()).unwrap();
}

#[test]
fn detect_matches_golden() {
    check_golden("detect", &detect_golden().unwrap()).unwrap();
}

/// A perturbed solve must fail with a diff a human can act on — the
/// failure mode the harness exists for. (Skipped while blessing, so the
/// perturbed value can never overwrite the real fixture.)
#[test]
fn perturbed_solution_fails_with_readable_diff() {
    if bless_requested() {
        return;
    }
    let mut perturbed = fixed_point_golden().unwrap();
    perturbed.basic[0].taus[0] *= 1.0 + 1e-6;
    let err = check_golden("fixed_point", &perturbed).unwrap_err();
    match &err {
        ConformanceError::Mismatch { name, diff } => {
            assert_eq!(name, "fixed_point");
            assert!(diff.contains("line "), "diff lacks line numbers: {diff}");
            assert!(diff.contains("- golden:"), "diff lacks golden side: {diff}");
            assert!(diff.contains("+ fresh:"), "diff lacks fresh side: {diff}");
        }
        other => panic!("expected Mismatch, got {other}"),
    }
    let message = err.to_string();
    assert!(message.contains("scripts/bless.sh"), "no re-bless hint: {message}");
}

/// A fixture that was never blessed reports *how* to create it.
#[test]
fn missing_fixture_points_at_bless_script() {
    if bless_requested() {
        return;
    }
    let err = check_golden("no_such_fixture", &42u32).unwrap_err();
    match &err {
        ConformanceError::MissingGolden { name, path } => {
            assert_eq!(name, "no_such_fixture");
            assert_eq!(*path, golden_path("no_such_fixture"));
        }
        other => panic!("expected MissingGolden, got {other}"),
    }
    assert!(err.to_string().contains("UPDATE_GOLDEN=1"));
}
