//! Dirty fixture: the artifact root `emit` reaches a wall-clock read two
//! calls down. `island` holds a nondeterminism source too, but nothing
//! roots it, so the taint pass must stay silent about it.

/// Artifact root: the timing leaks into the "artifact" value.
pub fn emit() -> u128 {
    mid()
}

fn mid() -> u128 {
    leaf()
}

fn leaf() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}

/// Not a root and unreachable from `emit`.
pub fn island() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}
