//! Standalone entry point: `cargo run -p macgame-lint [-- <root>]`.
//!
//! Runs the token lint *and* the call-graph analyses over the enclosing
//! workspace (or an explicit root), prints both finding tables, writes
//! `artifacts/LINT.json` and `artifacts/ANALYSIS.json` under the root,
//! and exits nonzero on any unwaived finding — the same gate
//! `repro -- lint` and CI apply.

use std::path::PathBuf;
use std::process::ExitCode;

use macgame_lint::{find_workspace_root, run_workspace};

fn main() -> ExitCode {
    let arg_root = std::env::args().nth(1).map(PathBuf::from);
    let root = match arg_root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("macgame-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("macgame-lint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("macgame-lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.lint.render_text());
    println!(
        "\nanalysis: {} fn(s), {} edge(s), {} taint root(s), {} public root(s), {} lock site(s)",
        report.analysis.stats.functions,
        report.analysis.stats.edges,
        report.analysis.stats.taint_roots,
        report.analysis.stats.public_roots,
        report.analysis.stats.lock_sites,
    );
    for row in report.analysis.table_rows() {
        println!("{}  {}  {}  {}", row[0], row[1], row[2], row[3]);
    }
    for f in report.analysis.unwaived() {
        println!("  witness for {}:{}", f.path, f.line);
        for step in &f.witness {
            println!("    -> {step}");
        }
    }
    let artifact_dir = root.join("artifacts");
    if let Err(e) = std::fs::create_dir_all(&artifact_dir) {
        eprintln!("macgame-lint: cannot create {}: {e}", artifact_dir.display());
        return ExitCode::from(2);
    }
    for (name, bytes) in
        [("LINT.json", report.lint.to_json()), ("ANALYSIS.json", report.analysis.to_json())]
    {
        let artifact = artifact_dir.join(name);
        if let Err(e) = std::fs::write(&artifact, bytes) {
            eprintln!("macgame-lint: cannot write {}: {e}", artifact.display());
            return ExitCode::from(2);
        }
        println!("artifact: {}", artifact.display());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "macgame-lint: {} unwaived finding(s); fix them or add a waiver with a \
             rationale to lint-allow.toml",
            report.unwaived_count()
        );
        ExitCode::FAILURE
    }
}
