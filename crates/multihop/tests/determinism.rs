//! Seeded-determinism and thread-invariance guarantees for the multi-hop
//! layer, mirroring `crates/core/tests/determinism.rs`: identical seeds
//! must give bitwise-identical trajectories and reports, and the
//! parallel entry points take explicit `threads` parameters so pool size
//! is pinned without mutating the environment.

use macgame_core::equilibrium::DEFAULT_NE_EPSILON;
use macgame_core::GameConfig;
use macgame_dcf::{DcfParams, MicroSecs, UtilityParams};
use macgame_multihop::{
    check_multihop_ne_threads, local_optimal_windows_threads, tft_converge, LocalRule, Mobility,
    SpatialConfig, SpatialEngine, Topology, WaypointConfig,
};

/// Steps a fresh seeded mobility model and returns the exact bit patterns
/// of every node position after every step.
fn trajectory_bits(seed: u64, steps: usize) -> Vec<(u64, u64)> {
    let mut mobility = Mobility::new(12, WaypointConfig::paper(), seed);
    let mut bits = Vec::new();
    for _ in 0..steps {
        mobility.step(MicroSecs::from_seconds(0.25));
        for p in mobility.positions() {
            bits.push((p.x.to_bits(), p.y.to_bits()));
        }
    }
    bits
}

#[test]
fn mobility_trajectories_bitwise_identical_for_same_seed() {
    assert_eq!(trajectory_bits(7, 40), trajectory_bits(7, 40));
}

#[test]
fn mobility_trajectories_differ_across_seeds() {
    assert_ne!(trajectory_bits(7, 40), trajectory_bits(8, 40));
}

#[test]
fn spatial_reports_bitwise_identical_for_same_seed() {
    let run = |seed: u64| {
        let n = 10;
        let mut engine =
            SpatialEngine::new(n, &vec![32; n], SpatialConfig::paper(seed)).unwrap();
        engine.run_for(MicroSecs::from_seconds(2.0))
    };
    // `SpatialReport` derives `PartialEq`, so this compares every counter
    // and every f64 for exact equality.
    assert_eq!(run(2007), run(2007));
    assert_ne!(run(2007), run(2008));
}

#[test]
fn spatial_report_invariant_under_interrupted_runs_with_same_seed() {
    // Same seed, same total duration: one 2 s run versus two 1 s runs on a
    // fresh engine must land on the same final cumulative state.
    let total = |splits: &[f64]| {
        let n = 8;
        let mut engine =
            SpatialEngine::new(n, &vec![64; n], SpatialConfig::paper(11)).unwrap();
        let mut last = None;
        for &s in splits {
            last = Some(engine.run_for(MicroSecs::from_seconds(s)));
        }
        let report = last.unwrap();
        report.slots
    };
    // The second window's report covers only its own interval, so compare
    // the engine-cumulative slot counts implied by summing both windows.
    let one = total(&[2.0]);
    let n = 8;
    let mut engine = SpatialEngine::new(n, &vec![64; n], SpatialConfig::paper(11)).unwrap();
    let a = engine.run_for(MicroSecs::from_seconds(1.0)).slots;
    let b = engine.run_for(MicroSecs::from_seconds(1.0)).slots;
    assert_eq!(one, a + b);
}

#[test]
fn local_windows_and_ne_check_invariant_across_thread_counts() {
    let topology = Topology::grid(4, 4);
    let params = DcfParams::default();
    let utility = UtilityParams::default();
    let game = GameConfig::builder(10).build().unwrap();

    let baseline =
        local_optimal_windows_threads(&topology, &params, &utility, 1024, LocalRule::ExactArgmax, 1)
            .unwrap();
    let w_m = *baseline.iter().min().unwrap();
    let baseline_check =
        check_multihop_ne_threads(&topology, &baseline, w_m, &game, DEFAULT_NE_EPSILON, 1)
            .unwrap();
    let baseline_trace = tft_converge(&topology, &baseline).unwrap();

    for threads in [2usize, 8] {
        let windows = local_optimal_windows_threads(
            &topology,
            &params,
            &utility,
            1024,
            LocalRule::ExactArgmax,
            threads,
        )
        .unwrap();
        assert_eq!(windows, baseline, "windows diverged at {threads} threads");
        let check =
            check_multihop_ne_threads(&topology, &windows, w_m, &game, DEFAULT_NE_EPSILON, threads)
                .unwrap();
        assert_eq!(check, baseline_check, "NE check diverged at {threads} threads");
        let trace = tft_converge(&topology, &windows).unwrap();
        assert_eq!(trace, baseline_trace, "TFT trace diverged at {threads} threads");
    }
}
