//! Traffic models: saturated (the paper's assumption) and Poisson
//! arrivals with per-node queues.
//!
//! The paper analyzes the *saturated* regime — every node always has a
//! packet. Relaxing that is the first question any adopter asks, so the
//! simulator also offers Poisson packet arrivals: a node contends only
//! while its queue is non-empty, and draws a fresh stage-0 backoff when a
//! packet arrives to an empty queue.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-node traffic generation model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Every node always has a packet to send (paper Section III).
    #[default]
    Saturated,
    /// Poisson packet arrivals, independently per node.
    Poisson {
        /// Mean arrivals per second per node.
        packets_per_second: f64,
    },
}

impl TrafficModel {
    /// Whether this model keeps queues permanently backlogged.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        matches!(self, TrafficModel::Saturated)
    }

    /// Samples the number of arrivals within `dt_us` microseconds.
    ///
    /// Uses Knuth's product method — exact, and fast for the per-slot
    /// means involved here (λ ≤ a few).
    ///
    /// # Panics
    ///
    /// Panics if a Poisson rate is negative or not finite.
    #[must_use]
    pub fn sample_arrivals(&self, dt_us: f64, rng: &mut impl Rng) -> u64 {
        match *self {
            TrafficModel::Saturated => 0,
            TrafficModel::Poisson { packets_per_second } => {
                assert!( // PANIC-POLICY: documented # Panics contract (programmer-error guard)
                    packets_per_second.is_finite() && packets_per_second >= 0.0,
                    "arrival rate must be finite and non-negative"
                );
                let lambda = packets_per_second * dt_us * 1e-6;
                if lambda == 0.0 {
                    return 0;
                }
                let threshold = (-lambda).exp();
                let mut k = 0u64;
                let mut product: f64 = 1.0;
                loop {
                    product *= rng.gen::<f64>();
                    if product <= threshold {
                        return k;
                    }
                    k += 1;
                    // λ per slot is tiny; this bound is unreachable in
                    // practice but keeps the loop provably finite.
                    if k > 1_000_000 {
                        return k;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn saturated_generates_nothing() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(TrafficModel::Saturated.sample_arrivals(1e6, &mut rng), 0);
        assert!(TrafficModel::Saturated.is_saturated());
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = TrafficModel::Poisson { packets_per_second: 50.0 };
        let dt = 10_000.0; // 10 ms ⇒ λ = 0.5
        let n = 20_000;
        let total: u64 = (0..n).map(|_| model.sample_arrivals(dt, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_variance_matches_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = TrafficModel::Poisson { packets_per_second: 100.0 };
        let dt = 20_000.0; // λ = 2
        let n = 20_000;
        let samples: Vec<u64> = (0..n).map(|_| model.sample_arrivals(dt, &mut rng)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - mean).abs() / mean < 0.1, "var {var} vs mean {mean}");
    }

    #[test]
    fn zero_rate_is_silent() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = TrafficModel::Poisson { packets_per_second: 0.0 };
        assert_eq!(model.sample_arrivals(1e9, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn negative_rate_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = TrafficModel::Poisson { packets_per_second: -1.0 }.sample_arrivals(1.0, &mut rng);
    }
}
