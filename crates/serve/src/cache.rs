//! Sharded query → result reply cache.
//!
//! The second cache tier of the serve stack: `dcf::SolveCache` memoizes
//! *class solutions* (shared across query types), while this cache
//! memoizes *finished query results* keyed by the query's canonical JSON
//! — a hot repeated query costs one shard lookup plus serialization, no
//! solver work at all. That is the tier that carries the 10^5 queries/s
//! hot-batch target.
//!
//! Same structure and semantics as the solve cache: up to 16
//! FNV-1a-sharded, independently locked shards, per-shard FIFO eviction
//! under a capacity bound, `with_capacity(0)` as the documented no-op
//! cache. Telemetry lands under the `serve.*` namespace
//! (`serve.cache.hits` / `serve.cache.misses` / `serve.cache.evictions`).
//!
//! Caching never changes bytes: a stored value *is* the value a fresh
//! evaluation produced (evaluation is deterministic), so hit and miss
//! replies are bitwise-identical.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use macgame_core::queries::QueryResult;
use macgame_telemetry as telemetry;

/// Maximum shard count (bounded caches smaller than this get one
/// single-entry shard per slot, making the capacity exact).
const MAX_SHARDS: usize = 16;

fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[derive(Debug, Default)]
struct Shard {
    map: BTreeMap<String, Arc<QueryResult>>,
    order: VecDeque<String>,
}

/// Canonical-JSON-keyed result cache shared by all connections of one
/// engine. All methods take `&self`.
#[derive(Debug)]
pub struct ReplyCache {
    shards: Vec<RwLock<Shard>>,
    /// Per-shard resident bound; `0` is the no-op cache.
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ReplyCache {
    /// A cache holding at most `capacity` results (`0` = the no-op
    /// cache: every lookup misses, nothing is stored, no eviction
    /// churn). Evicts per shard in FIFO insertion order.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let (shard_count, per_shard) = match capacity {
            0 => (1, 0),
            c if c < MAX_SHARDS => (c, 1),
            c => (MAX_SHARDS, c / MAX_SHARDS),
        };
        let shards = (0..shard_count).map(|_| RwLock::new(Shard::default())).collect();
        ReplyCache {
            shards,
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &str) -> &RwLock<Shard> {
        &self.shards[(fnv1a(key) % self.shards.len() as u64) as usize]
    }

    /// Looks up a result by its canonical query JSON, counting a hit or
    /// miss either way.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Arc<QueryResult>> {
        if self.per_shard == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("serve.cache.misses", 1);
            return None;
        }
        let found = self
            .shard_for(key)
            .read()
            .expect("reply cache lock poisoned") // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
            .map
            .get(key)
            .map(Arc::clone);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("serve.cache.hits", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("serve.cache.misses", 1);
        }
        found
    }

    /// Stores a freshly evaluated result, evicting per-shard FIFO
    /// overflow. First insert wins on a racing key; the racing values
    /// are identical anyway (evaluation is deterministic).
    pub fn insert(&self, key: &str, value: &Arc<QueryResult>) {
        let bound = self.per_shard;
        if bound == 0 {
            return;
        }
        let mut guard = self.shard_for(key).write().expect("reply cache lock poisoned"); // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
        if guard.map.contains_key(key) {
            return;
        }
        guard.map.insert(key.to_owned(), Arc::clone(value));
        guard.order.push_back(key.to_owned());
        while guard.map.len() > bound {
            if let Some(victim) = guard.order.pop_front() {
                guard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.cache.evictions", 1);
            } else {
                break;
            }
        }
    }

    /// Lookups served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required fresh evaluation.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Results dropped to stay under the capacity bound.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Results currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("reply cache lock poisoned").map.len()) // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
            .sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(n: u32) -> Arc<QueryResult> {
        Arc::new(QueryResult::NeInterval { lower: n, upper: n + 10, count: 11 })
    }

    #[test]
    fn get_after_insert_hits_and_shares_the_value() {
        let c = ReplyCache::with_capacity(64);
        assert!(c.get("k1").is_none());
        let v = result(8);
        c.insert("k1", &v);
        let got = c.get("k1").unwrap();
        assert!(Arc::ptr_eq(&got, &v));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let c = ReplyCache::with_capacity(2);
        for i in 0..6u32 {
            c.insert(&format!("k{i}"), &result(i));
        }
        assert!(c.len() <= 2);
        assert_eq!(c.evictions(), 6 - c.len() as u64);
    }

    #[test]
    fn zero_capacity_is_a_noop() {
        let c = ReplyCache::with_capacity(0);
        c.insert("k", &result(1));
        assert!(c.get("k").is_none());
        assert!(c.is_empty());
        assert_eq!((c.hits(), c.misses(), c.evictions()), (0, 1, 0));
    }

    #[test]
    fn first_insert_wins_on_duplicate_keys() {
        let c = ReplyCache::with_capacity(8);
        let first = result(1);
        let second = result(2);
        c.insert("k", &first);
        c.insert("k", &second);
        assert!(Arc::ptr_eq(&c.get("k").unwrap(), &first));
        assert_eq!(c.len(), 1);
    }
}
