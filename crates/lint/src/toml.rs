//! A minimal TOML subset parser — just enough for `Cargo.toml` manifests
//! and `lint-allow.toml` waiver files.
//!
//! Supported: `[section]` and `[[array-of-tables]]` headers (dotted names
//! kept verbatim), `key = value` pairs with string / boolean / integer /
//! inline-table / array values, dotted keys (`version.workspace = true`),
//! `#` comments, and arrays continued across lines. Unsupported TOML
//! (multi-line strings, datetimes) degrades to [`Value::Other`] rather
//! than failing: the linter's manifest rules only ever need to *recognize*
//! the shapes above.

/// A parsed TOML value, as coarse as the manifest rules need.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal.
    Int(i64),
    /// An inline table `{ k = v, … }`, keys in source order.
    InlineTable(Vec<(String, Value)>),
    /// An array — kept as raw text; no rule inspects array elements.
    Array(String),
    /// Anything else, kept as raw text.
    Other(String),
}

/// One `key = value` assignment with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The key, dotted segments preserved (`version.workspace`).
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// 1-based line of the assignment.
    pub line: u32,
}

/// One `[section]` or `[[section]]` table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Section name without brackets (empty for the implicit root table).
    pub name: String,
    /// Whether the header used `[[…]]` (array-of-tables) syntax.
    pub is_array: bool,
    /// 1-based line of the header (0 for the implicit root table).
    pub line: u32,
    /// Assignments in source order.
    pub entries: Vec<Entry>,
}

impl Table {
    /// Looks up the first entry with `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|e| e.key == key).map(|e| &e.value)
    }
}

/// Parses `source` into tables in file order, starting with the implicit
/// root table (which holds assignments before the first header).
#[must_use]
pub fn parse(source: &str) -> Vec<Table> {
    let mut tables = vec![Table { name: String::new(), is_array: false, line: 0, entries: Vec::new() }];
    let mut lines = source.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            if let Some(name) = rest.strip_suffix("]]") {
                tables.push(Table {
                    name: name.trim().to_string(),
                    is_array: true,
                    line: lineno,
                    entries: Vec::new(),
                });
                continue;
            }
        }
        if let Some(rest) = line.strip_prefix('[') {
            if let Some(name) = rest.strip_suffix(']') {
                tables.push(Table {
                    name: name.trim().to_string(),
                    is_array: false,
                    line: lineno,
                    entries: Vec::new(),
                });
                continue;
            }
        }
        if let Some(eq) = find_top_level_eq(&line) {
            let key = line[..eq].trim().trim_matches('"').to_string();
            let mut value_text = line[eq + 1..].trim().to_string();
            // Arrays and inline tables may continue over following lines.
            while !balanced(&value_text) {
                match lines.next() {
                    Some((_, cont)) => {
                        value_text.push(' ');
                        value_text.push_str(strip_comment(cont).trim());
                    }
                    None => break,
                }
            }
            if let Some(table) = tables.last_mut() {
                table.entries.push(Entry { key, value: parse_value(&value_text), line: lineno });
            }
        }
    }
    tables
}

/// Removes a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Finds the first `=` outside quotes/brackets (the key/value separator).
fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

/// Whether brackets/braces/quotes are balanced (value complete on line).
fn balanced(text: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in text.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0 && !in_str
}

fn parse_value(text: &str) -> Value {
    let t = text.trim();
    if t == "true" {
        return Value::Bool(true);
    }
    if t == "false" {
        return Value::Bool(false);
    }
    if let Some(stripped) = t.strip_prefix('"') {
        if let Some(s) = stripped.strip_suffix('"') {
            return Value::Str(unescape(s));
        }
    }
    if let Ok(i) = t.parse::<i64>() {
        return Value::Int(i);
    }
    if t.starts_with('[') {
        return Value::Array(t.to_string());
    }
    if let Some(inner) = t.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
        let mut pairs = Vec::new();
        for part in split_top_level_commas(inner) {
            if let Some(eq) = find_top_level_eq(&part) {
                let key = part[..eq].trim().trim_matches('"').to_string();
                pairs.push((key, parse_value(part[eq + 1..].trim())));
            }
        }
        return Value::InlineTable(pairs);
    }
    Value::Other(t.to_string())
}

/// Splits an inline-table body on commas outside nested structures.
fn split_top_level_commas(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    let mut current = String::new();
    for c in text.chars() {
        if escaped {
            escaped = false;
            current.push(c);
            continue;
        }
        match c {
            '\\' if in_str => {
                escaped = true;
                current.push(c);
            }
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            '[' | '{' if !in_str => {
                depth += 1;
                current.push(c);
            }
            ']' | '}' if !in_str => {
                depth -= 1;
                current.push(c);
            }
            ',' if !in_str && depth == 0 => {
                parts.push(current.trim().to_string());
                current = String::new();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current.trim().to_string());
    }
    parts
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_entries_and_dotted_keys() {
        let src = "\n[package]\nname = \"x\" # comment\nversion.workspace = true\n\n[dependencies]\nserde = { path = \"vendor/serde\", features = [\"derive\"] }\n";
        let tables = parse(src);
        assert_eq!(tables.len(), 3);
        let pkg = &tables[1];
        assert_eq!(pkg.name, "package");
        assert_eq!(pkg.get("name"), Some(&Value::Str("x".into())));
        assert_eq!(pkg.get("version.workspace"), Some(&Value::Bool(true)));
        let deps = &tables[2];
        match deps.get("serde") {
            Some(Value::InlineTable(pairs)) => {
                assert_eq!(pairs[0], ("path".to_string(), Value::Str("vendor/serde".into())));
                assert!(matches!(&pairs[1].1, Value::Array(_)));
            }
            other => panic!("unexpected serde value: {other:?}"),
        }
    }

    #[test]
    fn parses_array_of_tables_with_lines() {
        let src = "[[allow]]\nrule = \"a\"\nline = 12\n\n[[allow]]\nrule = \"b\"\n";
        let tables = parse(src);
        let allows: Vec<&Table> = tables.iter().filter(|t| t.is_array).collect();
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].line, 1);
        assert_eq!(allows[0].get("line"), Some(&Value::Int(12)));
        assert_eq!(allows[1].line, 5);
    }

    #[test]
    fn multiline_arrays_are_joined() {
        let src = "members = [\n  \"crates/*\",\n  \"vendor/*\",\n]\nnext = 1\n";
        let tables = parse(src);
        let root = &tables[0];
        assert!(matches!(root.get("members"), Some(Value::Array(a)) if a.contains("vendor/*")));
        assert_eq!(root.get("next"), Some(&Value::Int(1)));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let tables = parse("reason = \"keep # this\"\n");
        assert_eq!(tables[0].get("reason"), Some(&Value::Str("keep # this".into())));
    }
}
