//! Class-based aggregation of window profiles.
//!
//! Every quantity in the coupled `(τ, p)` system of paper Eqs. (2)–(3)
//! depends on the window profile only through the *multiset* of windows:
//! nodes sharing a window are exchangeable, so a profile with `k` distinct
//! windows has at most `k` distinct `(τ_c, p_c)` pairs. [`ClassProfile`]
//! stores that compressed form — `k` distinct windows with per-class
//! multiplicities — and the class solver in [`crate::fixedpoint`] iterates
//! `k` unknowns instead of `2n`, with the collision coupling computed from
//! class multiplicities via log-domain products:
//!
//! ```text
//! p_c = 1 − Π_j (1 − τ_j)^{n_j} / (1 − τ_c)
//!     = 1 − exp(Σ_j n_j·ln(1 − τ_j) − ln(1 − τ_c))
//! ```
//!
//! This is **exact** for any profile (no mean-field approximation): the
//! map is the node-level sweep restricted to the class-constant subspace,
//! which is invariant under the iteration and contains the unique fixed
//! point. Node-level [`Equilibrium`] values are reconstructed by expansion
//! through a node → class assignment. The per-sweep cost drops from O(n)
//! to O(k), making population-scale workloads (`n = 10^6`, `k ≤ 3`)
//! as cheap as the paper's `n = 10` tables.
//!
//! The module also hosts [`SymmetricMemo`] — a per-scan memo of the
//! [`solve_symmetric`] bisection roots used to seed homogeneous solves —
//! and class-level slot/utility helpers that keep payoff evaluation O(k)
//! as well.

use std::collections::BTreeMap;
use std::sync::RwLock;

use macgame_telemetry as telemetry;
use serde::{Deserialize, Serialize};

use crate::error::DcfError;
use crate::fixedpoint::{solve_symmetric, Equilibrium, SymmetricPoint};
use crate::markov::transmission_probability;
use crate::params::DcfParams;
use crate::throughput::SlotStats;
use crate::utility::UtilityParams;

/// A window profile in class form: `k` strictly increasing distinct
/// windows with their multiplicities. This is the canonical representation
/// of a window *multiset* — two node-level profiles collapse to the same
/// `ClassProfile` iff they are permutations of each other, so it doubles
/// as the cache key that subsumes permutation canonicalization.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClassProfile {
    /// Distinct windows, strictly increasing.
    windows: Vec<u32>,
    /// Multiplicity of each window, ≥ 1.
    counts: Vec<usize>,
}

impl ClassProfile {
    /// Builds a profile directly from class windows and multiplicities.
    /// Classes are sorted by window and duplicate windows are merged (their
    /// multiplicities add), so the result is always canonical. This is the
    /// constructor for synthetic large-`n` populations where a node-level
    /// `Vec<u32>` would be wasteful.
    ///
    /// # Errors
    ///
    /// Returns [`DcfError::InvalidParameter`] for an empty profile, a zero
    /// window, a zero multiplicity, or mismatched lengths.
    pub fn new(windows: Vec<u32>, counts: Vec<usize>) -> Result<Self, DcfError> {
        if windows.len() != counts.len() {
            return Err(DcfError::invalid("counts", "need one multiplicity per class"));
        }
        if windows.is_empty() {
            return Err(DcfError::invalid("windows", "need at least one class"));
        }
        if windows.contains(&0) {
            return Err(DcfError::invalid("windows", "contention windows must be at least 1"));
        }
        if counts.contains(&0) {
            return Err(DcfError::invalid("counts", "class multiplicities must be at least 1"));
        }
        let mut classes: Vec<(u32, usize)> = windows.into_iter().zip(counts).collect();
        classes.sort_by_key(|&(w, _)| w);
        let mut merged_windows = Vec::with_capacity(classes.len());
        let mut merged_counts: Vec<usize> = Vec::with_capacity(classes.len());
        for (w, c) in classes {
            if merged_windows.last() == Some(&w) {
                let last = merged_counts.len() - 1;
                merged_counts[last] += c;
            } else {
                merged_windows.push(w);
                merged_counts.push(c);
            }
        }
        Ok(ClassProfile { windows: merged_windows, counts: merged_counts })
    }

    /// Collapses a node-level profile (any order) into its class form,
    /// returning the profile together with the node → class assignment
    /// (`assignment[i]` is the class index of node `i`) used to expand
    /// class-level solutions back onto the original player order.
    ///
    /// # Errors
    ///
    /// Returns [`DcfError::InvalidParameter`] for an empty profile or a
    /// zero window.
    pub fn from_windows(windows: &[u32]) -> Result<(Self, Vec<usize>), DcfError> {
        if windows.is_empty() {
            return Err(DcfError::invalid("windows", "need at least one node"));
        }
        if windows.contains(&0) {
            return Err(DcfError::invalid("windows", "contention windows must be at least 1"));
        }
        if windows.windows(2).all(|pair| pair[0] <= pair[1]) {
            // Sorted input: run-length encode in one pass.
            let profile = Self::from_sorted(windows)?;
            let mut assignment = Vec::with_capacity(windows.len());
            let mut class = 0usize;
            for (i, &w) in windows.iter().enumerate() {
                if i > 0 && w != windows[i - 1] {
                    class += 1;
                }
                assignment.push(class);
            }
            return Ok((profile, assignment));
        }
        let mut distinct = windows.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut counts = vec![0usize; distinct.len()];
        let mut assignment = Vec::with_capacity(windows.len());
        for &w in windows {
            let class = distinct
                .binary_search(&w)
                .expect("every window is present in the distinct set built above"); // PANIC-POLICY: unreachable by construction (programmer-error guard)
            counts[class] += 1;
            assignment.push(class);
        }
        Ok((ClassProfile { windows: distinct, counts }, assignment))
    }

    /// Collapses an already-sorted node-level profile without computing an
    /// assignment — the fast path for canonical cache lookups (expansion
    /// in class order *is* node order for sorted input).
    ///
    /// # Errors
    ///
    /// Returns [`DcfError::InvalidParameter`] for an empty profile, a zero
    /// window, or an unsorted input.
    pub fn from_sorted(windows: &[u32]) -> Result<Self, DcfError> {
        if windows.is_empty() {
            return Err(DcfError::invalid("windows", "need at least one node"));
        }
        if windows.contains(&0) {
            return Err(DcfError::invalid("windows", "contention windows must be at least 1"));
        }
        if windows.windows(2).any(|pair| pair[0] > pair[1]) {
            return Err(DcfError::invalid("windows", "profile must be sorted ascending"));
        }
        let mut distinct = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        for &w in windows {
            if distinct.last() == Some(&w) {
                let last = counts.len() - 1;
                counts[last] += 1;
            } else {
                distinct.push(w);
                counts.push(1);
            }
        }
        Ok(ClassProfile { windows: distinct, counts })
    }

    /// Number of classes `k`.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.windows.len()
    }

    /// Total number of nodes `n = Σ_c n_c`.
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The distinct windows, strictly increasing.
    #[must_use]
    pub fn windows(&self) -> &[u32] {
        &self.windows
    }

    /// Per-class multiplicities, aligned with [`Self::windows`].
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Whether every node shares one window (`k == 1`).
    #[must_use]
    pub fn is_homogeneous(&self) -> bool {
        self.windows.len() == 1
    }

    /// Expands back to the sorted node-level profile (class order, each
    /// window repeated by its multiplicity). Allocates O(n) — intended for
    /// small `n` interop, not for synthetic populations.
    #[must_use]
    pub fn expand_windows(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.total_nodes());
        for (&w, &c) in self.windows.iter().zip(&self.counts) {
            out.extend(std::iter::repeat(w).take(c));
        }
        out
    }
}

/// Solution of the coupled system in class form: one `(τ_c, p_c)` pair per
/// class of a [`ClassProfile`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassEquilibrium {
    /// Per-class transmission probabilities, aligned with
    /// [`ClassProfile::windows`].
    pub taus: Vec<f64>,
    /// Per-class conditional collision probabilities.
    pub collision_probs: Vec<f64>,
    /// Sweeps used by the iterative solver (always at least 1).
    pub iterations: usize,
}

impl ClassEquilibrium {
    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.taus.len()
    }

    /// Expands onto the original player order through a node → class
    /// assignment (as returned by [`ClassProfile::from_windows`]).
    ///
    /// # Panics
    ///
    /// Panics if an assignment entry is not a valid class index
    /// (programmer error: assignments come from `from_windows`).
    #[must_use]
    pub fn expand(&self, assignment: &[usize]) -> Equilibrium {
        let taus = assignment.iter().map(|&c| self.taus[c]).collect();
        let collision_probs = assignment.iter().map(|&c| self.collision_probs[c]).collect();
        Equilibrium { taus, collision_probs, iterations: self.iterations }
    }

    /// Expands in class order (each class repeated by its multiplicity) —
    /// the node order of the *sorted* profile.
    #[must_use]
    pub fn expand_sorted(&self, profile: &ClassProfile) -> Equilibrium {
        let n = profile.total_nodes();
        let mut taus = Vec::with_capacity(n);
        let mut collision_probs = Vec::with_capacity(n);
        for (c, &count) in profile.counts().iter().enumerate() {
            taus.extend(std::iter::repeat(self.taus[c]).take(count));
            collision_probs.extend(std::iter::repeat(self.collision_probs[c]).take(count));
        }
        Equilibrium { taus, collision_probs, iterations: self.iterations }
    }

    /// Max residual of Eqs. (2)–(3) at the class-level solution — the O(k)
    /// counterpart of [`Equilibrium::residual`].
    ///
    /// # Errors
    ///
    /// Returns [`DcfError::InvalidParameter`] if `profile` disagrees in
    /// class count with the solution.
    pub fn residual(&self, profile: &ClassProfile, params: &DcfParams) -> Result<f64, DcfError> {
        if profile.num_classes() != self.taus.len() {
            return Err(DcfError::invalid("profile", "class count must match solution"));
        }
        let m = params.max_backoff_stage();
        let total_log: f64 = self
            .taus
            .iter()
            .zip(profile.counts())
            .map(|(&t, &c)| (c as f64) * (1.0 - t).max(f64::MIN_POSITIVE).ln())
            .sum();
        let mut worst = 0.0f64;
        for ((&w, &tau), &p_stored) in
            profile.windows().iter().zip(&self.taus).zip(&self.collision_probs)
        {
            let others = (total_log - (1.0 - tau).max(f64::MIN_POSITIVE).ln()).exp();
            let p_c = (1.0 - others).clamp(0.0, 1.0);
            let tau_c = transmission_probability(w, p_c, m)?;
            worst = worst.max((p_c - p_stored).abs());
            worst = worst.max((tau_c - tau).abs());
        }
        Ok(worst)
    }
}

/// Per-scan memo of [`solve_symmetric`] bisection roots, keyed by
/// `(n, W)` and bound to one [`DcfParams`]. Homogeneous cold starts in the
/// class solver re-derive the same roots over and over inside a scan
/// (every crowd window of `scan_ne_interval`, every post-punishment stage
/// of a deviation sweep); sharing one memo across the scan runs each
/// bisection at most once. A memo hit returns exactly what
/// [`solve_symmetric`] would, so results are bitwise-identical with and
/// without the memo — only the cost changes. Hits are counted on the
/// `dcf.solver.symmetric_seed_hits` telemetry counter.
///
/// Thread-safe: share by reference across workers (`&self` methods only).
#[derive(Debug)]
pub struct SymmetricMemo {
    params: DcfParams,
    map: RwLock<BTreeMap<(usize, u32), SymmetricPoint>>,
}

impl SymmetricMemo {
    /// Creates an empty memo bound to `params`.
    #[must_use]
    pub fn new(params: DcfParams) -> Self {
        SymmetricMemo { params, map: RwLock::new(BTreeMap::new()) }
    }

    /// The DCF parameters every memoized root was computed under.
    #[must_use]
    pub fn params(&self) -> &DcfParams {
        &self.params
    }

    /// [`solve_symmetric`] through the memo: bisection on a miss, a stored
    /// root (bitwise-identical) on a hit.
    ///
    /// # Errors
    ///
    /// Propagates [`solve_symmetric`] errors (`n == 0` or `w == 0`).
    pub fn solve(&self, n: usize, w: u32) -> Result<SymmetricPoint, DcfError> {
        if let Some(hit) = self.map.read().expect("memo lock poisoned").get(&(n, w)) { // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
            telemetry::counter("dcf.solver.symmetric_seed_hits", 1);
            return Ok(*hit);
        }
        // Bisect outside the write lock: concurrent misses on the same key
        // may duplicate work but compute the identical root, so whichever
        // insert lands first the stored value is the same.
        let point = solve_symmetric(n, w, &self.params)?;
        self.map.write().expect("memo lock poisoned").entry((n, w)).or_insert(point); // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
        Ok(point)
    }

    /// Number of distinct `(n, W)` roots stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.read().expect("memo lock poisoned").len() // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
    }

    /// Whether the memo is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// [`crate::throughput::slot_stats`] computed from class data in O(k):
/// `Π_i (1−τ_i)` becomes `exp(Σ_c n_c·ln(1−τ_c))` and the single-success
/// probability weights each class's contribution by its multiplicity.
/// Agrees with the node-level computation to floating-point rounding.
///
/// # Panics
///
/// Panics if `taus` does not have one entry per class or contains values
/// outside `[0, 1]` (the profile comes from our own solvers, so this is a
/// programming error, not a recoverable condition).
#[must_use]
pub fn class_slot_stats(profile: &ClassProfile, taus: &[f64], params: &DcfParams) -> SlotStats {
    assert_eq!(taus.len(), profile.num_classes(), "need one τ per class"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
    assert!( // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        taus.iter().all(|t| (0.0..=1.0).contains(t)),
        "transmission probabilities must be in [0, 1]"
    );
    let total_log: f64 = taus
        .iter()
        .zip(profile.counts())
        .map(|(&t, &c)| (c as f64) * (1.0 - t).max(f64::MIN_POSITIVE).ln())
        .sum();
    let all_idle = total_log.exp();
    let p_transmit = 1.0 - all_idle;
    let single: f64 = taus
        .iter()
        .zip(profile.counts())
        .map(|(&t, &c)| {
            let others = (total_log - (1.0 - t).max(f64::MIN_POSITIVE).ln()).exp();
            (c as f64) * t * others
        })
        .sum();
    let p_success = if p_transmit > 0.0 { (single / p_transmit).clamp(0.0, 1.0) } else { 0.0 };
    let t = params.timings();
    let mean_slot = (1.0 - p_transmit) * params.sigma()
        + p_transmit * p_success * t.success_time
        + p_transmit * (1.0 - p_success) * t.collision_time;
    SlotStats { p_transmit, p_success, mean_slot }
}

/// Per-class utilities `u_c = τ_c·((1−p_c)·g − e)/T_slot` — the O(k)
/// counterpart of [`crate::utility::all_utilities`] (every node of a class
/// earns its class's utility).
///
/// # Panics
///
/// Same conditions as [`class_slot_stats`], plus `collision_probs` must
/// have one entry per class in `[0, 1]`.
#[must_use]
pub fn class_utilities(
    profile: &ClassProfile,
    taus: &[f64],
    collision_probs: &[f64],
    params: &DcfParams,
    utility: &UtilityParams,
) -> Vec<f64> {
    assert_eq!(collision_probs.len(), profile.num_classes(), "need one p per class"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
    assert!( // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        collision_probs.iter().all(|p| (0.0..=1.0).contains(p)),
        "collision probabilities must be in [0, 1]"
    );
    let stats = class_slot_stats(profile, taus, params);
    taus.iter()
        .zip(collision_probs)
        .map(|(&t, &p)| t * ((1.0 - p) * utility.gain - utility.cost) / stats.mean_slot.value())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throughput::slot_stats;
    use crate::utility::all_utilities;

    #[test]
    fn from_windows_collapses_and_assigns() {
        let (profile, assignment) = ClassProfile::from_windows(&[64, 16, 64, 16, 128]).unwrap();
        assert_eq!(profile.windows(), &[16, 64, 128]);
        assert_eq!(profile.counts(), &[2, 2, 1]);
        assert_eq!(assignment, vec![1, 0, 1, 0, 2]);
        assert_eq!(profile.total_nodes(), 5);
        assert_eq!(profile.num_classes(), 3);
        assert!(!profile.is_homogeneous());
    }

    #[test]
    fn sorted_input_takes_the_rle_fast_path() {
        let (profile, assignment) = ClassProfile::from_windows(&[8, 8, 32, 32, 32]).unwrap();
        assert_eq!(profile, ClassProfile::from_sorted(&[8, 8, 32, 32, 32]).unwrap());
        assert_eq!(assignment, vec![0, 0, 1, 1, 1]);
        assert_eq!(profile.expand_windows(), vec![8, 8, 32, 32, 32]);
    }

    #[test]
    fn new_sorts_and_merges_duplicate_classes() {
        let profile = ClassProfile::new(vec![64, 16, 64], vec![3, 2, 4]).unwrap();
        assert_eq!(profile.windows(), &[16, 64]);
        assert_eq!(profile.counts(), &[2, 7]);
        assert_eq!(profile.total_nodes(), 9);
    }

    #[test]
    fn permutations_collapse_to_the_same_profile() {
        let (a, _) = ClassProfile::from_windows(&[16, 64, 256, 64]).unwrap();
        let (b, _) = ClassProfile::from_windows(&[256, 64, 16, 64]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(ClassProfile::from_windows(&[]).is_err());
        assert!(ClassProfile::from_windows(&[0, 4]).is_err());
        assert!(ClassProfile::from_sorted(&[4, 2]).is_err());
        assert!(ClassProfile::new(vec![4], vec![]).is_err());
        assert!(ClassProfile::new(vec![4], vec![0]).is_err());
        assert!(ClassProfile::new(vec![0], vec![1]).is_err());
        assert!(ClassProfile::new(vec![], vec![]).is_err());
    }

    #[test]
    fn expansion_routes_class_values_to_nodes() {
        let (profile, assignment) = ClassProfile::from_windows(&[64, 16, 64]).unwrap();
        let ceq = ClassEquilibrium {
            taus: vec![0.5, 0.25],
            collision_probs: vec![0.1, 0.2],
            iterations: 3,
        };
        let eq = ceq.expand(&assignment);
        assert_eq!(eq.taus, vec![0.25, 0.5, 0.25]);
        assert_eq!(eq.collision_probs, vec![0.2, 0.1, 0.2]);
        assert_eq!(eq.iterations, 3);
        let sorted = ceq.expand_sorted(&profile);
        assert_eq!(sorted.taus, vec![0.5, 0.25, 0.25]);
    }

    #[test]
    fn symmetric_memo_hits_are_bitwise_identical() {
        let params = DcfParams::default();
        let memo = SymmetricMemo::new(params);
        let fresh = memo.solve(5, 76).unwrap();
        let direct = solve_symmetric(5, 76, &params).unwrap();
        assert_eq!(fresh, direct);
        let hit = memo.solve(5, 76).unwrap();
        assert_eq!(hit, fresh);
        assert_eq!(memo.len(), 1);
        memo.solve(5, 77).unwrap();
        assert_eq!(memo.len(), 2);
        assert!(memo.solve(0, 4).is_err());
    }

    #[test]
    fn class_slot_stats_match_node_level() {
        let params = DcfParams::default();
        let windows = [16u32, 16, 64, 64, 64, 256];
        let (profile, assignment) = ClassProfile::from_windows(&windows).unwrap();
        let class_taus = vec![0.11, 0.034, 0.0085];
        let node_taus: Vec<f64> = assignment.iter().map(|&c| class_taus[c]).collect();
        let class_stats = class_slot_stats(&profile, &class_taus, &params);
        let node_stats = slot_stats(&node_taus, &params);
        assert!((class_stats.p_transmit - node_stats.p_transmit).abs() < 1e-14);
        assert!((class_stats.p_success - node_stats.p_success).abs() < 1e-14);
        assert!(
            (class_stats.mean_slot.value() - node_stats.mean_slot.value()).abs()
                < 1e-10 * node_stats.mean_slot.value()
        );
    }

    #[test]
    fn class_utilities_match_node_level() {
        let params = DcfParams::default();
        let utility = UtilityParams::default();
        let windows = [16u32, 16, 64, 256, 256];
        let (profile, assignment) = ClassProfile::from_windows(&windows).unwrap();
        let class_taus = vec![0.11, 0.034, 0.0085];
        let class_ps = vec![0.06, 0.13, 0.15];
        let node_taus: Vec<f64> = assignment.iter().map(|&c| class_taus[c]).collect();
        let node_ps: Vec<f64> = assignment.iter().map(|&c| class_ps[c]).collect();
        let per_class = class_utilities(&profile, &class_taus, &class_ps, &params, &utility);
        let per_node = all_utilities(&node_taus, &node_ps, &params, &utility);
        for (i, &c) in assignment.iter().enumerate() {
            assert!(
                (per_class[c] - per_node[i]).abs() < 1e-12 * per_node[i].abs().max(1.0),
                "node {i} class {c}: {} vs {}",
                per_class[c],
                per_node[i]
            );
        }
    }
}
