// Lint fixture: the API-discipline rules should fire on every site below.
use std::sync::atomic::{AtomicU64, Ordering};

fn deprecated_constructors() {
    let g = GenerousTft::new(3, 0.9);
    let h = HillClimb::new(1, 8);
    let _ = (g, h);
}

fn relaxed(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed);
    counter.load(Ordering::Relaxed)
}
