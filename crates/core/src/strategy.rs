//! Player strategies for the repeated MAC game.
//!
//! The paper's central strategy is TIT-FOR-TAT (Section IV): cooperate in
//! the first stage, then match the most aggressive observed behaviour,
//! `W_i^k = min_j Ŵ_j^{k−1}`. Its measurement-tolerant variant Generous
//! TFT averages over the last `r₀` stages and only reacts when some player
//! undercuts by more than the tolerance `β`. Constant (compliant, greedy or
//! malicious) and myopic best-response strategies complete the roster used
//! by the experiments.

use macgame_dcf::fixedpoint::{solve, SolveOptions};
use macgame_dcf::utility::node_utility;

use crate::error::GameError;
use crate::game::GameConfig;
use crate::history::History;

/// A (possibly stateful) strategy for one player of the repeated game.
pub trait Strategy {
    /// The window to play in stage 0, before any observation exists.
    fn initial_window(&self, player: usize, game: &GameConfig) -> u32;

    /// The window to play next, given the full history so far
    /// (`history.last()` is stage `k−1`).
    ///
    /// # Errors
    ///
    /// Strategies that consult the analytical model (e.g. best response)
    /// can surface [`GameError`]; pure bookkeeping strategies never fail.
    fn next_window(
        &mut self,
        player: usize,
        game: &GameConfig,
        history: &History,
    ) -> Result<u32, GameError>;

    /// Human-readable strategy name for reports.
    fn name(&self) -> &'static str;
}

/// TIT-FOR-TAT: start from `initial`, then play the minimum observed window
/// of the previous stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tft {
    initial: u32,
}

impl Tft {
    /// TFT starting from the (cooperative) window `initial`.
    #[must_use]
    pub fn new(initial: u32) -> Self {
        Tft { initial }
    }
}

impl Strategy for Tft {
    fn initial_window(&self, _player: usize, game: &GameConfig) -> u32 {
        self.initial.clamp(1, game.w_max())
    }

    fn next_window(
        &mut self,
        _player: usize,
        game: &GameConfig,
        history: &History,
    ) -> Result<u32, GameError> {
        let last = history
            .last()
            .ok_or_else(|| GameError::InvalidConfig("next_window before stage 0".into()))?;
        let min = last.observed.iter().copied().min().unwrap_or(self.initial);
        Ok(min.clamp(1, game.w_max()))
    }

    fn name(&self) -> &'static str {
        "tft"
    }
}

/// Generous TIT-FOR-TAT (paper Section IV): averages observations over the
/// last `r₀` stages and only drops to the minimum when some player's
/// average window undercuts `β`× one's own average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerousTft {
    initial: u32,
    window_count: usize,
    tolerance: f64,
}

impl GenerousTft {
    /// GTFT with memory `r0 ≥ 1` and tolerance `β ∈ (0, 1]` (β close to 1
    /// is least tolerant; lowering β or raising `r0` forgives more noise).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidConfig`] if `r0 == 0` or `β` is outside
    /// `(0, 1]`.
    pub fn try_new(initial: u32, r0: usize, beta: f64) -> Result<Self, GameError> {
        if r0 == 0 {
            return Err(GameError::InvalidConfig(
                "GTFT needs at least one stage of memory (r0 ≥ 1)".into(),
            ));
        }
        if !(beta > 0.0 && beta <= 1.0) {
            return Err(GameError::InvalidConfig(format!(
                "tolerance β must be in (0, 1], got {beta}"
            )));
        }
        Ok(GenerousTft { initial, window_count: r0, tolerance: beta })
    }

    /// Panicking variant of [`GenerousTft::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if `r0 == 0` or `β` is outside `(0, 1]`.
    #[deprecated(since = "0.1.0", note = "panics on invalid r0/β; use `GenerousTft::try_new`")]
    #[must_use]
    pub fn new(initial: u32, r0: usize, beta: f64) -> Self {
        match Self::try_new(initial, r0, beta) {
            Ok(s) => s,
            Err(e) => panic!("{e}"), // PANIC-POLICY: deprecated panicking shim; documented panic, callers should migrate to try_new
        }
    }
}

impl Strategy for GenerousTft {
    fn initial_window(&self, _player: usize, game: &GameConfig) -> u32 {
        self.initial.clamp(1, game.w_max())
    }

    fn next_window(
        &mut self,
        player: usize,
        game: &GameConfig,
        history: &History,
    ) -> Result<u32, GameError> {
        let recent = history.recent(self.window_count);
        let last = history
            .last()
            .ok_or_else(|| GameError::InvalidConfig("next_window before stage 0".into()))?;
        let n = last.observed.len();
        let avg = |j: usize| -> f64 {
            recent.iter().map(|s| f64::from(s.observed[j])).sum::<f64>() / recent.len() as f64
        };
        let my_avg = avg(player);
        let someone_undercuts =
            (0..n).any(|j| j != player && avg(j) < self.tolerance * my_avg);
        let next = if someone_undercuts {
            last.observed.iter().copied().min().unwrap_or(self.initial)
        } else {
            last.windows[player]
        };
        Ok(next.clamp(1, game.w_max()))
    }

    fn name(&self) -> &'static str {
        "generous-tft"
    }
}

/// Plays a fixed window forever. Doubles as the *short-sighted deviator*
/// (a small fixed `W_s`, Section V.D) and the *malicious player*
/// (`W` near 1, Section V.E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constant {
    window: u32,
}

impl Constant {
    /// A player pinned at `window`.
    #[must_use]
    pub fn new(window: u32) -> Self {
        Constant { window }
    }

    /// The Section V.E malicious player: maximum aggression, `W = 1`.
    #[must_use]
    pub fn malicious() -> Self {
        Constant { window: 1 }
    }
}

impl Strategy for Constant {
    fn initial_window(&self, _player: usize, game: &GameConfig) -> u32 {
        self.window.clamp(1, game.w_max())
    }

    fn next_window(
        &mut self,
        _player: usize,
        game: &GameConfig,
        _history: &History,
    ) -> Result<u32, GameError> {
        Ok(self.window.clamp(1, game.w_max()))
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

/// Myopic best response: each stage, picks the window maximizing the
/// player's *next-stage* utility against the last observed profile of the
/// others (assuming they repeat it). The classic short-sighted dynamic that
/// drives CSMA/CA games to collapse when unopposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BestResponse {
    initial: u32,
}

impl BestResponse {
    /// Best response starting from `initial` in stage 0.
    #[must_use]
    pub fn new(initial: u32) -> Self {
        BestResponse { initial }
    }
}

impl BestResponse {
    fn utility_against(
        player: usize,
        my_window: u32,
        observed: &[u32],
        game: &GameConfig,
    ) -> Result<f64, GameError> {
        let mut profile = observed.to_vec();
        profile[player] = my_window;
        let eq = solve(&profile, game.params(), SolveOptions::default())?;
        Ok(node_utility(player, &eq.taus, &eq.collision_probs, game.params(), game.utility()))
    }
}

impl Strategy for BestResponse {
    fn initial_window(&self, _player: usize, game: &GameConfig) -> u32 {
        self.initial.clamp(1, game.w_max())
    }

    fn next_window(
        &mut self,
        player: usize,
        game: &GameConfig,
        history: &History,
    ) -> Result<u32, GameError> {
        let last = history
            .last()
            .ok_or_else(|| GameError::InvalidConfig("next_window before stage 0".into()))?;
        // The stage best response is unimodal in W; bracket exponentially,
        // then ternary-search with a local sweep (same shape as the
        // efficient-CW search in macgame_dcf).
        let u_at = |w: u32| Self::utility_against(player, w, &last.observed, game);
        let w_max = game.w_max();
        let mut hi = 2u32;
        let mut prev = u_at(1)?;
        while hi <= w_max {
            let cur = u_at(hi)?;
            if cur < prev {
                break;
            }
            prev = cur;
            hi = hi.saturating_mul(2);
        }
        let (mut lo, mut hi) = (1u32, hi.min(w_max));
        while hi - lo > 8 {
            let m1 = lo + (hi - lo) / 3;
            let m2 = hi - (hi - lo) / 3;
            if u_at(m1)? < u_at(m2)? {
                lo = m1 + 1;
            } else {
                hi = m2 - 1;
            }
        }
        let mut best = (lo, f64::NEG_INFINITY);
        for w in lo.saturating_sub(4).max(1)..=(hi + 4).min(w_max) {
            let u = u_at(w)?;
            if u > best.1 {
                best = (w, u);
            }
        }
        Ok(best.0)
    }

    fn name(&self) -> &'static str {
        "best-response"
    }
}


/// Measurement-driven hill climbing: adjust the window by `step` in the
/// current direction while one's *own measured payoff* improves, reverse
/// and halve the step otherwise. Needs no model knowledge and no
/// observation of others — the weakest-information selfish adapter, and
/// the in-game analogue of the Section V.C search's probe-and-move loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HillClimb {
    initial: u32,
    step: u32,
    direction: i64,
    last_utility: Option<f64>,
}

impl HillClimb {
    /// Starts at `initial`, probing with the given initial `step`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidConfig`] if `step == 0`.
    pub fn try_new(initial: u32, step: u32) -> Result<Self, GameError> {
        if step == 0 {
            return Err(GameError::InvalidConfig("step must be at least 1".into()));
        }
        Ok(HillClimb { initial, step, direction: 1, last_utility: None })
    }

    /// Panicking variant of [`HillClimb::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    #[deprecated(since = "0.1.0", note = "panics on step == 0; use `HillClimb::try_new`")]
    #[must_use]
    pub fn new(initial: u32, step: u32) -> Self {
        match Self::try_new(initial, step) {
            Ok(s) => s,
            Err(e) => panic!("{e}"), // PANIC-POLICY: deprecated panicking shim; documented panic, callers should migrate to try_new
        }
    }
}

impl Strategy for HillClimb {
    fn initial_window(&self, _player: usize, game: &GameConfig) -> u32 {
        self.initial.clamp(1, game.w_max())
    }

    fn next_window(
        &mut self,
        player: usize,
        game: &GameConfig,
        history: &History,
    ) -> Result<u32, GameError> {
        let last = history
            .last()
            .ok_or_else(|| GameError::InvalidConfig("next_window before stage 0".into()))?;
        let current = i64::from(last.windows[player]);
        let utility = last.utilities[player];
        match self.last_utility {
            None => {
                // First observation: probe in the current direction.
                self.last_utility = Some(utility);
            }
            Some(previous) => {
                if utility < previous {
                    // Worse: turn around and refine.
                    self.direction = -self.direction;
                    self.step = (self.step / 2).max(1);
                }
                self.last_utility = Some(utility);
            }
        }
        let next = current + self.direction * i64::from(self.step);
        Ok(u32::try_from(next.max(1)).unwrap_or(1).clamp(1, game.w_max()))
    }

    fn name(&self) -> &'static str {
        "hill-climb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::StageRecord;

    fn game(n: usize) -> GameConfig {
        GameConfig::builder(n).build().unwrap()
    }

    fn record(observed: Vec<u32>) -> StageRecord {
        let n = observed.len();
        StageRecord { windows: observed.clone(), observed, utilities: vec![0.0; n] }
    }

    #[test]
    fn tft_matches_minimum() {
        let mut tft = Tft::new(100);
        let g = game(3);
        assert_eq!(tft.initial_window(0, &g), 100);
        let mut h = History::new();
        h.push(record(vec![100, 40, 80]));
        assert_eq!(tft.next_window(0, &g, &h).unwrap(), 40);
    }

    #[test]
    fn tft_errors_without_history() {
        let mut tft = Tft::new(100);
        assert!(tft.next_window(0, &game(2), &History::new()).is_err());
    }

    #[test]
    fn tft_clamps_to_strategy_space() {
        let g = GameConfig::builder(2).w_max(64).build().unwrap();
        let tft = Tft::new(1000);
        assert_eq!(tft.initial_window(0, &g), 64);
    }

    #[test]
    fn gtft_tolerates_small_undercuts() {
        // β = 0.9: an observed 95 against my 100 is within tolerance.
        let mut gtft = GenerousTft::try_new(100, 2, 0.9).unwrap();
        let g = game(2);
        let mut h = History::new();
        h.push(record(vec![100, 95]));
        assert_eq!(gtft.next_window(0, &g, &h).unwrap(), 100);
    }

    #[test]
    fn gtft_reacts_to_large_undercuts() {
        let mut gtft = GenerousTft::try_new(100, 2, 0.9).unwrap();
        let g = game(2);
        let mut h = History::new();
        h.push(record(vec![100, 50]));
        assert_eq!(gtft.next_window(0, &g, &h).unwrap(), 50);
    }

    #[test]
    fn gtft_averages_over_memory() {
        // One noisy stage at 70 averaged with 110 gives 90 ≥ β·100: forgive.
        let mut gtft = GenerousTft::try_new(100, 2, 0.9).unwrap();
        let g = game(2);
        let mut h = History::new();
        h.push(record(vec![100, 110]));
        h.push(record(vec![100, 70]));
        assert_eq!(gtft.next_window(0, &g, &h).unwrap(), 100);
    }

    #[test]
    #[should_panic(expected = "memory")]
    #[allow(deprecated)]
    fn gtft_rejects_zero_memory() {
        let _ = GenerousTft::new(100, 0, 0.9);
    }

    #[test]
    fn gtft_try_new_rejects_invalid_parameters() {
        assert!(GenerousTft::try_new(100, 0, 0.9).is_err());
        assert!(GenerousTft::try_new(100, 1, 0.0).is_err());
        assert!(GenerousTft::try_new(100, 1, 1.5).is_err());
        assert!(GenerousTft::try_new(100, 1, f64::NAN).is_err());
        assert!(GenerousTft::try_new(100, 1, 1.0).is_ok());
    }

    #[test]
    fn constant_never_moves() {
        let mut c = Constant::new(7);
        let g = game(2);
        let mut h = History::new();
        h.push(record(vec![7, 1]));
        assert_eq!(c.next_window(0, &g, &h).unwrap(), 7);
        assert_eq!(Constant::malicious().initial_window(0, &g), 1);
    }

    #[test]
    fn best_response_exploits_polite_opponents() {
        // Against very polite opponents, the myopic best response is far
        // more aggressive than the efficient NE window.
        let g = game(5);
        let mut br = BestResponse::new(76);
        let mut h = History::new();
        h.push(record(vec![512; 5]));
        let w = br.next_window(0, &g, &h).unwrap();
        assert!(w < 76, "best response {w} should undercut");
    }

    #[test]
    fn best_response_joins_pileup_when_attempts_still_pay() {
        // Against W = 1 opponents, as long as (1−p)·g > e each attempt is
        // still positive in expectation, so the myopic best response piles
        // on — exactly the collapse dynamic of short-sighted play.
        let g = game(5);
        let mut br = BestResponse::new(76);
        let mut h = History::new();
        h.push(record(vec![1; 5]));
        let w = br.next_window(0, &g, &h).unwrap();
        assert!(w <= 2, "best response was {w}");
    }

    #[test]
    fn best_response_backs_off_when_attempts_lose_money() {
        // With a high energy cost, (1−p)·g < e in the pile-up: the myopic
        // best response now avoids the fray by maximizing its window.
        let g = GameConfig::builder(5)
            .utility(macgame_dcf::UtilityParams { gain: 1.0, cost: 0.5 })
            .build()
            .unwrap();
        let mut br = BestResponse::new(76);
        let mut h = History::new();
        h.push(record(vec![1; 5]));
        let w = br.next_window(0, &g, &h).unwrap();
        assert!(w > 100, "best response was {w}");
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Tft::new(1).name(), "tft");
        assert_eq!(GenerousTft::try_new(1, 1, 0.5).unwrap().name(), "generous-tft");
        assert_eq!(Constant::new(1).name(), "constant");
        assert_eq!(BestResponse::new(1).name(), "best-response");
    }

    #[test]
    fn hill_climb_probes_then_turns() {
        let g = game(2);
        let mut hc = HillClimb::try_new(50, 8).unwrap();
        assert_eq!(hc.initial_window(0, &g), 50);
        let mut h = History::new();
        // Stage 0: utility observed, probe upward.
        h.push(StageRecord {
            windows: vec![50, 50],
            observed: vec![50, 50],
            utilities: vec![1.0, 1.0],
        });
        assert_eq!(hc.next_window(0, &g, &h).unwrap(), 58);
        // Improvement: keep climbing.
        h.push(StageRecord {
            windows: vec![58, 50],
            observed: vec![58, 50],
            utilities: vec![1.2, 1.0],
        });
        assert_eq!(hc.next_window(0, &g, &h).unwrap(), 66);
        // Regression: reverse with half the step.
        h.push(StageRecord {
            windows: vec![66, 50],
            observed: vec![66, 50],
            utilities: vec![0.9, 1.0],
        });
        assert_eq!(hc.next_window(0, &g, &h).unwrap(), 62);
    }

    #[test]
    fn hill_climb_improves_its_own_payoff_in_the_game() {
        // One adapter against a pinned crowd, exact stage evaluation: after
        // a couple dozen stages its payoff must beat its starting payoff.
        use crate::evaluator::AnalyticalEvaluator;
        use crate::repeated::RepeatedGame;
        let g = game(5);
        let mut players: Vec<Box<dyn Strategy>> = vec![Box::new(HillClimb::try_new(400, 32).unwrap())];
        for _ in 1..5 {
            players.push(Box::new(Constant::new(79)));
        }
        let evaluator = Box::new(AnalyticalEvaluator::new(g.clone()));
        let mut rg = RepeatedGame::new(g, players, evaluator).unwrap();
        rg.play(25).unwrap();
        let stages = rg.history().stages();
        let first = stages[0].utilities[0];
        let last = stages.last().unwrap().utilities[0];
        assert!(
            last > 1.05 * first,
            "hill climb failed to improve: {first} → {last}"
        );
    }

    #[test]
    #[should_panic(expected = "step")]
    #[allow(deprecated)]
    fn hill_climb_rejects_zero_step() {
        let _ = HillClimb::new(10, 0);
    }

    #[test]
    fn hill_climb_try_new_rejects_zero_step() {
        assert!(HillClimb::try_new(10, 0).is_err());
        assert!(HillClimb::try_new(10, 1).is_ok());
    }
}
