//! The EDCA product-space experiment behind `repro -- edca`: the Banchs
//! per-knob cheating-gain surface, Table II degenerate-tuple consistency,
//! the `(CWmin, TXOP)` TFT deviation plane, a tuple-lattice best response,
//! and replicated simulator agreement on two genuinely-EDCA scenarios.
//!
//! Everything in the payload is a pure function of the settings — the
//! analytic sections are serial and exact, and the simulated sections fan
//! replicas out through `replicate_threads`, whose merge is bitwise
//! thread-count invariant. `artifacts/EDCA.json` is therefore byte-
//! identical at every `MACGAME_THREADS` setting; CI compares the bytes at
//! 1 and 2 workers.

use macgame_core::edca::{
    edca_axis_sweep, edca_best_response, edca_plane_ne, EdcaAxis, EdcaBestResponse, EdcaGainRow,
    EdcaLattice, EdcaPlaneCell, EdcaStageMemo,
};
use macgame_core::equilibrium::efficient_ne;
use macgame_core::queries::{evaluate_query, Query, QueryResult, SolveCaches};
use macgame_core::GameConfig;
use macgame_dcf::classes::ClassProfile;
use macgame_dcf::fixedpoint::{solve_classes, SolveOptions};
use macgame_dcf::{solve_edca, AccessMode, EdcaProfile, EdcaTuple};
use macgame_sim::{validate_edca_sweep, SweepReport};
use serde::{Deserialize, Serialize};

use crate::BenchError;

/// Workload knobs for the EDCA experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdcaSettings {
    /// Population for the gain surface, plane, and simulated scenarios.
    pub n: usize,
    /// Populations for the degenerate Table II consistency scan.
    pub populations: Vec<usize>,
    /// Slots per simulated replica.
    pub slots: u64,
    /// Independently seeded replicas per scenario.
    pub replications: usize,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Worker threads for replica fan-out (`0` = the `MACGAME_THREADS`
    /// default). Never affects payload bytes.
    pub threads: usize,
}

impl EdcaSettings {
    /// Fast CI workload.
    #[must_use]
    pub fn quick() -> Self {
        EdcaSettings {
            n: 5,
            populations: vec![5, 10, 20],
            slots: 60_000,
            replications: 4,
            base_seed: 2007,
            threads: 0,
        }
    }

    /// Paper-strength workload.
    #[must_use]
    pub fn full() -> Self {
        EdcaSettings {
            n: 5,
            populations: vec![5, 10, 20, 50],
            slots: 240_000,
            replications: 8,
            base_seed: 2007,
            threads: 0,
        }
    }
}

/// One knob's slice of the cheating-gain surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisSurface {
    /// The swept knob.
    pub axis: String,
    /// Gain rows in sweep order.
    pub rows: Vec<EdcaGainRow>,
}

/// One population's degenerate-tuple consistency row: the EDCA machinery
/// pinned to `(W, m, 0, 1)` must reproduce the scalar Table II scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegenerateRow {
    /// Population.
    pub n: usize,
    /// `W_c*` from the scalar optimizer.
    pub w_star_scalar: u32,
    /// `W_c*` from the `EdcaWcStar` query at `txop = 1`.
    pub w_star_edca: u32,
    /// Per-node utility rate from the scalar optimizer.
    pub utility_scalar: f64,
    /// Per-node utility rate from the EDCA query.
    pub utility_edca: f64,
    /// Whether the two windows agree exactly.
    pub window_equal: bool,
    /// Whether the two utilities agree bitwise.
    pub utility_bitwise: bool,
    /// Whether `solve_edca` on the degenerate profile reproduces the
    /// class solver's `τ` vector bitwise at `W_c*`.
    pub tau_bitwise: bool,
}

/// One discount setting's `(CWmin, TXOP)` TFT-priced deviation plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaneSection {
    /// The deviator's discount factor.
    pub delta_s: f64,
    /// TFT reaction lag in stages.
    pub reaction_stages: u32,
    /// Grid cells in `cw_mins × txops` order.
    pub cells: Vec<EdcaPlaneCell>,
    /// Number of cells where deviating strictly profits.
    pub profitable_cells: usize,
}

/// One replicated simulator-agreement scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimScenario {
    /// Scenario label.
    pub name: String,
    /// The simulated tuple profile.
    pub tuples: Vec<EdcaTuple>,
    /// The replicated model-vs-measurement comparison.
    pub report: SweepReport,
    /// Worst per-node relative `τ̂` error of the replica mean.
    pub max_tau_error: f64,
    /// Worst per-node relative `p̂` error of the replica mean.
    pub max_p_error: f64,
    /// Relative error of the mean `Ŝ`.
    pub throughput_error: f64,
}

/// The full `artifacts/EDCA.json` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdcaPayload {
    /// The workload that produced this payload.
    pub settings: EdcaSettings,
    /// The compliant crowd's tuple for the gain surface and lattice
    /// search (`AIFS = 1` so the AIFS knob has a selfish direction).
    pub baseline: EdcaTuple,
    /// Per-knob cheating-gain slices at the baseline.
    pub gain_surface: Vec<AxisSurface>,
    /// The stage-rate argmax over the candidate tuple lattice.
    pub best_response: EdcaBestResponse,
    /// Degenerate-tuple consistency against the scalar Table II scan.
    pub degenerate: Vec<DegenerateRow>,
    /// TFT-priced `(CWmin, TXOP)` planes at a myopic and a patient
    /// discount.
    pub plane: Vec<PlaneSection>,
    /// Replicated simulator agreement on heterogeneous-AIFS and
    /// TXOP-burst scenarios.
    pub sim: Vec<SimScenario>,
}

/// Runs the EDCA experiment.
///
/// # Errors
///
/// Propagates model, game, and simulator failures.
pub fn run_edca(settings: &EdcaSettings) -> Result<EdcaPayload, BenchError> {
    let game = GameConfig::builder(settings.n).build()?;
    let params = *game.params();
    let m = params.max_backoff_stage();
    let w_star = efficient_ne(&game)?.window;
    let mut memo = EdcaStageMemo::new();

    // ── Per-knob cheating-gain surface (Banchs-style) ──────────────────
    let baseline = EdcaTuple::new(w_star, m, 1, 1)?;
    let quarter = (w_star / 4).max(1);
    let half = (w_star / 2).max(1);
    let axes: [(EdcaAxis, Vec<u32>); 4] = [
        (EdcaAxis::CwMin, vec![quarter, half, w_star, w_star * 2]),
        (EdcaAxis::StageCap, vec![0, 1, 3, m]),
        (EdcaAxis::Aifs, vec![0, 1, 2, 4]),
        (EdcaAxis::Txop, vec![1, 2, 4, 8, 16]),
    ];
    let mut gain_surface = Vec::with_capacity(axes.len());
    for (axis, values) in &axes {
        gain_surface.push(AxisSurface {
            axis: axis.name().to_string(),
            rows: edca_axis_sweep(&game, baseline, *axis, values, &mut memo)?,
        });
    }

    // ── Tuple-lattice best response against the compliant crowd ────────
    let lattice = EdcaLattice {
        cw_mins: vec![quarter, half, w_star],
        stage_caps: vec![1, m],
        aifs: vec![0, 1],
        txops: vec![1, 4, 8],
    };
    let best_response = edca_best_response(&game, baseline, &lattice, &mut memo)?;

    // ── Degenerate tuples must reproduce the scalar Table II scan ──────
    let caches = SolveCaches::with_capacity(1024)?;
    let mut degenerate = Vec::with_capacity(settings.populations.len());
    for &n in &settings.populations {
        let g = GameConfig::builder(n).build()?;
        let scalar = efficient_ne(&g)?;
        let query =
            Query::EdcaWcStar { players: n, mode: AccessMode::Basic, txop: 1, w_max: g.w_max() };
        let QueryResult::EdcaWcStar { window, utility, .. } = evaluate_query(&query, &caches)?
        else {
            return Err(BenchError::Game(macgame_core::GameError::InvalidConfig(
                "EdcaWcStar query answered with a foreign variant".into(),
            )));
        };
        let profile = EdcaProfile::new(vec![EdcaTuple::legacy(scalar.window, &params)?], vec![n])?;
        let edca_eq = solve_edca(&profile, &params, SolveOptions::default())?;
        let class_eq = solve_classes(
            &ClassProfile::new(vec![scalar.window], vec![n])?,
            &params,
            SolveOptions::default(),
        )?;
        degenerate.push(DegenerateRow {
            n,
            w_star_scalar: scalar.window,
            w_star_edca: window,
            utility_scalar: scalar.utility,
            utility_edca: utility,
            window_equal: window == scalar.window,
            utility_bitwise: utility.to_bits() == scalar.utility.to_bits(),
            tau_bitwise: edca_eq
                .taus
                .iter()
                .zip(&class_eq.taus)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
        });
    }

    // ── The (CWmin, TXOP) TFT deviation plane ───────────────────────────
    let sym = EdcaTuple::legacy(w_star, &params)?;
    let cw_mins = [quarter, half, w_star, w_star * 2];
    let txops = [1u32, 2, 4, 8];
    let mut plane = Vec::new();
    for &(delta_s, reaction_stages) in &[(0.0f64, 1u32), (0.99, 1)] {
        let cells =
            edca_plane_ne(&game, sym, &cw_mins, &txops, reaction_stages, delta_s, &mut memo)?;
        let profitable_cells = cells.iter().filter(|c| c.profitable).count();
        plane.push(PlaneSection { delta_s, reaction_stages, cells, profitable_cells });
    }

    // ── Replicated simulator agreement on two EDCA scenarios ───────────
    // The slot engine draws backoff chains from the ambient stage cap, so
    // both scenarios keep `stage_cap = m`.
    let mut hetero_aifs = vec![EdcaTuple::legacy(w_star, &params)?; settings.n];
    if let Some(last) = hetero_aifs.last_mut() {
        last.aifs = 1;
    }
    let burst = vec![EdcaTuple::new(w_star, m, 0, 4)?; settings.n];
    let mut sim = Vec::new();
    for (name, tuples) in [("hetero-aifs", hetero_aifs), ("txop-burst", burst)] {
        let report = validate_edca_sweep(
            &tuples,
            &params,
            settings.slots,
            settings.replications,
            settings.base_seed,
            settings.threads,
        )?;
        sim.push(SimScenario {
            name: name.to_string(),
            tuples,
            max_tau_error: report.max_tau_error(),
            max_p_error: report.max_p_error(),
            throughput_error: report.throughput_relative_error(),
            report,
        });
    }

    Ok(EdcaPayload {
        settings: settings.clone(),
        baseline,
        gain_surface,
        best_response,
        degenerate,
        plane,
        sim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> EdcaPayload {
        let settings = EdcaSettings { slots: 20_000, replications: 2, ..EdcaSettings::quick() };
        run_edca(&settings).unwrap()
    }

    #[test]
    fn payload_is_internally_consistent() {
        let p = payload();
        assert_eq!(p.gain_surface.len(), 4);
        for surface in &p.gain_surface {
            assert!(!surface.rows.is_empty(), "{} slice is empty", surface.axis);
            for row in &surface.rows {
                assert!(row.gain.is_finite() && row.gain > 0.0);
            }
        }
        // Every degenerate row reproduces the scalar scan exactly.
        for row in &p.degenerate {
            assert!(row.window_equal, "n = {}: {row:?}", row.n);
            assert!(row.utility_bitwise, "n = {}: {row:?}", row.n);
            assert!(row.tau_bitwise, "n = {}: {row:?}", row.n);
        }
        // The lattice's most selfish corner wins with a real gain.
        assert!(p.best_response.gain > 1.0);
        // Myopic cheating profits somewhere; a patient deviator holds.
        assert!(p.plane[0].profitable_cells > 0);
        assert!(p.plane[1].profitable_cells <= p.plane[0].profitable_cells);
    }

    #[test]
    fn payload_bytes_are_reproducible_and_thread_invariant() {
        let settings = EdcaSettings { slots: 20_000, replications: 2, ..EdcaSettings::quick() };
        let base = serde_json::to_string(&run_edca(&settings).unwrap()).unwrap();
        for threads in [1usize, 2, 8] {
            let pinned = EdcaSettings { threads, ..settings.clone() };
            let mut other = run_edca(&pinned).unwrap();
            // The thread knob is workload metadata, not a result; pin it
            // back so the byte comparison covers every computed section.
            other.settings.threads = settings.threads;
            let bytes = serde_json::to_string(&other).unwrap();
            assert_eq!(bytes, base, "payload bytes changed at threads = {threads}");
        }
    }
}
