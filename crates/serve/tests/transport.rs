//! Transport end-to-end tests: the TCP front end over a localhost
//! ephemeral port, multi-frame sessions, and recovery after garbage —
//! the same engine semantics the in-process [`ServeHarness`] asserts,
//! now through real sockets.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use macgame_core::queries::Query;
use macgame_dcf::AccessMode;
use macgame_serve::frame::write_frame;
use macgame_serve::{serve_tcp, Engine, EngineConfig, ErrorKind, Reply, ServeHarness};

/// Binds an ephemeral localhost port and serves it from a detached
/// thread, returning the address to dial. The accept loop runs for the
/// life of the test process.
fn spawn_server() -> (Arc<Engine>, std::net::SocketAddr) {
    let engine = Arc::new(Engine::new(EngineConfig::default()).unwrap());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let accept_engine = Arc::clone(&engine);
    std::thread::spawn(move || {
        let _ = serve_tcp(&accept_engine, &listener);
    });
    (engine, addr)
}

fn queries() -> Vec<Query> {
    vec![
        Query::WcStar { players: 3, mode: AccessMode::Basic, w_max: 256 },
        Query::NeInterval { players: 4, mode: AccessMode::RtsCts, w_max: 256 },
        Query::DeviationPayoff {
            players: 5,
            mode: AccessMode::Basic,
            w_star: 79,
            w_dev: 20,
            reaction_stages: 1,
            delta_s: 0.0,
        },
    ]
}

/// Reads reply frames off `stream` until `count` have arrived.
fn read_replies(stream: &mut TcpStream, count: usize) -> Vec<Reply> {
    let mut replies = Vec::new();
    while replies.len() < count {
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix).unwrap();
        let len = u32::from_be_bytes(prefix) as usize;
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload).unwrap();
        replies.push(serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap());
    }
    replies
}

#[test]
fn tcp_round_trip_matches_the_in_process_harness() {
    let (_engine, addr) = spawn_server();
    let queries = queries();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&ServeHarness::encode_batch(&queries).unwrap()).unwrap();
    let over_tcp = read_replies(&mut stream, queries.len());

    let harness = ServeHarness::new().unwrap();
    let in_process = harness.query_batch(&queries).unwrap();
    assert_eq!(over_tcp, in_process, "TCP replies must match the in-process wire path");
}

#[test]
fn one_connection_serves_many_frames_in_order() {
    let (_engine, addr) = spawn_server();
    let mut stream = TcpStream::connect(addr).unwrap();
    for players in 2..=5 {
        let batch = vec![Query::WcStar { players, mode: AccessMode::Basic, w_max: 256 }];
        stream.write_all(&ServeHarness::encode_batch(&batch).unwrap()).unwrap();
        let replies = read_replies(&mut stream, 1);
        assert_eq!(replies[0].id(), Some(1));
        assert!(replies[0].is_ok(), "frame for players={players} failed");
    }
}

#[test]
fn a_garbage_frame_does_not_kill_the_connection() {
    let (_engine, addr) = spawn_server();
    let mut stream = TcpStream::connect(addr).unwrap();

    let mut wire = Vec::new();
    write_frame(&mut wire, b"definitely not a batch").unwrap();
    stream.write_all(&wire).unwrap();
    let garbage_replies = read_replies(&mut stream, 1);
    let Reply::Error { id: None, error } = &garbage_replies[0] else {
        panic!("expected a null-id error reply");
    };
    assert_eq!(error.kind, ErrorKind::MalformedJson);

    // The same connection still answers a well-formed batch.
    let queries = queries();
    stream.write_all(&ServeHarness::encode_batch(&queries).unwrap()).unwrap();
    let replies = read_replies(&mut stream, queries.len());
    assert!(replies.iter().all(Reply::is_ok));
}

#[test]
fn concurrent_connections_share_one_engine_and_its_caches() {
    let (engine, addr) = spawn_server();
    let queries = Arc::new(queries());
    let expected = {
        let harness = ServeHarness::new().unwrap();
        harness.query_batch(&queries).unwrap()
    };

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let queries = Arc::clone(&queries);
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.write_all(&ServeHarness::encode_batch(&queries).unwrap()).unwrap();
                let replies = read_replies(&mut stream, queries.len());
                assert_eq!(replies, expected);
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    // All four connections fed the same shared reply cache. Concurrent
    // cold lookups may each miss before the first insert lands
    // (first-insert-wins keeps the values identical), so the exact
    // hit/miss split is timing-dependent — but every lookup is counted
    // exactly once, and the batches raced so at least one hit occurred
    // only if some connection arrived after an insert.
    let lookups = engine.reply_cache().hits() + engine.reply_cache().misses();
    assert_eq!(lookups, (4 * queries.len()) as u64);
    assert!(engine.reply_cache().misses() >= queries.len() as u64);
}
