//! Section V.C (equilibrium search) and TFT-convergence experiments.

use macgame_core::equilibrium::{efficient_ne, ne_interval};
use macgame_core::evaluator::AnalyticalEvaluator;
use macgame_core::search::{run_search, AnalyticProbe, SimulatedProbe};
use macgame_core::strategy::{Strategy, Tft};
use macgame_core::{GameConfig, RepeatedGame};
use macgame_dcf::MicroSecs;
use serde::{Deserialize, Serialize};

use crate::BenchError;

/// Outcome of one search run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchRow {
    /// Starting window `W₀`.
    pub w0: u32,
    /// Window found by the protocol.
    pub w_found: u32,
    /// Ground-truth `W_c*`.
    pub w_star: u32,
    /// Number of payoff measurements.
    pub measurements: usize,
    /// Relative error of the found window.
    pub relative_error: f64,
}

/// Runs the analytic-probe search from several starting points.
///
/// # Errors
///
/// Propagates model failures.
pub fn analytic_search_table(n: usize, starts: &[u32]) -> Result<Vec<SearchRow>, BenchError> {
    let game = GameConfig::builder(n).build()?;
    let w_star = efficient_ne(&game)?.window;
    let mut rows = Vec::new();
    for &w0 in starts {
        let mut probe = AnalyticProbe::new(game.clone());
        let outcome = run_search(&mut probe, &game, w0, 0.0)?;
        rows.push(SearchRow {
            w0,
            w_found: outcome.w_m,
            w_star,
            measurements: outcome.trace.len(),
            relative_error: (f64::from(outcome.w_m) - f64::from(w_star)).abs()
                / f64::from(w_star),
        });
    }
    Ok(rows)
}

/// Runs the simulated-probe (noisy) search.
///
/// # Errors
///
/// Propagates model/simulator failures.
pub fn simulated_search(
    n: usize,
    w0: u32,
    measure_secs: f64,
    margin: f64,
    seed: u64,
) -> Result<SearchRow, BenchError> {
    let game = GameConfig::builder(n).build()?;
    let w_star = efficient_ne(&game)?.window;
    let mut probe =
        SimulatedProbe::new(game.clone(), seed, MicroSecs::from_seconds(measure_secs))?;
    let outcome = run_search(&mut probe, &game, w0, margin)?;
    Ok(SearchRow {
        w0,
        w_found: outcome.w_m,
        w_star,
        measurements: outcome.trace.len(),
        relative_error: (f64::from(outcome.w_m) - f64::from(w_star)).abs() / f64::from(w_star),
    })
}

/// Convergence of TFT play from heterogeneous initial windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceRow {
    /// Initial windows.
    pub initials: Vec<u32>,
    /// Stage at which play became uniform.
    pub converged_at_stage: Option<usize>,
    /// The common window after convergence.
    pub window: Option<u32>,
}

/// Plays TFT from several heterogeneous starts (analytic evaluator) and
/// reports the convergence stage — the paper's "within finite number of
/// stages all players operate on the same CW value".
///
/// # Errors
///
/// Propagates model failures.
pub fn tft_convergence_table(
    initial_profiles: &[Vec<u32>],
) -> Result<Vec<ConvergenceRow>, BenchError> {
    let mut rows = Vec::new();
    for initials in initial_profiles {
        let game = GameConfig::builder(initials.len()).build()?;
        let players: Vec<Box<dyn Strategy>> =
            initials.iter().map(|&w| Box::new(Tft::new(w)) as Box<dyn Strategy>).collect();
        let evaluator = Box::new(AnalyticalEvaluator::new(game.clone()));
        let mut rg = RepeatedGame::new(game, players, evaluator)?;
        let report = rg.play_until_converged(20, 2)?;
        rows.push(ConvergenceRow {
            initials: initials.clone(),
            converged_at_stage: report.stage,
            window: report.window,
        });
    }
    Ok(rows)
}

/// The Theorem 2 NE interval summary for a population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalRow {
    /// Population.
    pub n: usize,
    /// `W_c⁰`.
    pub lower: u32,
    /// `W_c*`.
    pub upper: u32,
    /// Number of symmetric NE.
    pub count: u32,
}

/// NE-interval rows for several populations.
///
/// # Errors
///
/// Propagates model failures.
pub fn interval_table(populations: &[usize]) -> Result<Vec<IntervalRow>, BenchError> {
    let mut rows = Vec::new();
    for &n in populations {
        let game = GameConfig::builder(n).build()?;
        let interval = ne_interval(&game)?;
        rows.push(IntervalRow {
            n,
            lower: interval.lower,
            upper: interval.upper,
            count: interval.count(),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_search_is_exact_from_anywhere() {
        let rows = analytic_search_table(5, &[5, 40, 79, 120, 300]).unwrap();
        for row in &rows {
            assert_eq!(row.w_found, row.w_star, "from W₀ = {}", row.w0);
            assert_eq!(row.relative_error, 0.0);
        }
    }

    #[test]
    fn simulated_search_lands_near_optimum() {
        let row = simulated_search(5, 60, 30.0, 0.002, 11).unwrap();
        assert!(row.relative_error < 0.35, "found {} vs {}", row.w_found, row.w_star);
    }

    #[test]
    fn tft_convergence_is_one_stage_under_perfect_observation() {
        let rows =
            tft_convergence_table(&[vec![100, 50, 80], vec![30, 30, 30], vec![7, 9, 11, 13]])
                .unwrap();
        assert_eq!(rows[0].converged_at_stage, Some(1));
        assert_eq!(rows[0].window, Some(50));
        assert_eq!(rows[1].converged_at_stage, Some(0));
        assert_eq!(rows[2].window, Some(7));
    }

    #[test]
    fn interval_grows_with_population() {
        let rows = interval_table(&[2, 5, 10]).unwrap();
        assert!(rows.windows(2).all(|p| p[0].upper < p[1].upper));
        for row in &rows {
            assert!(row.lower <= row.upper);
        }
    }
}
