//! Ready-made IEEE 802.11 parameter presets.
//!
//! The paper's Table I is a 1 Mbit/s DSSS-era configuration; these presets
//! let the same model answer questions about other PHYs. Derived constants
//! (σ, SIFS, DIFS, header sizes) follow the respective standards'
//! MAC-layer timing; payloads default to the paper's 8184 bits so results
//! stay comparable.

use crate::params::{DcfParams, FrameParams, PhyParams};
use crate::units::{BitRate, Bits, MicroSecs};

/// The paper's Table I configuration (identical to [`DcfParams::default`]):
/// 1 Mbit/s, σ = 50 µs, SIFS = 28 µs, DIFS = 128 µs.
#[must_use]
pub fn paper_table1() -> DcfParams {
    DcfParams::default()
}

/// IEEE 802.11b (DSSS, long preamble): 11 Mbit/s payload rate,
/// σ = 20 µs, SIFS = 10 µs, DIFS = 50 µs, 192 µs PHY preamble+header
/// (represented as its 1 Mbit/s-equivalent bit count at the payload rate).
#[must_use]
pub fn ieee80211b() -> DcfParams {
    // At 11 Mbit/s, the 192 µs long preamble+PLCP corresponds to 2112 bits.
    DcfParams::builder()
        .phy(PhyParams {
            slot: MicroSecs::new(20.0),
            sifs: MicroSecs::new(10.0),
            difs: MicroSecs::new(50.0),
            phy_header: Bits::new(2112),
            bit_rate: BitRate::from_mbps(11.0),
        })
        .frames(FrameParams::default())
        .build()
        .expect("preset parameters are valid") // PANIC-POLICY: constant parameters are valid by construction
}

/// IEEE 802.11a/g (OFDM): 54 Mbit/s, σ = 9 µs, SIFS = 16 µs, DIFS = 34 µs,
/// 20 µs OFDM preamble+header (≈ 1080 bits at 54 Mbit/s).
#[must_use]
pub fn ieee80211ag() -> DcfParams {
    DcfParams::builder()
        .phy(PhyParams {
            slot: MicroSecs::new(9.0),
            sifs: MicroSecs::new(16.0),
            difs: MicroSecs::new(34.0),
            phy_header: Bits::new(1080),
            bit_rate: BitRate::from_mbps(54.0),
        })
        .frames(FrameParams::default())
        .build()
        .expect("preset parameters are valid") // PANIC-POLICY: constant parameters are valid by construction
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::efficient_cw;
    use crate::utility::UtilityParams;

    #[test]
    fn presets_have_standard_timing() {
        assert_eq!(paper_table1().sigma().value(), 50.0);
        let b = ieee80211b();
        assert_eq!(b.sigma().value(), 20.0);
        assert_eq!(b.phy().sifs.value(), 10.0);
        // 192 µs preamble at 11 Mbit/s.
        assert!((b.phy().phy_header.tx_time(b.phy().bit_rate).value() - 192.0).abs() < 1e-9);
        let ag = ieee80211ag();
        assert_eq!(ag.sigma().value(), 9.0);
        assert!((ag.phy().phy_header.tx_time(ag.phy().bit_rate).value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn faster_phys_shrink_frame_times() {
        let t1 = paper_table1().timings().success_time.value();
        let t11 = ieee80211b().timings().success_time.value();
        let t54 = ieee80211ag().timings().success_time.value();
        assert!(t11 < t1 / 4.0, "11b Ts {t11} vs paper {t1}");
        assert!(t54 < t11 / 2.0, "a/g Ts {t54} vs 11b {t11}");
    }

    #[test]
    fn efficient_ne_scales_across_phys() {
        // Faster PHYs shrink the collision cost Tc relative to σ, so the
        // efficient window is smaller — the same game, different constants.
        let u = UtilityParams::default();
        let w_paper = efficient_cw(5, &paper_table1(), &u, 2048).unwrap().window;
        let w_b = efficient_cw(5, &ieee80211b(), &u, 2048).unwrap().window;
        let w_ag = efficient_cw(5, &ieee80211ag(), &u, 2048).unwrap().window;
        assert!(w_b < w_paper, "11b W* {w_b} vs paper {w_paper}");
        assert!(w_ag < w_b, "a/g W* {w_ag} vs 11b {w_b}");
        assert!(w_ag >= 1);
    }
}
