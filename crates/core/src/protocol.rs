//! The Section V.C search as a *distributed protocol*: node actors
//! exchanging messages over a (possibly lossy) broadcast bus.
//!
//! [`crate::search::run_search`] is the centralized abstraction of the
//! algorithm; this module is its distributed implementation. Every node is
//! a state machine ([`SearchActor`]): the leader walks the window and
//! broadcasts `Ready`, followers retune on every `Ready`, and the final
//! `Broadcast` commits the efficient window network-wide. A configurable
//! per-message loss probability exposes the protocol's real-world failure
//! mode — followers missing a `Ready` measure the leader's payoff on a
//! *stale* profile — and the driver quantifies the resulting desync.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::error::GameError;
use crate::game::GameConfig;
use crate::search::{PayoffProbe, SearchMessage};

/// Role-dependent actor state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum ActorState {
    /// Waiting for a search to start.
    Idle,
    /// Following `Ready` messages.
    Following,
    /// Search finished; committed to the broadcast window.
    Committed,
}

/// One protocol participant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchActor {
    id: usize,
    window: u32,
    state: ActorState,
    /// `Ready` messages this actor actually received.
    pub readies_received: usize,
    /// `Ready` messages it missed (diagnosed post-hoc by the driver).
    pub readies_missed: usize,
}

impl SearchActor {
    /// Creates a follower starting at `window`.
    #[must_use]
    pub fn new(id: usize, window: u32) -> Self {
        SearchActor {
            id,
            window,
            state: ActorState::Idle,
            readies_received: 0,
            readies_missed: 0,
        }
    }

    /// The actor's node id.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The window the actor currently operates on.
    #[must_use]
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Whether the actor has committed to a final window.
    #[must_use]
    pub fn committed(&self) -> bool {
        self.state == ActorState::Committed
    }

    /// Handles one received protocol message.
    pub fn handle(&mut self, message: SearchMessage) {
        match message {
            SearchMessage::StartSearch { w0 } => {
                self.window = w0.max(1);
                self.state = ActorState::Following;
            }
            SearchMessage::Ready { w } => {
                if self.state == ActorState::Following {
                    self.window = w.max(1);
                    self.readies_received += 1;
                }
            }
            SearchMessage::Broadcast { w_m } => {
                self.window = w_m.max(1);
                self.state = ActorState::Committed;
            }
        }
    }
}

/// A lossy broadcast bus: each delivery to each recipient independently
/// drops with probability `loss`.
#[derive(Debug)]
pub struct BroadcastBus {
    loss: f64,
    rng: ChaCha8Rng,
    /// Total deliveries attempted.
    pub deliveries: u64,
    /// Deliveries dropped.
    pub dropped: u64,
}

impl BroadcastBus {
    /// Creates a bus with per-delivery loss probability `loss`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidConfig`] unless `loss ∈ [0, 1)`.
    pub fn new(loss: f64, seed: u64) -> Result<Self, GameError> {
        if !(0.0..1.0).contains(&loss) {
            return Err(GameError::InvalidConfig("loss must be in [0, 1)".into()));
        }
        Ok(BroadcastBus { loss, rng: ChaCha8Rng::seed_from_u64(seed), deliveries: 0, dropped: 0 })
    }

    /// Delivers `message` to every actor except `from`; returns how many
    /// deliveries were dropped.
    pub fn broadcast(
        &mut self,
        from: usize,
        message: SearchMessage,
        actors: &mut [SearchActor],
    ) -> usize {
        let mut lost = 0;
        for actor in actors.iter_mut() {
            if actor.id() == from {
                continue;
            }
            self.deliveries += 1;
            if self.rng.gen::<f64>() < self.loss {
                self.dropped += 1;
                lost += 1;
                if matches!(message, SearchMessage::Ready { .. }) {
                    actor.readies_missed += 1;
                }
            } else {
                actor.handle(message);
            }
        }
        lost
    }
}

/// Outcome of a distributed protocol round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolOutcome {
    /// The window the leader committed and broadcast.
    pub w_m: u32,
    /// Final per-actor windows (desync shows up here under loss).
    pub final_windows: Vec<u32>,
    /// Leaders' payoff measurements `(window, payoff)` in order.
    pub trace: Vec<(u32, f64)>,
    /// Total messages the leader sent.
    pub messages_sent: usize,
    /// Deliveries dropped by the bus.
    pub deliveries_dropped: u64,
}

impl ProtocolOutcome {
    /// Whether every actor ended on the leader's committed window.
    #[must_use]
    pub fn synchronized(&self) -> bool {
        self.final_windows.iter().all(|&w| w == self.w_m)
    }
}

/// Runs the distributed search: the leader (actor 0) hill-climbs exactly
/// as in Section V.C, each move broadcast as `Ready` over `bus`; follower
/// windows track the messages they actually receive. `probe` measures the
/// leader's payoff at each step (on the *intended* profile — the desync a
/// lossy bus causes is reported, not simulated, keeping the probe
/// abstraction of the search module).
///
/// # Errors
///
/// Returns [`GameError::InvalidConfig`] for an empty actor set or a
/// starting window outside the strategy space; propagates probe failures.
pub fn run_protocol(
    probe: &mut dyn PayoffProbe,
    game: &GameConfig,
    actors: &mut [SearchActor],
    bus: &mut BroadcastBus,
    w0: u32,
    min_improvement: f64,
) -> Result<ProtocolOutcome, GameError> {
    if actors.is_empty() {
        return Err(GameError::InvalidConfig("need at least one actor".into()));
    }
    if w0 == 0 || w0 > game.w_max() {
        return Err(GameError::InvalidConfig(format!(
            "starting window {w0} outside strategy space [1, {}]",
            game.w_max()
        )));
    }
    let improves = |new: f64, old: f64| new > old + min_improvement * old.abs();
    let leader = 0usize;
    let mut messages_sent = 0usize;

    // Start-Search: everyone (including the leader) adopts W₀.
    actors[leader].handle(SearchMessage::StartSearch { w0 });
    bus.broadcast(leader, SearchMessage::StartSearch { w0 }, actors);
    messages_sent += 1;

    let mut trace = Vec::new();
    let mut current = w0;
    let mut best = probe.measure(current)?;
    trace.push((current, best));

    // Right-Search.
    let mut moved_right = false;
    while current < game.w_max() {
        let w = current + 1;
        actors[leader].handle(SearchMessage::Ready { w });
        bus.broadcast(leader, SearchMessage::Ready { w }, actors);
        messages_sent += 1;
        let payoff = probe.measure(w)?;
        trace.push((w, payoff));
        if improves(payoff, best) {
            current = w;
            best = payoff;
            moved_right = true;
        } else {
            break;
        }
    }
    // Left-Search only if the first right step already hurt.
    if !moved_right {
        while current > 1 {
            let w = current - 1;
            actors[leader].handle(SearchMessage::Ready { w });
            bus.broadcast(leader, SearchMessage::Ready { w }, actors);
            messages_sent += 1;
            let payoff = probe.measure(w)?;
            trace.push((w, payoff));
            if improves(payoff, best) {
                current = w;
                best = payoff;
            } else {
                break;
            }
        }
    }

    // Final broadcast commits everyone who hears it.
    actors[leader].handle(SearchMessage::Broadcast { w_m: current });
    bus.broadcast(leader, SearchMessage::Broadcast { w_m: current }, actors);
    messages_sent += 1;

    Ok(ProtocolOutcome {
        w_m: current,
        final_windows: actors.iter().map(SearchActor::window).collect(),
        trace,
        messages_sent,
        deliveries_dropped: bus.dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::efficient_ne;
    use crate::search::AnalyticProbe;

    fn game(n: usize) -> GameConfig {
        GameConfig::builder(n).build().unwrap()
    }

    fn actors(n: usize, w: u32) -> Vec<SearchActor> {
        (0..n).map(|i| SearchActor::new(i, w)).collect()
    }

    #[test]
    fn lossless_protocol_synchronizes_at_w_star() {
        let g = game(5);
        let w_star = efficient_ne(&g).unwrap().window;
        let mut probe = AnalyticProbe::new(g.clone());
        let mut nodes = actors(5, 32);
        let mut bus = BroadcastBus::new(0.0, 1).unwrap();
        let outcome =
            run_protocol(&mut probe, &g, &mut nodes, &mut bus, w_star - 10, 0.0).unwrap();
        assert_eq!(outcome.w_m, w_star);
        assert!(outcome.synchronized());
        assert!(nodes.iter().all(SearchActor::committed));
        assert_eq!(outcome.deliveries_dropped, 0);
        // One Start + one Ready per move + one Broadcast.
        assert_eq!(outcome.messages_sent, outcome.trace.len() + 1);
    }

    #[test]
    fn lossy_bus_desynchronizes_followers() {
        let g = game(5);
        let w_star = efficient_ne(&g).unwrap().window;
        let mut probe = AnalyticProbe::new(g.clone());
        let mut nodes = actors(5, 32);
        let mut bus = BroadcastBus::new(0.4, 9).unwrap();
        let outcome =
            run_protocol(&mut probe, &g, &mut nodes, &mut bus, w_star - 25, 0.0).unwrap();
        assert!(outcome.deliveries_dropped > 0);
        // The leader still finds the optimum — its own measurements never
        // traverse the bus.
        assert_eq!(outcome.w_m, w_star);
        // Followers missed Readies; the driver records it.
        let missed: usize = nodes.iter().map(|a| a.readies_missed).sum();
        assert!(missed > 0);
    }

    #[test]
    fn final_broadcast_heals_mid_search_losses() {
        // Even a very lossy bus ends synchronized *if* the final Broadcast
        // gets through; run many seeds and check the invariant: an actor is
        // desynchronized iff it missed the final Broadcast.
        let g = game(4);
        let mut probe = AnalyticProbe::new(g.clone());
        for seed in 0..20 {
            let mut nodes = actors(4, 60);
            let mut bus = BroadcastBus::new(0.3, seed).unwrap();
            let outcome =
                run_protocol(&mut probe, &g, &mut nodes, &mut bus, 60, 0.0).unwrap();
            for node in &nodes[1..] {
                // A committed actor heard the final Broadcast and must sit
                // exactly on the committed window, regardless of how many
                // mid-search Readies it missed.
                if node.committed() {
                    assert_eq!(node.window(), outcome.w_m);
                }
            }
        }
    }

    #[test]
    fn actor_ignores_ready_before_start() {
        let mut actor = SearchActor::new(3, 64);
        actor.handle(SearchMessage::Ready { w: 10 });
        assert_eq!(actor.window(), 64, "idle actors must not follow stray Readies");
        actor.handle(SearchMessage::StartSearch { w0: 32 });
        actor.handle(SearchMessage::Ready { w: 33 });
        assert_eq!(actor.window(), 33);
    }

    #[test]
    fn validation() {
        let g = game(3);
        let mut probe = AnalyticProbe::new(g.clone());
        let mut empty: Vec<SearchActor> = Vec::new();
        let mut bus = BroadcastBus::new(0.0, 0).unwrap();
        assert!(run_protocol(&mut probe, &g, &mut empty, &mut bus, 10, 0.0).is_err());
        let mut nodes = actors(3, 10);
        assert!(run_protocol(&mut probe, &g, &mut nodes, &mut bus, 0, 0.0).is_err());
        assert!(BroadcastBus::new(1.0, 0).is_err());
        assert!(BroadcastBus::new(-0.1, 0).is_err());
    }
}
