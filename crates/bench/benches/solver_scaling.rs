//! Benchmarks the fixed-point solver strategies behind the NE-interval
//! scans (Table II workload, n = 10): plain damped cold solves (the
//! original iteration), Anderson-accelerated cold solves, warm-chained
//! sweeps, and the permutation-canonicalizing cache — cold and hot.
//!
//! The workload is the canonical deviation sweep: one deviator walks its
//! window over `[1, W_c*]` against a compliant crowd at `W_c*`.

use criterion::{criterion_group, criterion_main, Criterion};
use macgame_dcf::cache::SolveCache;
use macgame_dcf::fixedpoint::{solve, SolveOptions};
use macgame_dcf::optimal::efficient_cw;
use macgame_dcf::parallel::{solve_sweep, solve_sweep_cached};
use macgame_dcf::{DcfParams, UtilityParams};
use std::hint::black_box;

const N: usize = 10;

fn deviation_profiles(params: &DcfParams) -> Vec<Vec<u32>> {
    let w_star = efficient_cw(N, params, &UtilityParams::default(), 4096).unwrap().window;
    (1..=w_star)
        .map(|w_s| {
            let mut p = vec![w_star; N];
            p[0] = w_s;
            p
        })
        .collect()
}

fn bench_cold_damped(c: &mut Criterion) {
    let params = DcfParams::default();
    let profiles = deviation_profiles(&params);
    let options = SolveOptions { accelerate: false, ..SolveOptions::default() };
    let mut group = c.benchmark_group("solver_scaling/cold_damped");
    group.sample_size(10);
    group.bench_function("n10_deviation_sweep", |b| {
        b.iter(|| {
            for p in &profiles {
                black_box(solve(black_box(p), &params, options).unwrap());
            }
        });
    });
    group.finish();
}

fn bench_cold_accelerated(c: &mut Criterion) {
    let params = DcfParams::default();
    let profiles = deviation_profiles(&params);
    let options = SolveOptions::default();
    let mut group = c.benchmark_group("solver_scaling/cold_accelerated");
    group.sample_size(10);
    group.bench_function("n10_deviation_sweep", |b| {
        b.iter(|| {
            for p in &profiles {
                black_box(solve(black_box(p), &params, options).unwrap());
            }
        });
    });
    group.finish();
}

fn bench_warm_chained(c: &mut Criterion) {
    let params = DcfParams::default();
    let profiles = deviation_profiles(&params);
    let options = SolveOptions::default();
    let mut group = c.benchmark_group("solver_scaling/warm_chained");
    group.sample_size(10);
    group.bench_function("n10_deviation_sweep", |b| {
        b.iter(|| black_box(solve_sweep(black_box(&profiles), &params, options, 1).unwrap()));
    });
    group.finish();
}

fn bench_parallel_cached(c: &mut Criterion) {
    let params = DcfParams::default();
    let profiles = deviation_profiles(&params);
    let options = SolveOptions::default();
    let mut group = c.benchmark_group("solver_scaling/parallel_cached");
    group.sample_size(10);
    // Cold cache: every lookup is a miss; measures the full solve + insert
    // path with the auto thread count.
    group.bench_function("n10_cold_cache", |b| {
        b.iter(|| {
            let cache = SolveCache::new(params, options);
            black_box(solve_sweep_cached(black_box(&profiles), &cache, 0).unwrap())
        });
    });
    // Hot cache: the scan revisits profiles already solved (as repeated
    // scans, tournaments and payoff tables do); every lookup is a hit.
    let hot = SolveCache::new(params, options);
    solve_sweep_cached(&profiles, &hot, 0).unwrap();
    group.bench_function("n10_hot_cache", |b| {
        b.iter(|| black_box(solve_sweep_cached(black_box(&profiles), &hot, 0).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cold_damped,
    bench_cold_accelerated,
    bench_warm_chained,
    bench_parallel_cached
);
criterion_main!(benches);
