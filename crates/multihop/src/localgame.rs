//! Per-node local games (paper Section VI.B).
//!
//! In multi-hop networks no global coordination is possible, so each
//! rational node `i` initializes its window to the efficient NE of the
//! *local* single-hop game played with its neighbors (population
//! `deg(i) + 1`), exploiting the approximations of Section VI.A: the
//! hidden-node degradation `p_hn` is treated as independent of the CW
//! values (so it scales every candidate window's utility equally and drops
//! out of the argmax), and `g ≫ e`.

use std::collections::BTreeMap;

use macgame_dcf::optimal::{efficient_cw, efficient_cw_from_tau_star};
use macgame_dcf::{DcfParams, UtilityParams};
use macgame_telemetry as telemetry;
use serde::{Deserialize, Serialize};

use crate::error::MultihopError;
use crate::topology::Topology;

/// How a node translates its local population into a window.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalRule {
    /// Exact integer argmax of the local symmetric utility (including `e`).
    #[default]
    ExactArgmax,
    /// The paper's `g ≫ e` route: invert the continuous `τ_c*`.
    TauStarInversion,
}

/// Computes every node's local optimal window under `rule`.
///
/// Populations repeat heavily across a network, so the local-game argmax
/// is solved once per **distinct** `deg(i) + 1` — and those independent
/// solves are fanned out over the `MACGAME_THREADS` worker pool (each is
/// a full window-space search over symmetric fixed points). Results are
/// assembled per node afterwards, so the output is identical for every
/// thread count.
///
/// A node with no neighbors faces no contention; it gets window 1
/// (transmit whenever it has something to send).
///
/// # Errors
///
/// Propagates optimizer failures as [`MultihopError::Model`].
pub fn local_optimal_windows(
    topology: &Topology,
    params: &DcfParams,
    utility: &UtilityParams,
    w_max: u32,
    rule: LocalRule,
) -> Result<Vec<u32>, MultihopError> {
    local_optimal_windows_threads(topology, params, utility, w_max, rule, 0)
}

/// [`local_optimal_windows`] with an explicit worker-thread count
/// (`0` = the `MACGAME_THREADS` default), for callers that need to pin
/// the pool size without touching the environment — e.g. the
/// thread-invariance determinism tests.
///
/// # Errors
///
/// Propagates optimizer failures as [`MultihopError::Model`].
pub fn local_optimal_windows_threads(
    topology: &Topology,
    params: &DcfParams,
    utility: &UtilityParams,
    w_max: u32,
    rule: LocalRule,
    threads: usize,
) -> Result<Vec<u32>, MultihopError> {
    let populations: Vec<usize> = (0..topology.len()).map(|i| topology.local_population(i)).collect();
    let mut distinct: Vec<usize> = populations.clone();
    distinct.sort_unstable();
    distinct.dedup();
    telemetry::counter("multihop.localgame.solves", distinct.len() as u64);
    let threads = macgame_dcf::parallel::resolve_threads(threads);
    let solved: Vec<Result<u32, MultihopError>> =
        rayon::map_in_order(distinct.clone(), threads, |n_local| {
            if n_local < 2 {
                return Ok(1);
            }
            Ok(match rule {
                LocalRule::ExactArgmax => efficient_cw(n_local, params, utility, w_max)?.window,
                LocalRule::TauStarInversion => {
                    efficient_cw_from_tau_star(n_local, params, w_max)?.window
                }
            })
        });
    let mut cache: BTreeMap<usize, u32> = BTreeMap::new();
    for (n_local, w) in distinct.into_iter().zip(solved) {
        cache.insert(n_local, w?);
    }
    Ok(populations.iter().map(|n| cache[n]).collect())
}

/// Utility rate (per µs) in the multi-hop model of Section VI.A:
/// `u_i = τ_i·((1 − p_i)·p_hn·g − e)/T_slot`, where `1 − p_hn` is the
/// fraction of transmissions lost to hidden terminals at the receiver.
///
/// # Errors
///
/// Returns [`MultihopError::InvalidInput`] unless `p_hn`, `tau` and `p`
/// are probabilities in `[0, 1]` and `mean_slot_us` is finite and
/// positive.
pub fn hidden_node_utility(
    tau: f64,
    p: f64,
    p_hn: f64,
    mean_slot_us: f64,
    utility: &UtilityParams,
) -> Result<f64, MultihopError> {
    if !(0.0..=1.0).contains(&p_hn) {
        return Err(MultihopError::InvalidInput(format!(
            "p_hn must be a probability in [0, 1], got {p_hn}"
        )));
    }
    if !(0.0..=1.0).contains(&tau) || !(0.0..=1.0).contains(&p) {
        return Err(MultihopError::InvalidInput(format!(
            "tau and p must be probabilities in [0, 1], got tau = {tau}, p = {p}"
        )));
    }
    if !mean_slot_us.is_finite() || mean_slot_us <= 0.0 {
        return Err(MultihopError::InvalidInput(format!(
            "mean slot duration must be finite and positive, got {mean_slot_us}"
        )));
    }
    Ok(tau * ((1.0 - p) * p_hn * utility.gain - utility.cost) / mean_slot_us)
}


/// Analytic estimate of each node's hidden-node survival factor `p_hn`
/// under the slotted interference model: a transmission from `i` to a
/// (uniformly chosen) neighbor `r` survives the hidden terminals iff none
/// of them transmits in the same slot, so
///
/// ```text
/// p_hn(i) = mean over r ∈ N(i) of Π_{h ∈ hidden(i, r)} (1 − τ_h)
/// ```
///
/// `taus` supplies each node's per-slot transmission probability (e.g.
/// from its local-population symmetric fixed point). Isolated nodes get
/// `p_hn = 1`.
///
/// This is the model-side counterpart of the *measured*
/// [`crate::spatialsim::SpatialReport::network_p_hn`], quantifying the
/// Section VI.A approximation analytically.
///
/// # Errors
///
/// Returns [`MultihopError::InvalidInput`] on a length mismatch or a τ
/// outside `[0, 1]`.
pub fn analytic_p_hn(topology: &Topology, taus: &[f64]) -> Result<Vec<f64>, MultihopError> {
    if taus.len() != topology.len() {
        return Err(MultihopError::InvalidInput(format!(
            "{} taus for {} nodes",
            taus.len(),
            topology.len()
        )));
    }
    if taus.iter().any(|t| !(0.0..=1.0).contains(t)) {
        return Err(MultihopError::InvalidInput("τ must be in [0, 1]".into()));
    }
    let mut out = Vec::with_capacity(topology.len());
    for i in 0..topology.len() {
        let neighbors = topology.neighbors(i);
        if neighbors.is_empty() {
            out.push(1.0);
            continue;
        }
        let mut acc = 0.0;
        for &r in neighbors {
            let survive: f64 = topology
                .hidden_terminals(i, r)
                .iter()
                .map(|&h| 1.0 - taus[h])
                .product();
            acc += survive;
        }
        out.push(acc / neighbors.len() as f64);
    }
    Ok(out)
}

/// Per-node τ values from each node's local-population symmetric fixed
/// point at a common window `w` — the natural input to
/// [`analytic_p_hn`].
///
/// # Errors
///
/// Propagates solver failures.
pub fn local_taus(
    topology: &Topology,
    w: u32,
    params: &DcfParams,
) -> Result<Vec<f64>, MultihopError> {
    use macgame_dcf::fixedpoint::solve_symmetric;
    let mut cache: BTreeMap<usize, f64> = BTreeMap::new();
    let mut out = Vec::with_capacity(topology.len());
    for i in 0..topology.len() {
        let n_local = topology.local_population(i);
        let tau = match cache.get(&n_local) {
            Some(&t) => t,
            None => {
                let t = solve_symmetric(n_local, w, params)?.tau;
                cache.insert(n_local, t);
                t
            }
        };
        out.push(tau);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use macgame_dcf::AccessMode;

    fn rtscts() -> DcfParams {
        DcfParams::builder().access_mode(AccessMode::RtsCts).build().unwrap()
    }

    #[test]
    fn windows_scale_with_local_density() {
        // Star of 9 leaves: hub sees population 10, leaves see 2.
        let topo = Topology::from_adjacency(vec![
            (1..10).collect::<Vec<_>>(),
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
        ]);
        let ws = local_optimal_windows(
            &topo,
            &rtscts(),
            &UtilityParams::default(),
            2048,
            LocalRule::ExactArgmax,
        )
        .unwrap();
        assert!(ws[0] > ws[1], "hub {} vs leaf {}", ws[0], ws[1]);
        assert!(ws[1..].iter().all(|&w| w == ws[1]));
    }

    #[test]
    fn isolated_node_gets_window_one() {
        let topo =
            Topology::from_positions(&[Point::new(0.0, 0.0), Point::new(900.0, 0.0)], 250.0);
        let ws = local_optimal_windows(
            &topo,
            &rtscts(),
            &UtilityParams::default(),
            2048,
            LocalRule::ExactArgmax,
        )
        .unwrap();
        assert_eq!(ws, vec![1, 1]);
    }

    #[test]
    fn memoization_consistent_with_direct_computation() {
        let topo = Topology::from_adjacency(vec![vec![1, 2], vec![2], vec![]]);
        // All three nodes have population 3.
        let ws = local_optimal_windows(
            &topo,
            &rtscts(),
            &UtilityParams::default(),
            2048,
            LocalRule::ExactArgmax,
        )
        .unwrap();
        let direct = efficient_cw(3, &rtscts(), &UtilityParams::default(), 2048).unwrap().window;
        assert_eq!(ws, vec![direct; 3]);
    }

    #[test]
    fn tau_star_rule_differs_but_is_same_scale() {
        let topo = Topology::from_adjacency(vec![vec![1, 2, 3, 4], vec![], vec![], vec![], vec![]]);
        let exact = local_optimal_windows(
            &topo,
            &rtscts(),
            &UtilityParams::default(),
            2048,
            LocalRule::ExactArgmax,
        )
        .unwrap();
        let inv = local_optimal_windows(
            &topo,
            &rtscts(),
            &UtilityParams::default(),
            2048,
            LocalRule::TauStarInversion,
        )
        .unwrap();
        let ratio = f64::from(exact[0]) / f64::from(inv[0]);
        assert!((0.3..=3.0).contains(&ratio), "exact {} vs inversion {}", exact[0], inv[0]);
    }

    #[test]
    fn hidden_node_utility_monotone_in_phn() {
        let u = UtilityParams::default();
        let lo = hidden_node_utility(0.05, 0.2, 0.5, 500.0, &u).unwrap();
        let hi = hidden_node_utility(0.05, 0.2, 0.95, 500.0, &u).unwrap();
        assert!(hi > lo);
    }

    #[test]
    fn hidden_losses_can_flip_utility_negative() {
        let u = UtilityParams { gain: 1.0, cost: 0.05 };
        let v = hidden_node_utility(0.05, 0.2, 0.05, 500.0, &u).unwrap();
        assert!(v < 0.0);
    }

    #[test]
    fn hidden_node_utility_rejects_out_of_range_inputs() {
        let u = UtilityParams::default();
        assert!(hidden_node_utility(0.1, 0.1, 1.5, 500.0, &u).is_err());
        assert!(hidden_node_utility(-0.1, 0.1, 0.5, 500.0, &u).is_err());
        assert!(hidden_node_utility(0.1, 1.2, 0.5, 500.0, &u).is_err());
        assert!(hidden_node_utility(0.1, 0.1, 0.5, 0.0, &u).is_err());
        assert!(hidden_node_utility(0.1, 0.1, 0.5, f64::NAN, &u).is_err());
    }

    #[test]
    fn analytic_p_hn_is_one_without_hidden_terminals() {
        // Fully connected triangle: every neighbor of the receiver is also
        // a neighbor of the sender.
        let topo = Topology::from_adjacency(vec![vec![1, 2], vec![2], vec![]]);
        let p_hn = analytic_p_hn(&topo, &[0.1, 0.1, 0.1]).unwrap();
        assert_eq!(p_hn, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn analytic_p_hn_degrades_on_a_chain() {
        // 0-1-2: node 2 is hidden from 0 (and vice versa) w.r.t. receiver 1.
        let topo = Topology::from_adjacency(vec![vec![1], vec![2], vec![]]);
        let tau = 0.2;
        let p_hn = analytic_p_hn(&topo, &[tau, tau, tau]).unwrap();
        // Node 0's only receiver is 1, threatened by hidden node 2.
        assert!((p_hn[0] - (1.0 - tau)).abs() < 1e-12);
        // Node 1's receivers are 0 and 2, neither threatened by the other?
        // Receiver 0 hears only 1; receiver 2 hears only 1: no hidden nodes.
        assert_eq!(p_hn[1], 1.0);
    }

    #[test]
    fn analytic_p_hn_tracks_measured_p_hn() {
        use crate::spatialsim::{SpatialConfig, SpatialEngine};
        use macgame_dcf::MicroSecs;
        // Static random mesh at a common window: the analytic estimate
        // should land near the measured network p_hn.
        let config = SpatialConfig { mobility: None, ..SpatialConfig::paper(7) };
        let n = 50;
        let w = 32;
        let mut engine =
            SpatialEngine::new(n, &vec![w; n], config.clone()).unwrap();
        let topo = engine.topology().clone();
        let report = engine.run_for(MicroSecs::from_seconds(30.0));
        let measured = report.network_p_hn().expect("traffic exists");
        let taus = local_taus(&topo, w, &config.params).unwrap();
        let analytic = analytic_p_hn(&topo, &taus).unwrap();
        let mean_analytic: f64 = analytic.iter().sum::<f64>() / n as f64;
        assert!(
            (mean_analytic - measured).abs() < 0.12,
            "analytic {mean_analytic:.3} vs measured {measured:.3}"
        );
    }

    #[test]
    fn analytic_p_hn_validation() {
        let topo = Topology::from_adjacency(vec![vec![1], vec![]]);
        assert!(analytic_p_hn(&topo, &[0.1]).is_err());
        assert!(analytic_p_hn(&topo, &[0.1, 1.5]).is_err());
    }
}
