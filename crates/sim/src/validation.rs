//! Side-by-side validation of the analytical model against the simulator
//! — the Section VII.A methodology packaged as a library call.
//!
//! [`validate_fixed_point`] runs the slot engine on a window profile and
//! compares every node's measured `τ̂`, `p̂` (and the network throughput)
//! to the fixed-point predictions of `macgame_dcf`.

use macgame_dcf::fixedpoint::{solve, SolveOptions};
use macgame_dcf::throughput::normalized_throughput;
use macgame_dcf::{edca_throughput, solve_edca, DcfParams, EdcaProfile, EdcaTuple, UtilityParams};
use serde::{Deserialize, Serialize};

use crate::batch::{replicate_threads, Summary};
use crate::config::SimConfig;
use crate::engine::Engine;
use crate::SimError;

/// Per-node prediction-vs-measurement comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Node index.
    pub node: usize,
    /// Configured contention window.
    pub window: u32,
    /// Predicted transmission probability.
    pub tau_predicted: f64,
    /// Measured transmission probability.
    pub tau_measured: f64,
    /// Predicted conditional collision probability.
    pub p_predicted: f64,
    /// Measured conditional collision probability.
    pub p_measured: f64,
}

/// `|measured − predicted| / |predicted|`, degrading to the absolute
/// error when the prediction is zero (a zero prediction with a nonzero
/// measurement would otherwise read as an infinite error).
#[must_use]
pub fn relative_error(measured: f64, predicted: f64) -> f64 {
    if predicted == 0.0 {
        measured.abs()
    } else {
        (measured - predicted).abs() / predicted.abs()
    }
}

impl ValidationRow {
    /// Relative error of the measured `τ̂` (absolute when the predicted
    /// `τ` is zero).
    #[must_use]
    pub fn tau_relative_error(&self) -> f64 {
        relative_error(self.tau_measured, self.tau_predicted)
    }

    /// Relative error of the measured `p̂` (absolute when the predicted
    /// `p` is zero, e.g. a single-node network).
    #[must_use]
    pub fn p_relative_error(&self) -> f64 {
        relative_error(self.p_measured, self.p_predicted)
    }
}

/// Full validation report for one profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// One comparison per node.
    pub rows: Vec<ValidationRow>,
    /// Predicted normalized throughput.
    pub throughput_predicted: f64,
    /// Measured normalized throughput.
    pub throughput_measured: f64,
    /// Slots simulated.
    pub slots: u64,
}

impl ValidationReport {
    /// Worst per-node relative `τ` error.
    #[must_use]
    pub fn max_tau_error(&self) -> f64 {
        self.rows.iter().map(ValidationRow::tau_relative_error).fold(0.0, f64::max)
    }

    /// Worst per-node relative `p` error.
    #[must_use]
    pub fn max_p_error(&self) -> f64 {
        self.rows.iter().map(ValidationRow::p_relative_error).fold(0.0, f64::max)
    }

    /// Relative throughput error (absolute when the predicted throughput
    /// is zero).
    #[must_use]
    pub fn throughput_relative_error(&self) -> f64 {
        relative_error(self.throughput_measured, self.throughput_predicted)
    }
}

/// Simulates `slots` slots on `windows` and compares against the
/// analytical fixed point.
///
/// # Examples
///
/// ```
/// use macgame_dcf::DcfParams;
/// use macgame_sim::validate_fixed_point;
///
/// let report = validate_fixed_point(&[76; 5], &DcfParams::default(), 100_000, 1)?;
/// assert!(report.max_tau_error() < 0.1);
/// # Ok::<(), macgame_sim::SimError>(())
/// ```
///
/// # Errors
///
/// Propagates configuration and solver failures.
pub fn validate_fixed_point(
    windows: &[u32],
    params: &DcfParams,
    slots: u64,
    seed: u64,
) -> Result<ValidationReport, SimError> {
    let eq = solve(windows, params, SolveOptions::default())?;
    let config = SimConfig::builder()
        .params(*params)
        .utility(UtilityParams::default())
        .windows(windows.to_vec())
        .seed(seed)
        .build()?;
    let mut engine = Engine::new(&config);
    let report = engine.run_slots(slots);
    let rows = (0..windows.len())
        .map(|i| ValidationRow {
            node: i,
            window: windows[i],
            tau_predicted: eq.taus[i],
            tau_measured: report.tau_hat(i),
            p_predicted: eq.collision_probs[i],
            p_measured: report.p_hat(i),
        })
        .collect();
    Ok(ValidationReport {
        rows,
        throughput_predicted: normalized_throughput(&eq.taus, params),
        throughput_measured: report.throughput(params),
        slots,
    })
}

/// One analytically predicted quantity with its replicated estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantitySweep {
    /// Fixed-point prediction.
    pub predicted: f64,
    /// Mean / dispersion / CI of the per-replica measurements.
    pub estimate: Summary,
}

impl QuantitySweep {
    /// Relative error of the replica mean against the prediction
    /// (absolute when the prediction is zero).
    #[must_use]
    pub fn relative_error(&self) -> f64 {
        relative_error(self.estimate.mean, self.predicted)
    }

    /// Whether the 95 % CI around the replica mean covers the prediction.
    #[must_use]
    pub fn ci_covers_prediction(&self) -> bool {
        self.estimate.covers(self.predicted)
    }
}

/// Replicated analytics-vs-simulation comparison for one window profile:
/// the Section VII.A methodology with K independently seeded replicas
/// instead of a single run, so every claim carries a confidence interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// The validated window profile.
    pub windows: Vec<u32>,
    /// Slots per replica.
    pub slots: u64,
    /// Number of independently seeded replicas.
    pub replications: usize,
    /// Per-node `τ` prediction vs replicated `τ̂`.
    pub taus: Vec<QuantitySweep>,
    /// Per-node `p` prediction vs replicated `p̂`.
    pub collision_probs: Vec<QuantitySweep>,
    /// Normalized network throughput prediction vs replicated `Ŝ`.
    pub throughput: QuantitySweep,
}

impl SweepReport {
    /// Worst per-node relative error of the mean `τ̂`.
    #[must_use]
    pub fn max_tau_error(&self) -> f64 {
        self.taus.iter().map(QuantitySweep::relative_error).fold(0.0, f64::max)
    }

    /// Worst per-node relative error of the mean `p̂`.
    #[must_use]
    pub fn max_p_error(&self) -> f64 {
        self.collision_probs.iter().map(QuantitySweep::relative_error).fold(0.0, f64::max)
    }

    /// Relative error of the mean `Ŝ`.
    #[must_use]
    pub fn throughput_relative_error(&self) -> f64 {
        self.throughput.relative_error()
    }

    /// Widest per-node 95 % CI half-width among the `τ̂` estimates.
    #[must_use]
    pub fn max_tau_ci_half_width(&self) -> f64 {
        self.taus.iter().map(|q| q.estimate.ci95_half_width).fold(0.0, f64::max)
    }

    /// Widest per-node 95 % CI half-width among the `p̂` estimates.
    #[must_use]
    pub fn max_p_ci_half_width(&self) -> f64 {
        self.collision_probs.iter().map(|q| q.estimate.ci95_half_width).fold(0.0, f64::max)
    }
}

/// Runs `replications` independently seeded replicas of `slots` slots on
/// `windows` (seeds `base_seed, base_seed+1, …`, fanned out over
/// `threads` workers; `0` = the `MACGAME_THREADS` default) and compares
/// the replicated `τ̂`, `p̂`, `Ŝ` estimates against the fixed point.
///
/// The report does not depend on `threads` — replicas own their engines
/// and RNG streams, so the fan-out is bitwise thread-count invariant.
///
/// # Errors
///
/// Propagates configuration and solver failures.
pub fn validate_fixed_point_sweep(
    windows: &[u32],
    params: &DcfParams,
    slots: u64,
    replications: usize,
    base_seed: u64,
    threads: usize,
) -> Result<SweepReport, SimError> {
    let eq = solve(windows, params, SolveOptions::default())?;
    let config = SimConfig::builder()
        .params(*params)
        .utility(UtilityParams::default())
        .windows(windows.to_vec())
        .seed(base_seed)
        .build()?;
    let reports = replicate_threads(&config, slots, replications, base_seed, threads)?;
    let per_node = |f: &dyn Fn(&crate::report::StageReport, usize) -> f64,
                    predicted: &[f64]| {
        (0..windows.len())
            .map(|i| QuantitySweep {
                predicted: predicted[i],
                estimate: Summary::of(
                    &reports.iter().map(|r| f(r, i)).collect::<Vec<f64>>(),
                ),
            })
            .collect::<Vec<QuantitySweep>>()
    };
    let taus = per_node(&|r, i| r.tau_hat(i), &eq.taus);
    let collision_probs = per_node(&|r, i| r.p_hat(i), &eq.collision_probs);
    let throughput = QuantitySweep {
        predicted: normalized_throughput(&eq.taus, params),
        estimate: Summary::of(
            &reports.iter().map(|r| r.throughput(params)).collect::<Vec<f64>>(),
        ),
    };
    Ok(SweepReport {
        windows: windows.to_vec(),
        slots,
        replications,
        taus,
        collision_probs,
        throughput,
    })
}

/// Replicated analytics-vs-simulation comparison for an EDCA tuple
/// profile: the EDCA analog of [`validate_fixed_point_sweep`], comparing
/// the slot engine's measured `τ̂`, `p̂`, and TXOP-weighted `Ŝ` against
/// the AIFS-thinned fixed point of [`macgame_dcf::solve_edca`].
///
/// Predictions are the *thinned* attempt rates `τ̃_c = τ_c·q^{d_c}` —
/// exactly what a per-slot attempt counter measures for a deferring node
/// — and the measured throughput credits every frame of a TXOP burst:
/// `Ŝ = Σ_i n_{s,i}·K_i·T_P / t`.
///
/// Seeding and fan-out go through [`replicate_threads`], so the report is
/// bitwise thread-count invariant.
///
/// # Errors
///
/// Propagates configuration and solver failures. The slot engine draws
/// every node's backoff chain from the ambient
/// [`DcfParams::max_backoff_stage`], so tuples with any other
/// `stage_cap` are rejected as invalid configs.
pub fn validate_edca_sweep(
    tuples: &[EdcaTuple],
    params: &DcfParams,
    slots: u64,
    replications: usize,
    base_seed: u64,
    threads: usize,
) -> Result<SweepReport, SimError> {
    if tuples.iter().any(|t| t.stage_cap != params.max_backoff_stage()) {
        return Err(SimError::InvalidConfig(format!(
            "the slot engine uses the ambient stage cap m = {}; per-tuple caps are analytic-only",
            params.max_backoff_stage()
        )));
    }
    let (profile, assignment) = EdcaProfile::from_tuples(tuples)?;
    let class_eq = solve_edca(&profile, params, SolveOptions::default())?;
    let throughput_predicted = edca_throughput(&profile, &class_eq, params);
    let eq = class_eq.expand(&assignment);
    let windows: Vec<u32> = tuples.iter().map(|t| t.cw_min).collect();
    let bursts: Vec<u32> = tuples.iter().map(|t| t.txop).collect();
    let config = SimConfig::builder()
        .params(*params)
        .utility(UtilityParams::default())
        .windows(windows.clone())
        .aifs(tuples.iter().map(|t| t.aifs).collect())
        .txop(bursts.clone())
        .seed(base_seed)
        .build()?;
    let reports = replicate_threads(&config, slots, replications, base_seed, threads)?;
    let per_node = |f: &dyn Fn(&crate::report::StageReport, usize) -> f64,
                    predicted: &[f64]| {
        (0..tuples.len())
            .map(|i| QuantitySweep {
                predicted: predicted[i],
                estimate: Summary::of(
                    &reports.iter().map(|r| f(r, i)).collect::<Vec<f64>>(),
                ),
            })
            .collect::<Vec<QuantitySweep>>()
    };
    let taus = per_node(&|r, i| r.tau_hat(i), &eq.thinned_taus);
    let collision_probs = per_node(&|r, i| r.p_hat(i), &eq.collision_probs);
    let payload = params.payload_time().value();
    let measured_s = |r: &crate::report::StageReport| -> f64 {
        let frames: f64 = r
            .node_stats
            .iter()
            .zip(&bursts)
            .map(|(s, &k)| s.successes as f64 * f64::from(k))
            .sum();
        frames * payload / r.elapsed.value()
    };
    let throughput = QuantitySweep {
        predicted: throughput_predicted,
        estimate: Summary::of(&reports.iter().map(measured_s).collect::<Vec<f64>>()),
    };
    Ok(SweepReport { windows, slots, replications, taus, collision_probs, throughput })
}

#[cfg(test)]
mod tests {
    use super::*;
    use macgame_dcf::AccessMode;

    #[test]
    fn symmetric_profile_validates_tightly() {
        let report =
            validate_fixed_point(&[76; 5], &DcfParams::default(), 400_000, 11).unwrap();
        assert!(report.max_tau_error() < 0.05, "τ error {}", report.max_tau_error());
        assert!(report.max_p_error() < 0.10, "p error {}", report.max_p_error());
        assert!(
            report.throughput_relative_error() < 0.03,
            "S error {}",
            report.throughput_relative_error()
        );
    }

    #[test]
    fn heterogeneous_profile_validates() {
        let windows = [16u32, 48, 96, 192];
        let report =
            validate_fixed_point(&windows, &DcfParams::default(), 400_000, 5).unwrap();
        assert!(report.max_tau_error() < 0.08, "τ error {}", report.max_tau_error());
        for row in &report.rows {
            assert_eq!(row.window, windows[row.node]);
        }
    }

    #[test]
    fn rtscts_profile_validates() {
        let params = DcfParams::builder().access_mode(AccessMode::RtsCts).build().unwrap();
        let report = validate_fixed_point(&[48; 8], &params, 400_000, 7).unwrap();
        assert!(report.max_tau_error() < 0.05, "τ error {}", report.max_tau_error());
        assert!(report.throughput_predicted > 0.5);
    }

    #[test]
    fn rejects_bad_profiles() {
        assert!(validate_fixed_point(&[], &DcfParams::default(), 100, 0).is_err());
        assert!(validate_fixed_point(&[0, 4], &DcfParams::default(), 100, 0).is_err());
    }

    fn row(tau_pred: f64, tau_meas: f64, p_pred: f64, p_meas: f64) -> ValidationRow {
        ValidationRow {
            node: 0,
            window: 32,
            tau_predicted: tau_pred,
            tau_measured: tau_meas,
            p_predicted: p_pred,
            p_measured: p_meas,
        }
    }

    #[test]
    fn tau_relative_error_on_hand_built_rows() {
        assert!((row(0.10, 0.11, 0.5, 0.5).tau_relative_error() - 0.1).abs() < 1e-12);
        assert!((row(0.10, 0.09, 0.5, 0.5).tau_relative_error() - 0.1).abs() < 1e-12);
        assert_eq!(row(0.10, 0.10, 0.5, 0.5).tau_relative_error(), 0.0);
    }

    #[test]
    fn tau_relative_error_zero_denominator_degrades_to_absolute() {
        // A zero prediction must not divide: the error is the measurement.
        let r = row(0.0, 0.02, 0.5, 0.5);
        assert_eq!(r.tau_relative_error(), 0.02);
        assert!(r.tau_relative_error().is_finite());
        assert_eq!(row(0.0, 0.0, 0.5, 0.5).tau_relative_error(), 0.0);
    }

    #[test]
    fn p_relative_error_on_hand_built_rows() {
        assert!((row(0.2, 0.2, 0.40, 0.50).p_relative_error() - 0.25).abs() < 1e-12);
        // Single-node networks predict p = 0; degrade to absolute error.
        assert_eq!(row(0.2, 0.2, 0.0, 0.03).p_relative_error(), 0.03);
        assert_eq!(row(0.2, 0.2, 0.0, 0.0).p_relative_error(), 0.0);
    }

    #[test]
    fn throughput_relative_error_on_hand_built_reports() {
        let base = ValidationReport {
            rows: vec![],
            throughput_predicted: 0.8,
            throughput_measured: 0.72,
            slots: 1,
        };
        assert!((base.throughput_relative_error() - 0.1).abs() < 1e-12);
        let zero_pred = ValidationReport { throughput_predicted: 0.0, ..base.clone() };
        assert_eq!(zero_pred.throughput_relative_error(), 0.72);
        let exact = ValidationReport { throughput_measured: 0.8, ..base };
        assert_eq!(exact.throughput_relative_error(), 0.0);
    }

    #[test]
    fn max_errors_pick_the_worst_row() {
        let report = ValidationReport {
            rows: vec![row(0.10, 0.11, 0.5, 0.5), row(0.10, 0.13, 0.5, 0.6)],
            throughput_predicted: 1.0,
            throughput_measured: 1.0,
            slots: 1,
        };
        assert!((report.max_tau_error() - 0.3).abs() < 1e-12);
        assert!((report.max_p_error() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sweep_validates_and_is_thread_count_invariant() {
        let params = DcfParams::default();
        let a = validate_fixed_point_sweep(&[76; 5], &params, 60_000, 4, 11, 1).unwrap();
        let b = validate_fixed_point_sweep(&[76; 5], &params, 60_000, 4, 11, 4).unwrap();
        assert_eq!(a, b, "sweep must not depend on the worker count");
        assert_eq!(a.taus.len(), 5);
        assert_eq!(a.replications, 4);
        assert!(a.max_tau_error() < 0.08, "τ error {}", a.max_tau_error());
        assert!(a.throughput_relative_error() < 0.05);
        assert!(a.max_tau_ci_half_width() > 0.0);
        assert!(a.max_p_ci_half_width() > 0.0);
        for q in &a.taus {
            assert_eq!(q.estimate.n, 4);
        }
    }

    #[test]
    fn sweep_rejects_bad_input() {
        let params = DcfParams::default();
        assert!(validate_fixed_point_sweep(&[], &params, 100, 2, 0, 1).is_err());
        assert!(validate_fixed_point_sweep(&[32; 2], &params, 100, 0, 0, 1).is_err());
    }

    fn legacy_tuples(windows: &[u32], params: &DcfParams) -> Vec<EdcaTuple> {
        windows.iter().map(|&w| EdcaTuple::legacy(w, params).unwrap()).collect()
    }

    #[test]
    fn edca_sweep_with_heterogeneous_aifs_tracks_analytics() {
        let params = DcfParams::default();
        let mut tuples = legacy_tuples(&[76; 5], &params);
        tuples[4].aifs = 1;
        let report = validate_edca_sweep(&tuples, &params, 120_000, 4, 31, 0).unwrap();
        assert!(report.max_tau_error() < 0.10, "τ error {}", report.max_tau_error());
        assert!(report.max_p_error() < 0.20, "p error {}", report.max_p_error());
        assert!(
            report.throughput_relative_error() < 0.10,
            "S error {}",
            report.throughput_relative_error()
        );
        // The deferring node's predicted (thinned) rate is below its
        // peers', and the measurement resolves the gap.
        assert!(report.taus[4].predicted < report.taus[0].predicted);
        assert!(report.taus[4].estimate.mean < report.taus[0].estimate.mean);
    }

    #[test]
    fn edca_sweep_with_txop_bursts_tracks_analytics() {
        let params = DcfParams::default();
        let mut tuples = legacy_tuples(&[76; 5], &params);
        for t in &mut tuples {
            t.txop = 4;
        }
        let report = validate_edca_sweep(&tuples, &params, 120_000, 4, 37, 0).unwrap();
        assert!(report.max_tau_error() < 0.10, "τ error {}", report.max_tau_error());
        assert!(
            report.throughput_relative_error() < 0.10,
            "S error {}",
            report.throughput_relative_error()
        );
        // Four-frame bursts amortize contention overhead (idle slots,
        // collisions, per-access headers) over more payload, pushing
        // efficiency measurably above the single-frame ceiling.
        let single = validate_fixed_point_sweep(&[76; 5], &params, 60_000, 2, 37, 0).unwrap();
        assert!(
            report.throughput.predicted > 1.05 * single.throughput.predicted,
            "burst S {} vs single S {}",
            report.throughput.predicted,
            single.throughput.predicted
        );
    }

    #[test]
    fn edca_sweep_is_thread_count_invariant() {
        let params = DcfParams::default();
        let mut tuples = legacy_tuples(&[64; 4], &params);
        tuples[0].txop = 2;
        tuples[3].aifs = 1;
        let a = validate_edca_sweep(&tuples, &params, 30_000, 4, 11, 1).unwrap();
        let b = validate_edca_sweep(&tuples, &params, 30_000, 4, 11, 4).unwrap();
        assert_eq!(a, b, "EDCA sweep must not depend on the worker count");
    }

    #[test]
    fn edca_sweep_rejects_per_tuple_stage_caps() {
        let params = DcfParams::default();
        let mut tuples = legacy_tuples(&[64; 3], &params);
        tuples[1].stage_cap = 2;
        assert!(validate_edca_sweep(&tuples, &params, 100, 2, 0, 1).is_err());
        assert!(validate_edca_sweep(&[], &params, 100, 2, 0, 1).is_err());
    }
}
