//! Error-path coverage: every rejected configuration must surface as the
//! specific [`SimError`] variant with an actionable message.

use macgame_sim::{Engine, SimConfig, SimError, TrafficModel};

fn invalid_config_message(err: SimError) -> String {
    match err {
        SimError::InvalidConfig(msg) => msg,
        other => panic!("expected SimError::InvalidConfig, got {other:?}"),
    }
}

#[test]
fn builder_rejects_empty_windows() {
    let err = SimConfig::builder().windows(vec![]).build().unwrap_err();
    assert_eq!(invalid_config_message(err), "need at least one node");
}

#[test]
fn builder_rejects_zero_window() {
    let err = SimConfig::builder().windows(vec![16, 0, 32]).build().unwrap_err();
    assert_eq!(invalid_config_message(err), "contention windows must be at least 1");
}

#[test]
fn builder_rejects_negative_poisson_rate() {
    let err = SimConfig::builder()
        .symmetric(2, 16)
        .traffic(TrafficModel::Poisson { packets_per_second: -1.0 })
        .build()
        .unwrap_err();
    assert_eq!(invalid_config_message(err), "arrival rate must be finite and non-negative");
}

#[test]
fn builder_rejects_non_finite_poisson_rate() {
    for bad in [f64::NAN, f64::INFINITY] {
        let err = SimConfig::builder()
            .symmetric(2, 16)
            .traffic(TrafficModel::Poisson { packets_per_second: bad })
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "rate {bad}: {err:?}");
    }
}

#[test]
fn set_windows_rejects_wrong_profile_length() {
    let config = SimConfig::builder().symmetric(3, 32).build().unwrap();
    let mut engine = Engine::new(&config);
    let err = engine.set_windows(&[16, 16]).unwrap_err();
    assert_eq!(invalid_config_message(err), "profile has 2 entries for 3 nodes");
    let err = engine.set_windows(&[16; 4]).unwrap_err();
    assert_eq!(invalid_config_message(err), "profile has 4 entries for 3 nodes");
}

#[test]
fn set_windows_rejects_zero_window() {
    let config = SimConfig::builder().symmetric(3, 32).build().unwrap();
    let mut engine = Engine::new(&config);
    let err = engine.set_windows(&[16, 0, 16]).unwrap_err();
    assert_eq!(invalid_config_message(err), "contention windows must be at least 1");
}

#[test]
fn set_windows_failure_leaves_engine_usable() {
    let config = SimConfig::builder().symmetric(2, 32).seed(3).build().unwrap();
    let mut engine = Engine::new(&config);
    assert!(engine.set_windows(&[8, 0]).is_err());
    // The failed update must not have corrupted any node state: the run
    // matches a fresh engine that never saw the bad profile.
    let report = engine.run_slots(2_000);
    let fresh = Engine::new(&config).run_slots(2_000);
    assert_eq!(report, fresh);
}

#[test]
fn set_window_rejects_out_of_range_node() {
    let config = SimConfig::builder().symmetric(2, 32).build().unwrap();
    let mut engine = Engine::new(&config);
    let err = engine.set_window(2, 16).unwrap_err();
    assert_eq!(invalid_config_message(err), "node 2 out of range");
    let err = engine.set_window(usize::MAX, 16).unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)));
}

#[test]
fn set_window_rejects_zero_window() {
    let config = SimConfig::builder().symmetric(2, 32).build().unwrap();
    let mut engine = Engine::new(&config);
    let err = engine.set_window(0, 0).unwrap_err();
    assert_eq!(invalid_config_message(err), "contention windows must be at least 1");
}

#[test]
fn valid_updates_still_succeed_after_rejections() {
    let config = SimConfig::builder().symmetric(2, 32).build().unwrap();
    let mut engine = Engine::new(&config);
    assert!(engine.set_windows(&[0, 0]).is_err());
    assert!(engine.set_window(5, 8).is_err());
    engine.set_windows(&[64, 64]).unwrap();
    engine.set_window(1, 128).unwrap();
}
