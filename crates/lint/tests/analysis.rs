//! End-to-end runs of the call-graph analyses: fixture mini-workspaces
//! with known clean/dirty graphs, the real workspace (which must be
//! analysis-clean with every waiver carrying a rationale), byte-stability
//! of `ANALYSIS.json`, and a proptest that the analyzer's output bytes
//! are invariant under input file order.

use std::fs;
use std::path::{Path, PathBuf};

use macgame_lint::analysis::{
    analyze, AnalysisConfig, RootSpec, RULE_LOCK_ORDER, RULE_PANIC_PATH, RULE_TAINT,
};
use macgame_lint::{run_workspace, run_workspace_with, LintConfig};
use proptest::prelude::*;

fn real_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// The analysis config every fixture workspace is written against:
/// `emit` fns are artifact roots, no wall-clock quarantine, all crates
/// are public API.
fn fixture_config() -> AnalysisConfig {
    AnalysisConfig {
        taint_roots: vec![RootSpec::fn_in("crates/", "emit")],
        wall_clock_allow: vec![],
        panic_api_prefixes: vec!["crates/".to_string()],
    }
}

fn fixture_analysis(name: &str) -> macgame_lint::AnalysisReport {
    run_workspace_with(&fixture_root(name), &LintConfig::default(), &fixture_config())
        .unwrap()
        .analysis
}

#[test]
fn clean_fixture_reports_nothing() {
    let report = fixture_analysis("ws_clean");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.stats.taint_roots, 1, "emit must be rooted");
    assert!(report.stats.functions >= 4);
}

#[test]
fn taint_fixture_reports_the_rooted_path_and_only_it() {
    let report = fixture_analysis("ws_taint");
    let taints: Vec<_> =
        report.findings.iter().filter(|f| f.rule == RULE_TAINT).collect();
    assert_eq!(taints.len(), 1, "island's clock is unrooted: {:?}", report.findings);
    let f = taints[0];
    assert_eq!((f.path.as_str(), f.line), ("crates/app/src/lib.rs", 15));
    assert_eq!(
        f.witness,
        vec![
            "emit (crates/app/src/lib.rs:6)",
            "mid (crates/app/src/lib.rs:10)",
            "leaf (crates/app/src/lib.rs:14)",
            "Instant::now (crates/app/src/lib.rs:15)",
        ],
        "witness must spell out the root → … → sink path"
    );
}

#[test]
fn panic_fixture_reports_the_unmarked_path_and_only_it() {
    let report = fixture_analysis("ws_panic");
    let panics: Vec<_> =
        report.findings.iter().filter(|f| f.rule == RULE_PANIC_PATH).collect();
    assert_eq!(panics.len(), 1, "{:?}", report.findings);
    let f = panics[0];
    assert_eq!(f.line, 11, "the unmarked unwrap inside helper");
    assert_eq!(
        f.witness,
        vec![
            "api (crates/app/src/lib.rs:6)",
            "helper (crates/app/src/lib.rs:10)",
            ".unwrap() (crates/app/src/lib.rs:11)",
        ]
    );
}

#[test]
fn lock_cycle_fixture_reports_one_cycle_with_both_edges() {
    let report = fixture_analysis("ws_lockcycle");
    let cycles: Vec<_> =
        report.findings.iter().filter(|f| f.rule == RULE_LOCK_ORDER).collect();
    assert_eq!(cycles.len(), 1, "{:?}", report.findings);
    let f = cycles[0];
    assert!(f.message.contains("Pair::alpha"), "{}", f.message);
    assert!(f.message.contains("Pair::beta"), "{}", f.message);
    assert_eq!(f.witness.len(), 2, "one edge description per direction: {:?}", f.witness);
    assert_eq!(report.stats.lock_sites, 4);
}

#[test]
fn real_workspace_is_analysis_clean_with_rationales_and_witnesses() {
    let workspace = run_workspace(&real_root()).unwrap();
    let unwaived: Vec<String> = workspace
        .analysis
        .unwaived()
        .iter()
        .map(|f| format!("{} {}:{}", f.rule, f.path, f.line))
        .collect();
    assert!(unwaived.is_empty(), "unwaived analysis findings: {unwaived:#?}");
    for f in &workspace.analysis.findings {
        assert!(
            f.reason.as_deref().is_some_and(|r| !r.trim().is_empty()),
            "waiver without rationale: {} {}:{}",
            f.rule,
            f.path,
            f.line
        );
        // Every reachability finding carries a root → … → sink witness
        // whose last step names the finding's own site.
        assert!(!f.witness.is_empty(), "{} {}:{} has no witness", f.rule, f.path, f.line);
        if f.rule != RULE_LOCK_ORDER {
            let site = format!("({}:{})", f.path, f.line);
            assert!(
                f.witness.last().is_some_and(|w| w.ends_with(&site)),
                "witness of {}:{} must end at the site: {:?}",
                f.path,
                f.line,
                f.witness
            );
        }
    }
    // The graph actually covered the workspace.
    assert!(workspace.analysis.stats.functions > 500);
    assert!(workspace.analysis.stats.edges > workspace.analysis.stats.functions);
    assert!(workspace.analysis.stats.taint_roots > 10, "repro experiments are roots");
    assert!(workspace.analysis.stats.lock_sites > 10, "sharded caches are audited");
}

#[test]
fn analysis_artifact_is_byte_stable_across_runs() {
    let root = real_root();
    let first = run_workspace(&root).unwrap().analysis.to_json();
    let second = run_workspace(&root).unwrap().analysis.to_json();
    assert_eq!(first, second);
    assert!(first.contains("\"schema\": \"macgame-analysis/1\""));
    assert!(first.contains("\"witness\": ["));
}

/// An `analysis/*` waiver in a workspace whose *token* lint is also
/// running must be applied to the analysis finding and must NOT be
/// reported stale by the token pass — waivers match over the union.
#[test]
fn analysis_waivers_apply_across_the_union_without_going_stale() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("analysis-union");
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    fs::create_dir_all(root.join("crates/app/src")).unwrap();
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/app\"]\nresolver = \"2\"\n\n\
         [workspace.package]\nversion = \"0.1.0\"\nedition = \"2021\"\nlicense = \"MIT\"\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/app/Cargo.toml"),
        "[package]\nname = \"app\"\nversion.workspace = true\n\
         edition.workspace = true\nlicense.workspace = true\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/app/src/lib.rs"),
        "pub fn api(x: Option<u32>) -> u32 { helper(x) }\n\
         fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .unwrap();
    fs::write(
        root.join("lint-allow.toml"),
        "[[allow]]\nrule = \"analysis/panic-path\"\npath = \"crates/app/src/lib.rs\"\n\
         line = 2\nreason = \"fixture: callers validate Some\"\n\n\
         [[allow]]\nrule = \"panic-policy/unmarked-panic\"\npath = \"crates/app/src/lib.rs\"\n\
         line = 2\nreason = \"fixture: callers validate Some\"\n",
    )
    .unwrap();
    let workspace = run_workspace_with(
        &root,
        &LintConfig::default(),
        &AnalysisConfig {
            taint_roots: vec![],
            wall_clock_allow: vec![],
            panic_api_prefixes: vec!["crates/".to_string()],
        },
    )
    .unwrap();
    assert!(workspace.is_clean(), "lint: {:?}\nanalysis: {:?}",
        workspace.lint.unwaived(), workspace.analysis.unwaived());
    assert!(
        workspace.analysis.findings.iter().any(|f| f.waived),
        "the panic-path finding must exist and be waived"
    );
    assert!(
        !workspace.lint.findings.iter().any(|f| f.rule == "waiver/stale"),
        "neither waiver may go stale: {:?}",
        workspace.lint.findings
    );
}

/// All fixture sources combined into one synthetic workspace, with paths
/// remapped so the four `app` crates stay distinct.
fn combined_fixture_sources() -> Vec<(String, String)> {
    let mut files = Vec::new();
    for ws in ["ws_clean", "ws_taint", "ws_panic", "ws_lockcycle"] {
        let lib = fixture_root(ws).join("crates/app/src/lib.rs");
        let source = fs::read_to_string(&lib).unwrap();
        files.push((format!("crates/{ws}/src/lib.rs"), source));
    }
    files
}

proptest! {
    /// The analyzer's output bytes do not depend on the order files are
    /// handed in — the property CI's double-run `cmp` relies on.
    #[test]
    fn analyzer_bytes_are_input_order_invariant(seed in 0u64..u64::MAX) {
        let config = fixture_config();
        let baseline = analyze(&combined_fixture_sources(), &config).to_json();
        let mut files = combined_fixture_sources();
        // Fisher–Yates driven by the proptest seed.
        let mut state = seed | 1;
        for i in (1..files.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            files.swap(i, (state as usize) % (i + 1));
        }
        let shuffled = analyze(&files, &config).to_json();
        prop_assert_eq!(&baseline, &shuffled);
        // The dirty fixtures stay visible whatever the order.
        prop_assert!(shuffled.contains("analysis/determinism-taint"));
        prop_assert!(shuffled.contains("analysis/panic-path"));
        prop_assert!(shuffled.contains("analysis/lock-order"));
    }
}
