//! Measurement reports produced by the simulation engine.

use macgame_dcf::{DcfParams, MicroSecs, UtilityParams};
use serde::{Deserialize, Serialize};

use crate::node::NodeStats;

/// Channel-level slot counts for a simulated interval.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelCounts {
    /// Slots with no transmission.
    pub idle: u64,
    /// Slots carrying exactly one transmission.
    pub success: u64,
    /// Slots carrying two or more transmissions.
    pub collision: u64,
}

impl ChannelCounts {
    /// Total slots observed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.idle + self.success + self.collision
    }
}

/// Measurements for one simulated interval (a game stage, typically).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Per-node statistics for the interval.
    pub node_stats: Vec<NodeStats>,
    /// Channel slot counts for the interval.
    pub channel: ChannelCounts,
    /// Channel time elapsed in the interval.
    pub elapsed: MicroSecs,
    /// Window profile in force during the interval.
    pub windows: Vec<u32>,
}

impl StageReport {
    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_stats.len()
    }

    /// Node `i`'s empirical transmission probability.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn tau_hat(&self, node: usize) -> f64 {
        self.node_stats[node].tau_hat(self.channel.total())
    }

    /// Node `i`'s empirical conditional collision probability.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn p_hat(&self, node: usize) -> f64 {
        self.node_stats[node].p_hat()
    }

    /// Node `i`'s measured payoff rate `(n_s·g − n_e·e) / elapsed` — exactly
    /// the `U_l = (n_s·g − n_e·e)/t_m` measurement of the paper's search
    /// algorithm (Section V.C), per microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or the interval is empty.
    #[must_use]
    pub fn payoff_rate(&self, node: usize, utility: &UtilityParams) -> f64 {
        assert!(self.elapsed.value() > 0.0, "empty interval has no payoff rate"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        let s = &self.node_stats[node];
        (s.successes as f64 * utility.gain - s.attempts as f64 * utility.cost)
            / self.elapsed.value()
    }

    /// Sum of all nodes' payoff rates (the measured social welfare).
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    #[must_use]
    pub fn global_payoff_rate(&self, utility: &UtilityParams) -> f64 {
        (0..self.node_count()).map(|i| self.payoff_rate(i, utility)).sum()
    }

    /// Measured normalized throughput: fraction of channel time spent on
    /// successful payload bits.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    #[must_use]
    pub fn throughput(&self, params: &DcfParams) -> f64 {
        assert!(self.elapsed.value() > 0.0, "empty interval has no throughput"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        let success: u64 = self.node_stats.iter().map(|s| s.successes).sum();
        success as f64 * params.payload_time().value() / self.elapsed.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> StageReport {
        StageReport {
            node_stats: vec![
                NodeStats { attempts: 10, successes: 8, collisions: 2 },
                NodeStats { attempts: 20, successes: 15, collisions: 5 },
            ],
            channel: ChannelCounts { idle: 70, success: 23, collision: 7 },
            elapsed: MicroSecs::new(1_000_000.0),
            windows: vec![64, 32],
        }
    }

    #[test]
    fn channel_total() {
        assert_eq!(report().channel.total(), 100);
    }

    #[test]
    fn estimators() {
        let r = report();
        assert!((r.tau_hat(0) - 0.1).abs() < 1e-12);
        assert!((r.p_hat(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn payoff_rate_matches_formula() {
        let r = report();
        let u = UtilityParams { gain: 1.0, cost: 0.01 };
        // (8·1 − 10·0.01) / 1e6 = 7.9e-6.
        assert!((r.payoff_rate(0, &u) - 7.9e-6).abs() < 1e-18);
        let global = r.global_payoff_rate(&u);
        assert!((global - (7.9e-6 + (15.0 - 0.2) / 1e6)).abs() < 1e-18);
    }

    #[test]
    fn throughput_counts_payload_airtime() {
        let r = report();
        let p = DcfParams::default();
        // 23 successes · 8184 µs payload / 1e6 µs.
        assert!((r.throughput(&p) - 23.0 * 8184.0 / 1e6).abs() < 1e-12);
    }
}
