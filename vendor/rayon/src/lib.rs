//! Offline shim for the subset of `rayon` used by this workspace:
//! `par_iter()` / `into_par_iter()` followed by `.map(...).collect()`,
//! plus [`current_num_threads`].
//!
//! Implementation: the input is materialized, split into contiguous
//! chunks, and mapped on `std::thread::scope` workers; results are
//! stitched back in input order, so output ordering is identical to the
//! serial path regardless of thread count.
//!
//! Thread count resolution (first match wins): the `MACGAME_THREADS`
//! environment variable, the `RAYON_NUM_THREADS` environment variable,
//! then [`std::thread::available_parallelism`]. A value of `1` bypasses
//! thread spawning entirely.

#![warn(missing_docs)]

use std::ops::Range;

/// Number of worker threads the shim will use.
///
/// Resolution order: `MACGAME_THREADS`, then `RAYON_NUM_THREADS`, then
/// [`std::thread::available_parallelism`].
#[must_use]
pub fn current_num_threads() -> usize {
    for var in ["MACGAME_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(raw) = std::env::var(var) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` over `items` on up to `threads` scoped workers, preserving
/// input order in the output.
pub fn map_in_order<I, R, F>(items: Vec<I>, threads: usize, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let total = items.len();
    let chunk_len = total.div_ceil(threads);
    let mut chunks: Vec<(usize, Vec<I>)> = Vec::new();
    let mut start = 0;
    let mut rest = items;
    while !rest.is_empty() {
        let take = chunk_len.min(rest.len());
        let tail = rest.split_off(take);
        chunks.push((start, rest));
        start += take;
        rest = tail;
    }

    let f = &f;
    let mut indexed: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(offset, chunk)| {
                scope.spawn(move || (offset, chunk.into_iter().map(f).collect::<Vec<R>>()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon shim worker panicked")).collect()
    });

    indexed.sort_by_key(|(offset, _)| *offset);
    indexed.into_iter().flat_map(|(_, results)| results).collect()
}

/// A materialized parallel iterator (possibly already mapped).
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> MappedParIter<T, F> {
        MappedParIter { items: self.items, f }
    }

    /// Collects the items without further mapping.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A parallel iterator with a pending `map` stage.
#[derive(Debug)]
pub struct MappedParIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> MappedParIter<T, F> {
    /// Executes the map on worker threads and collects in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        map_in_order(self.items, current_num_threads(), self.f).into_iter().collect()
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Item type of the iterator.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;

    fn into_par_iter(self) -> ParIter<u32> {
        ParIter { items: self.collect() }
    }
}

/// Types whose references yield a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Item type of the borrowed iterator.
    type Item: Send;

    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Glob-import module mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_in_order_preserves_order_across_thread_counts() {
        let input: Vec<usize> = (0..103).collect();
        let expect: Vec<usize> = input.iter().map(|x| x * 2).collect();
        for threads in [1, 2, 3, 8, 200] {
            let got = map_in_order(input.clone(), threads, |x| x * 2);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_iter_map_collect_matches_serial() {
        let data = vec![1u32, 2, 3, 4, 5];
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let owned: Vec<u32> = data.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(owned, vec![2, 3, 4, 5, 6]);
        let range: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(range, vec![0, 1, 4, 9, 16]);
    }
}
