//! The detection-and-enforcement plane.
//!
//! The paper's repeated-game equilibria (Section IV) assume perfect
//! observation of every peer's contention window. Tan & Guttag and
//! Banchs et al. (PAPERS.md) center the real problem: deciding from
//! *noisy* observations whether a peer is cheating, and only then
//! punishing. This module family supplies the missing pieces:
//!
//! * [`sequential`] — CUSUM and windowed-threshold detectors emitting
//!   typed [`Verdict`]s;
//! * [`roc`] — false-positive/false-negative sweeps of those detectors
//!   against seeded [`macgame_faults::ObservationFaults`] grids;
//! * [`gated`] — punishment strategies ([`DetectorTft`], [`Throttle`])
//!   whose triggers fire only on a verdict;
//! * [`arena`] — adversarial round-robin tournaments of honest /
//!   selfish / short-sighted / detector populations under imperfect
//!   observation, with a replicator-dynamics equilibrium-mix summary.
//!
//! Everything here follows the workspace determinism discipline: trial
//! and match plans are fixed, seeds are derived per unit of work, and
//! fan-out uses order-preserving fixed-size chunks — results are
//! bitwise invariant under `MACGAME_THREADS`.

pub mod arena;
pub mod gated;
pub mod roc;
pub mod sequential;

pub use arena::{adversarial_round_robin, ArenaReport, ArenaSettings, MixSummary};
pub use gated::{DetectorTft, Throttle};
pub use roc::{
    cusum_roc, windowed_roc, CusumRocSettings, FaultCell, RocCurve, RocPoint, WindowedRocSettings,
};
pub use sequential::{CusumDetector, Verdict, WindowedDetector};
