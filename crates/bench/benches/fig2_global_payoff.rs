//! Benchmarks the Figure 2 pipeline: the full U/C-vs-CW curve (basic
//! access) and its per-point kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use macgame_bench::figures::{figure_series, window_grid};
use macgame_dcf::fixedpoint::solve_symmetric;
use macgame_dcf::utility::normalized_global_payoff;
use macgame_dcf::{AccessMode, DcfParams, UtilityParams};
use std::hint::black_box;

fn bench_curve(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2/full_series");
    group.sample_size(10);
    for n in [5usize, 20, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| figure_series(black_box(n), AccessMode::Basic, 2048).unwrap());
        });
    }
    group.finish();
}

fn bench_point_kernel(c: &mut Criterion) {
    let params = DcfParams::default();
    let utility = UtilityParams::default();
    c.bench_function("fig2/point_kernel_n20", |b| {
        b.iter(|| {
            let sym = solve_symmetric(20, black_box(325), &params).unwrap();
            let taus = vec![sym.tau; 20];
            let ps = vec![sym.collision_prob; 20];
            black_box(normalized_global_payoff(&taus, &ps, &params, &utility))
        });
    });
    c.bench_function("fig2/window_grid", |b| {
        b.iter(|| black_box(window_grid(2048)));
    });
}

criterion_group!(benches, bench_curve, bench_point_kernel);
criterion_main!(benches);
