//! Process-global recorder facade used by instrumented code.
//!
//! The facade keeps the uninstrumented path essentially free: every entry
//! point first checks a relaxed [`AtomicBool`] and returns immediately when
//! no recorder is installed, so permanent instrumentation in hot loops does
//! not perturb benchmarks or artifact bytes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use crate::recorder::Recorder;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Install `recorder` as the process-global telemetry sink.
///
/// Replaces any previously installed recorder. Callers that need exclusive
/// snapshots (e.g. tests) should serialize install/run/clear sequences
/// themselves — the facade is a single global.
pub fn set_recorder(recorder: Arc<dyn Recorder>) {
    *RECORDER.write().unwrap() = Some(recorder); // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
    ENABLED.store(true, Ordering::Release);
}

/// Remove the global recorder, restoring the zero-cost no-op behaviour.
pub fn clear_recorder() {
    ENABLED.store(false, Ordering::Release);
    *RECORDER.write().unwrap() = None; // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
}

/// Whether a recorder is currently installed.
pub fn recorder_installed() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    if let Some(recorder) = RECORDER.read().unwrap().as_deref() { // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
        f(recorder);
    }
}

/// Add `delta` to the global counter `name` (no-op when uninstrumented).
pub fn counter(name: &'static str, delta: u64) {
    with_recorder(|r| r.counter_add(name, delta));
}

/// Set the global gauge `name` (no-op when uninstrumented).
///
/// Per the determinism policy, only call this from serial driver code.
pub fn gauge(name: &'static str, value: f64) {
    with_recorder(|r| r.gauge_set(name, value));
}

/// Record `value` into the global histogram `name` (no-op when
/// uninstrumented).
pub fn histogram(name: &'static str, value: f64) {
    with_recorder(|r| r.histogram_record(name, value));
}

/// Record a wall-clock duration of `nanos` nanoseconds for span `name`
/// (no-op when uninstrumented). Usually called via [`span`]'s RAII guard.
pub fn timing(name: &'static str, nanos: u64) {
    with_recorder(|r| r.timing_record(name, nanos));
}

/// Start a scoped wall-clock span; the elapsed time is recorded under
/// `name` when the returned guard drops.
///
/// When no recorder is installed the guard holds no timestamp and its drop
/// is a no-op, so spans are as cheap as the other facade calls.
#[must_use = "a span records its duration when dropped"]
pub fn span(name: &'static str) -> Span {
    let start = if ENABLED.load(Ordering::Relaxed) {
        Some(Instant::now())
    } else {
        None
    };
    Span { name, start }
}

/// RAII guard returned by [`span`]; records the elapsed wall-clock time on
/// drop.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            timing(self.name, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::CollectingRecorder;

    #[test]
    fn facade_routes_to_installed_recorder_and_no_ops_after_clear() {
        let recorder = Arc::new(CollectingRecorder::new());
        set_recorder(recorder.clone());
        assert!(recorder_installed());
        counter("global.count", 5);
        gauge("global.gauge", 2.5);
        histogram("global.hist", 10.0);
        {
            let _span = span("global.span");
        }
        clear_recorder();
        assert!(!recorder_installed());
        counter("global.count", 99);

        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.counter("global.count"), 5);
        assert_eq!(snapshot.gauge("global.gauge"), Some(2.5));
        assert_eq!(snapshot.histogram("global.hist").unwrap().count, 1);
        assert_eq!(snapshot.timing("global.span").unwrap().count, 1);
    }
}
