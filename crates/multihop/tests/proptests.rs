//! Property-based tests of the multi-hop substrate: mobility containment,
//! topology invariants, and TFT min-propagation.

use macgame_dcf::MicroSecs;
use macgame_multihop::convergence::{noisy_converge, tft_converge, GraphReaction};
use macgame_multihop::geometry::{Arena, Point};
use macgame_multihop::mobility::{Mobility, WaypointConfig};
use macgame_multihop::spatialsim::{SpatialConfig, SpatialEngine};
use macgame_multihop::topology::Topology;
use proptest::prelude::*;

fn arb_positions(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn waypoint_positions_stay_in_arena(
        n in 1usize..30,
        seed in 0u64..200,
        steps in 1usize..8,
        dt_secs in 0.1f64..60.0,
    ) {
        let config = WaypointConfig::paper();
        let mut m = Mobility::new(n, config, seed);
        for _ in 0..steps {
            m.step(MicroSecs::from_seconds(dt_secs));
            for p in m.positions() {
                prop_assert!(Arena::paper().contains(&p), "escaped: {p}");
            }
        }
    }

    #[test]
    fn displacement_bounded_by_speed(
        n in 1usize..20,
        seed in 0u64..100,
        dt_secs in 0.1f64..30.0,
    ) {
        let config = WaypointConfig::paper();
        let mut m = Mobility::new(n, config, seed);
        let before = m.positions();
        m.step(MicroSecs::from_seconds(dt_secs));
        for (a, b) in before.iter().zip(m.positions().iter()) {
            prop_assert!(a.distance_to(b) <= 5.0 * dt_secs + 1e-6);
        }
    }

    #[test]
    fn topology_is_symmetric_and_loopless(
        positions in arb_positions(1..40),
        range in 50.0f64..500.0,
    ) {
        let topo = Topology::from_positions(&positions, range);
        for i in 0..topo.len() {
            prop_assert!(!topo.neighbors(i).contains(&i), "self-loop at {i}");
            for &j in topo.neighbors(i) {
                prop_assert!(topo.neighbors(j).contains(&i), "asymmetric edge {i}-{j}");
                prop_assert!(positions[i].distance_to(&positions[j]) <= range);
            }
        }
    }

    #[test]
    fn components_partition_the_nodes(
        positions in arb_positions(1..40),
        range in 50.0f64..400.0,
    ) {
        let topo = Topology::from_positions(&positions, range);
        let comps = topo.components();
        let mut seen = vec![false; topo.len()];
        for comp in &comps {
            for &i in comp {
                prop_assert!(!seen[i], "node {i} in two components");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(comps.len() == 1, topo.is_connected());
    }

    #[test]
    fn hidden_terminals_are_receivers_neighbors_only(
        positions in arb_positions(2..30),
        range in 100.0f64..400.0,
    ) {
        let topo = Topology::from_positions(&positions, range);
        for s in 0..topo.len() {
            for &r in topo.neighbors(s) {
                for h in topo.hidden_terminals(s, r) {
                    prop_assert!(topo.neighbors(r).contains(&h));
                    prop_assert!(!topo.neighbors(s).contains(&h));
                    prop_assert!(h != s);
                }
            }
        }
    }

    #[test]
    fn tft_converges_to_component_minimum_within_diameter(
        positions in arb_positions(2..30),
        range in 100.0f64..600.0,
        seed_windows in prop::collection::vec(1u32..512, 2..30),
    ) {
        let topo = Topology::from_positions(&positions, range);
        let windows: Vec<u32> =
            (0..topo.len()).map(|i| seed_windows[i % seed_windows.len()]).collect();
        let trace = tft_converge(&topo, &windows).unwrap();
        // Every node ends at the minimum of its own component.
        for comp in topo.components() {
            let min = comp.iter().map(|&i| windows[i]).min().unwrap();
            for &i in &comp {
                prop_assert_eq!(trace.final_windows[i], min);
            }
        }
        if let Some(d) = topo.diameter() {
            prop_assert!(trace.rounds_needed <= d.max(1));
        }
    }

    #[test]
    fn min_propagation_is_monotone_per_round(
        positions in arb_positions(2..20),
        range in 100.0f64..600.0,
        seed_windows in prop::collection::vec(1u32..512, 2..20),
    ) {
        let topo = Topology::from_positions(&positions, range);
        let windows: Vec<u32> =
            (0..topo.len()).map(|i| seed_windows[i % seed_windows.len()]).collect();
        let trace = tft_converge(&topo, &windows).unwrap();
        for pair in trace.rounds.windows(2) {
            for (a, b) in pair[0].iter().zip(&pair[1]) {
                prop_assert!(b <= a, "window increased during TFT propagation");
            }
        }
    }

    #[test]
    fn noisy_tft_windows_never_increase(
        positions in arb_positions(2..20),
        range in 100.0f64..600.0,
        noise in 0.0f64..0.3,
        seed in 0u64..50,
    ) {
        let topo = Topology::from_positions(&positions, range);
        let initial = vec![64u32; topo.len()];
        let trace =
            noisy_converge(&topo, &initial, GraphReaction::Tft, noise, 10, seed).unwrap();
        for pair in trace.rounds.windows(2) {
            for (a, b) in pair[0].iter().zip(&pair[1]) {
                prop_assert!(b <= a, "plain TFT must be monotone non-increasing");
            }
        }
        prop_assert!(trace.final_windows().iter().all(|&w| w >= 1));
    }

    #[test]
    fn gtft_never_ends_below_plain_tft(
        positions in arb_positions(3..15),
        range in 150.0f64..500.0,
        seed in 0u64..30,
    ) {
        let topo = Topology::from_positions(&positions, range);
        let initial = vec![50u32; topo.len()];
        let tft =
            noisy_converge(&topo, &initial, GraphReaction::Tft, 0.15, 15, seed).unwrap();
        let gtft = noisy_converge(
            &topo,
            &initial,
            GraphReaction::GenerousTft { memory: 3, tolerance: 0.8 },
            0.15,
            15,
            seed,
        )
        .unwrap();
        let tft_min = *tft.final_windows().iter().min().unwrap();
        let gtft_min = *gtft.final_windows().iter().min().unwrap();
        prop_assert!(gtft_min >= tft_min, "GTFT {gtft_min} vs TFT {tft_min}");
    }

    #[test]
    fn spatial_engine_conservation_on_random_instances(
        positions in arb_positions(2..15),
        w in 4u32..128,
        seed in 0u64..30,
    ) {
        let config = SpatialConfig { mobility: None, ..SpatialConfig::paper(seed) };
        let n = positions.len();
        let mut engine =
            SpatialEngine::with_positions(positions, &vec![w; n], config).unwrap();
        let report = engine.run_for(MicroSecs::from_seconds(2.0));
        for (i, s) in report.node_stats.iter().enumerate() {
            prop_assert_eq!(s.attempts, s.successes + s.collisions, "node {}", i);
            prop_assert!(report.hidden[i].hidden_losses <= report.hidden[i].exposed_attempts);
        }
        prop_assert!(report.elapsed.value() >= 2.0 * 1e6);
        for t in &report.local_elapsed {
            prop_assert!(t.value() > 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A churn trace is a pure function of `(topology, initial, schedule)`:
    /// two runs of the same seeded schedule are identical, round for round
    /// — the dynamics are serial, so this is also thread invariance.
    #[test]
    fn churn_traces_are_seed_deterministic(
        rows in 2usize..5,
        cols in 2usize..5,
        seed in 0u64..300,
        rate in 0.0f64..0.5,
        base in 2u32..200,
    ) {
        use macgame_faults::ChurnSchedule;
        use macgame_multihop::convergence::churn_converge;
        let topology = Topology::grid(rows, cols);
        let n = topology.len();
        let initial: Vec<u32> = (0..n).map(|i| base + i as u32).collect();
        let schedule = ChurnSchedule::random(n, 30, rate, 256, seed).unwrap();
        let a = churn_converge(&topology, &initial, &schedule).unwrap();
        let b = churn_converge(&topology, &initial, &schedule).unwrap();
        prop_assert_eq!(&a.rounds, &b.rounds);
        prop_assert_eq!(&a.final_windows, &b.final_windows);
        prop_assert_eq!(a.settled, b.settled);
        prop_assert_eq!(a.max_reconvergence_rounds(), b.max_reconvergence_rounds());
    }

    /// With an empty churn schedule, the churn dynamics reduce exactly to
    /// plain TFT min-propagation: same fixed point, everyone present.
    #[test]
    fn churn_free_dynamics_match_plain_tft(
        rows in 2usize..5,
        cols in 2usize..5,
        base in 1u32..500,
    ) {
        use macgame_faults::ChurnSchedule;
        use macgame_multihop::convergence::churn_converge;
        let topology = Topology::grid(rows, cols);
        let n = topology.len();
        let initial: Vec<u32> = (0..n).map(|i| base + (i as u32 * 13) % 97).collect();
        let plain = tft_converge(&topology, &initial).unwrap();
        let churned = churn_converge(&topology, &initial, &ChurnSchedule::none()).unwrap();
        prop_assert!(churned.settled);
        prop_assert_eq!(churned.converged_window(), plain.converged_window());
        let present: Vec<u32> = churned.final_windows.iter().map(|w| w.unwrap()).collect();
        prop_assert_eq!(present, plain.final_windows);
    }
}
