//! Golden-snapshot plumbing: fixture paths, byte-for-byte comparison,
//! blessing, and human-readable diffs.
//!
//! A fixture is the pretty-printed JSON of a deterministic solve. Fresh
//! values are rendered through the same serializer before comparison, so
//! string equality is exactly bitwise value equality (the float writer is
//! shortest-roundtrip). `UPDATE_GOLDEN=1` switches [`check_golden`] from
//! comparing to (re)writing — `scripts/bless.sh` wraps that.

use std::path::PathBuf;

use serde::Serialize;

use crate::ConformanceError;

/// Max differing lines quoted in a mismatch diff before truncating.
const DIFF_LINE_CAP: usize = 24;

/// The checked-in fixture directory, `tests/golden/` at the workspace
/// root. Resolved from this crate's manifest directory, so it is
/// independent of the process working directory.
#[must_use]
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..").join("tests").join("golden")
}

/// Path of the fixture file for `name`.
#[must_use]
pub fn golden_path(name: &str) -> PathBuf {
    golden_dir().join(format!("{name}.json"))
}

/// Whether the caller asked to (re)write fixtures instead of checking
/// them (`UPDATE_GOLDEN` set to anything but `0`).
#[must_use]
pub fn bless_requested() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v != "0")
}

/// Renders a fixture value exactly as it is stored on disk.
///
/// # Errors
///
/// Propagates serialization failures.
pub fn render<T: Serialize + ?Sized>(value: &T) -> Result<String, ConformanceError> {
    Ok(serde_json::to_string_pretty(value)? + "\n")
}

/// Compares `value` byte-for-byte against the checked-in fixture `name`,
/// or (re)writes the fixture when [`bless_requested`].
///
/// # Errors
///
/// * [`ConformanceError::MissingGolden`] if the fixture does not exist;
/// * [`ConformanceError::Mismatch`] with a line diff if it disagrees;
/// * IO/serialization failures.
pub fn check_golden<T: Serialize + ?Sized>(
    name: &str,
    value: &T,
) -> Result<(), ConformanceError> {
    let fresh = render(value)?;
    let path = golden_path(name);
    if bless_requested() {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, fresh)?;
        return Ok(());
    }
    let golden = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(ConformanceError::MissingGolden { name: name.to_string(), path });
        }
        Err(e) => return Err(ConformanceError::Io(e)),
    };
    if golden == fresh {
        Ok(())
    } else {
        Err(ConformanceError::Mismatch {
            name: name.to_string(),
            diff: diff_lines(&golden, &fresh),
        })
    }
}

/// Line-oriented diff of two fixture renderings: every differing line is
/// quoted with its 1-based line number, `-` for the golden side and `+`
/// for the fresh side, truncated after `DIFF_LINE_CAP` differences.
#[must_use]
pub fn diff_lines(golden: &str, fresh: &str) -> String {
    let golden_lines: Vec<&str> = golden.lines().collect();
    let fresh_lines: Vec<&str> = fresh.lines().collect();
    let mut out = String::new();
    let mut shown = 0usize;
    let mut skipped = 0usize;
    let total = golden_lines.len().max(fresh_lines.len());
    for i in 0..total {
        let g = golden_lines.get(i).copied();
        let f = fresh_lines.get(i).copied();
        if g == f {
            continue;
        }
        if shown == DIFF_LINE_CAP {
            skipped += 1;
            continue;
        }
        shown += 1;
        out.push_str(&format!("line {}:\n", i + 1));
        if let Some(g) = g {
            out.push_str(&format!("  - golden: {g}\n"));
        } else {
            out.push_str("  - golden: <end of file>\n");
        }
        if let Some(f) = f {
            out.push_str(&format!("  + fresh:  {f}\n"));
        } else {
            out.push_str("  + fresh:  <end of file>\n");
        }
    }
    if skipped > 0 {
        out.push_str(&format!("… {skipped} more differing line(s)\n"));
    }
    if golden_lines.len() != fresh_lines.len() {
        out.push_str(&format!(
            "({} golden lines vs {} fresh lines)\n",
            golden_lines.len(),
            fresh_lines.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_dir_points_into_workspace_tests() {
        let dir = golden_dir();
        assert!(dir.ends_with("tests/golden"));
        assert_eq!(golden_path("x"), dir.join("x.json"));
    }

    #[test]
    fn diff_quotes_both_sides_with_line_numbers() {
        let diff = diff_lines("a\nb\nc\n", "a\nB\nc\n");
        assert!(diff.contains("line 2:"));
        assert!(diff.contains("- golden: b"));
        assert!(diff.contains("+ fresh:  B"));
        assert!(!diff.contains("line 1:"));
        assert!(!diff.contains("line 3:"));
    }

    #[test]
    fn diff_handles_length_mismatch() {
        let diff = diff_lines("a\n", "a\nb\n");
        assert!(diff.contains("<end of file>"));
        assert!(diff.contains("1 golden lines vs 2 fresh lines"));
    }

    #[test]
    fn diff_truncates_noise() {
        let golden: String = (0..100).map(|i| format!("{i}\n")).collect();
        let fresh: String = (0..100).map(|i| format!("{}\n", i + 1)).collect();
        let diff = diff_lines(&golden, &fresh);
        assert!(diff.contains("more differing line(s)"));
        assert!(diff.matches("line ").count() <= DIFF_LINE_CAP + 10);
    }

    #[test]
    fn render_appends_trailing_newline() {
        assert_eq!(render(&7u32).unwrap(), "7\n");
    }
}
