//! Network-wide TFT convergence (paper Section VI.B, Theorem 3).
//!
//! Under TFT each node matches the minimum window it *hears*; the smallest
//! window in the network therefore spreads one hop per stage, and on a
//! connected graph every node converges to `W_m = min_i W_i` within
//! `diameter` stages. Theorem 3: the profile `(W_m, …, W_m)` is a NE of
//! the multi-hop game `G'` — Pareto optimal but in general not globally
//! optimal (quasi-optimal in the experiments).

use macgame_faults::{ChurnKind, ChurnSchedule};
use macgame_telemetry as telemetry;
use serde::{Deserialize, Serialize};

use crate::error::MultihopError;
use crate::topology::Topology;

/// Trace of the min-propagation dynamics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    /// Window profile at each round, starting with the initial profile.
    pub rounds: Vec<Vec<u32>>,
    /// The network-wide converged window (min over the start profile's
    /// connected component mins; equal to the global min when connected).
    pub final_windows: Vec<u32>,
    /// Rounds needed until no window changed.
    pub rounds_needed: usize,
}

impl ConvergenceTrace {
    /// Whether all nodes ended on a single common window.
    #[must_use]
    pub fn uniform(&self) -> bool {
        self.final_windows.windows(2).all(|w| w[0] == w[1])
    }

    /// The common window if [`Self::uniform`].
    #[must_use]
    pub fn converged_window(&self) -> Option<u32> {
        if self.uniform() {
            self.final_windows.first().copied()
        } else {
            None
        }
    }
}

/// Runs the TFT min-propagation dynamic from `initial` until it is stable.
///
/// Each round, every node simultaneously sets its window to the minimum
/// over itself and its neighbors (what it overheard last stage).
///
/// # Examples
///
/// ```
/// use macgame_multihop::convergence::tft_converge;
/// use macgame_multihop::{Point, Topology};
///
/// // A 3-hop chain: the smallest window spreads one hop per round.
/// let positions: Vec<Point> = (0..4).map(|i| Point::new(i as f64, 0.0)).collect();
/// let topo = Topology::from_positions(&positions, 1.0);
/// let trace = tft_converge(&topo, &[40, 30, 20, 10])?;
/// assert_eq!(trace.converged_window(), Some(10));
/// assert_eq!(trace.rounds_needed, 3);
/// # Ok::<(), macgame_multihop::MultihopError>(())
/// ```
///
/// # Errors
///
/// Returns [`MultihopError::InvalidInput`] if `initial` disagrees with the
/// topology size or contains a zero window.
pub fn tft_converge(
    topology: &Topology,
    initial: &[u32],
) -> Result<ConvergenceTrace, MultihopError> {
    if initial.len() != topology.len() {
        return Err(MultihopError::InvalidInput(format!(
            "{} windows for {} nodes",
            initial.len(),
            topology.len()
        )));
    }
    if initial.contains(&0) {
        return Err(MultihopError::InvalidInput("windows must be at least 1".into()));
    }
    let mut rounds = vec![initial.to_vec()];
    let mut current = initial.to_vec();
    loop {
        let next: Vec<u32> = (0..current.len())
            .map(|i| {
                topology
                    .neighbors(i)
                    .iter()
                    .map(|&j| current[j])
                    .chain(std::iter::once(current[i]))
                    .min()
                    .expect("nonempty by construction") // PANIC-POLICY: invariant: nonempty by construction
            })
            .collect();
        let stable = next == current;
        current = next;
        if stable {
            break;
        }
        rounds.push(current.clone());
        // Monotone and bounded below: can never loop, but guard anyway.
        if rounds.len() > topology.len() + 2 {
            return Err(MultihopError::InvalidInput(
                "min-propagation failed to stabilize (impossible for valid graphs)".into(),
            ));
        }
    }
    let rounds_needed = rounds.len() - 1;
    telemetry::counter("multihop.convergence.runs", 1);
    telemetry::counter("multihop.convergence.rounds", rounds_needed as u64);
    Ok(ConvergenceTrace { rounds, final_windows: current, rounds_needed })
}

/// Verdict of the Theorem 3 equilibrium check at the converged profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultihopNeCheck {
    /// The converged common window `W_m`.
    pub window: u32,
    /// Whether no node has a profitable unilateral deviation.
    pub is_ne: bool,
    /// Worst (most tempted) node and its relative gain, for diagnostics.
    pub worst: Option<(usize, f64)>,
}

/// Checks Theorem 3: at `(W_m, …, W_m)` with `W_m = min_i W_i*`, no node
/// gains by deviating, because each node's local-game payoff is
/// monotonically increasing in the common window up to its own local
/// optimum `W_i* ≥ W_m` — so a downward deviation (followed by TFT dragging
/// its whole neighborhood down) lands strictly below `W_m`'s payoff, and an
/// upward deviation is immediately disfavored and pulled back.
///
/// The check prices a downward deviation for node `i` as: the deviator's
/// local game (population `deg(i)+1`) with everyone at `w_dev` forever
/// (post-punishment), versus everyone at `w_m` forever; plus the transient
/// head stage priced with [`macgame_core::deviation`]'s machinery.
///
/// # Errors
///
/// Propagates model failures.
pub fn check_multihop_ne(
    topology: &Topology,
    local_windows: &[u32],
    w_m: u32,
    game_template: &macgame_core::GameConfig,
    epsilon: f64,
) -> Result<MultihopNeCheck, MultihopError> {
    check_multihop_ne_threads(topology, local_windows, w_m, game_template, epsilon, 0)
}

/// [`check_multihop_ne`] with an explicit worker-thread count (`0` = the
/// `MACGAME_THREADS` default), for callers that need to pin the pool size
/// without touching the environment — e.g. the thread-invariance
/// determinism tests.
///
/// # Errors
///
/// Propagates model failures.
pub fn check_multihop_ne_threads(
    topology: &Topology,
    local_windows: &[u32],
    w_m: u32,
    game_template: &macgame_core::GameConfig,
    epsilon: f64,
    threads: usize,
) -> Result<MultihopNeCheck, MultihopError> {
    if local_windows.len() != topology.len() {
        return Err(MultihopError::InvalidInput(format!(
            "{} windows for {} nodes",
            local_windows.len(),
            topology.len()
        )));
    }
    // The check for node `i` depends only on its local population, which
    // repeats heavily across a network: solve each distinct population's
    // local game once, fanned out over the `MACGAME_THREADS` pool, then
    // fold per node in index order — reproducing exactly the verdict (and
    // stop-at-first-violation `worst` accounting) of a serial node loop.
    let populations: Vec<usize> =
        (0..topology.len()).map(|i| topology.local_population(i)).collect();
    let mut distinct: Vec<usize> = populations.iter().copied().filter(|&n| n >= 2).collect();
    distinct.sort_unstable();
    distinct.dedup();
    type LocalVerdict = (macgame_core::equilibrium::NeCheck, f64);
    telemetry::counter("multihop.localgame.ne_checks", distinct.len() as u64);
    let _span = telemetry::span("multihop.ne_check");
    let threads = macgame_dcf::parallel::resolve_threads(threads);
    let solved: Vec<Result<LocalVerdict, MultihopError>> =
        rayon::map_in_order(distinct.clone(), threads, |n_local| {
            let game = macgame_core::GameConfig::builder(n_local)
                .params(*game_template.params())
                .utility(*game_template.utility())
                .stage_duration(game_template.stage_duration())
                .discount(game_template.discount())
                .w_max(game_template.w_max())
                .build()
                .map_err(|e| MultihopError::InvalidInput(e.to_string()))?;
            let check = macgame_core::equilibrium::check_symmetric_ne(&game, w_m, 1, epsilon)
                .map_err(MultihopError::from)?;
            let compliant = macgame_core::deviation::symmetric_stage(&game, w_m)
                .map_err(MultihopError::from)?
                .abs()
                .max(f64::MIN_POSITIVE);
            let total =
                game.stage_duration().value() * compliant / (1.0 - game.discount());
            Ok((check, total))
        });
    let mut verdicts: std::collections::BTreeMap<usize, LocalVerdict> =
        std::collections::BTreeMap::new();
    for (n_local, v) in distinct.into_iter().zip(solved) {
        verdicts.insert(n_local, v?);
    }
    let mut worst: Option<(usize, f64)> = None;
    for (i, n_local) in populations.iter().enumerate() {
        if *n_local < 2 {
            continue; // no contention, nothing to deviate over
        }
        let (check, compliant_total) = &verdicts[n_local];
        if let Some((_, gain)) = check.best_deviation {
            let rel = gain / compliant_total;
            if worst.map_or(true, |(_, g)| rel > g) {
                worst = Some((i, rel));
            }
        }
        if !check.is_ne {
            return Ok(MultihopNeCheck { window: w_m, is_ne: false, worst });
        }
    }
    Ok(MultihopNeCheck { window: w_m, is_ne: true, worst })
}


/// Re-convergence bookkeeping for one churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconvergenceRecord {
    /// The event that was applied.
    pub event: macgame_faults::ChurnEvent,
    /// Propagation rounds from the event onward that changed the profile
    /// before the network was stable again (`0` = the event didn't
    /// perturb the min-matching dynamics at all, e.g. the departed node's
    /// window had already spread; `None` = the run hit its round guard
    /// before settling).
    pub rounds_to_settle: Option<usize>,
}

/// Trace of TFT min-propagation under a [`ChurnSchedule`].
///
/// Departed nodes are marked `None`: they neither transmit nor are heard,
/// so their neighbors simply stop including them in the min.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnTrace {
    /// Window profile per round (`None` = node currently away), starting
    /// with the initial profile.
    pub rounds: Vec<Vec<Option<u32>>>,
    /// The final profile.
    pub final_windows: Vec<Option<u32>>,
    /// Per-event re-convergence metrics, in application order.
    pub reconvergence: Vec<ReconvergenceRecord>,
    /// Whether the dynamics reached a stable profile after the last
    /// scheduled event (always true within the round guard for valid
    /// inputs, since min-matching is monotone between events).
    pub settled: bool,
}

impl ChurnTrace {
    /// Whether all *present* nodes ended on a single common window.
    #[must_use]
    pub fn active_uniform(&self) -> bool {
        let mut present = self.final_windows.iter().flatten();
        match present.next() {
            Some(first) => present.all(|w| w == first),
            None => true,
        }
    }

    /// The common window of the present nodes if [`Self::active_uniform`].
    #[must_use]
    pub fn converged_window(&self) -> Option<u32> {
        if self.active_uniform() {
            self.final_windows.iter().flatten().next().copied()
        } else {
            None
        }
    }

    /// The slowest re-convergence over all settled events.
    #[must_use]
    pub fn max_reconvergence_rounds(&self) -> Option<usize> {
        self.reconvergence.iter().filter_map(|r| r.rounds_to_settle).max()
    }

    /// Propagation rounds actually run.
    #[must_use]
    pub fn rounds_run(&self) -> usize {
        self.rounds.len() - 1
    }
}

/// Runs TFT min-propagation from `initial` while replaying `schedule`:
/// at the start of each round the events due that round are applied
/// (leave / join / window reset), then every present node simultaneously
/// matches the minimum over itself and its present neighbors.
///
/// The dynamics are fully serial and draw no randomness, so a trace is a
/// pure function of `(topology, initial, schedule)` — identical for every
/// seed-derived schedule replay and every `MACGAME_THREADS` setting.
///
/// Per event, the trace records how many extra propagation rounds the
/// network needed to stabilize again ([`ReconvergenceRecord`]); a `Leave`
/// of the minimum-holder costs nothing (min-matching never raises a
/// window), while a low-window `Join` re-triggers up to a diameter's worth
/// of spreading.
///
/// # Errors
///
/// Returns [`MultihopError::InvalidInput`] for a profile/topology length
/// mismatch, a zero initial window, or an event naming a node outside the
/// topology.
pub fn churn_converge(
    topology: &Topology,
    initial: &[u32],
    schedule: &ChurnSchedule,
) -> Result<ChurnTrace, MultihopError> {
    let n = topology.len();
    if initial.len() != n {
        return Err(MultihopError::InvalidInput(format!(
            "{} windows for {} nodes",
            initial.len(),
            n
        )));
    }
    if initial.contains(&0) {
        return Err(MultihopError::InvalidInput("windows must be at least 1".into()));
    }
    let events = schedule.events();
    if let Some(bad) = events.iter().find(|e| e.node >= n) {
        return Err(MultihopError::InvalidInput(format!(
            "churn event names node {} but the network has {n}",
            bad.node
        )));
    }
    let mut state: Vec<Option<u32>> = initial.iter().map(|&w| Some(w)).collect();
    let mut rounds = vec![state.clone()];
    let mut reconvergence: Vec<ReconvergenceRecord> = Vec::with_capacity(events.len());
    // Events applied but not yet settled: (record index, application round).
    let mut pending: Vec<(usize, usize)> = Vec::new();
    let mut next_event = 0usize;
    // Last round whose *propagation* step moved a window (event
    // applications themselves don't count: a Leave whose window already
    // spread perturbs nothing).
    let mut last_prop_change: Option<usize> = None;
    let mut settled = false;
    // Between consecutive events the dynamics are plain monotone
    // min-matching, so each segment stabilizes within `n` rounds; one
    // extra round detects stability.
    let horizon = schedule.last_round().unwrap_or(0) + n + 2;
    for round in 1..=horizon {
        let mut applied_any = false;
        while next_event < events.len() && events[next_event].round <= round {
            let e = events[next_event];
            match e.kind {
                ChurnKind::Leave => state[e.node] = None,
                ChurnKind::Join { window } | ChurnKind::Reset { window } => {
                    state[e.node] = Some(window);
                }
            }
            reconvergence.push(ReconvergenceRecord { event: e, rounds_to_settle: None });
            pending.push((reconvergence.len() - 1, round));
            applied_any = true;
            next_event += 1;
        }
        let next: Vec<Option<u32>> = (0..n)
            .map(|i| {
                state[i].map(|w| {
                    topology
                        .neighbors(i)
                        .iter()
                        .filter_map(|&j| state[j])
                        .chain(std::iter::once(w))
                        .min()
                        .expect("self always present") // PANIC-POLICY: invariant: self always present
                })
            })
            .collect();
        let changed_prop = next != state;
        state = next;
        rounds.push(state.clone());
        if changed_prop {
            last_prop_change = Some(round);
        }
        if !changed_prop && !applied_any {
            for (idx, at) in pending.drain(..) {
                let settled_in = match last_prop_change {
                    Some(last) if last >= at => last - at + 1,
                    _ => 0,
                };
                reconvergence[idx].rounds_to_settle = Some(settled_in);
            }
            if next_event >= events.len() {
                settled = true;
                break;
            }
        }
    }
    telemetry::counter("multihop.churn.runs", 1);
    telemetry::counter("multihop.churn.events", events.len() as u64);
    telemetry::counter("multihop.churn.rounds", (rounds.len() - 1) as u64);
    Ok(ChurnTrace { rounds, final_windows: state, reconvergence, settled })
}

/// How a node reacts to (noisy) window observations of its neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GraphReaction {
    /// Plain TFT: match the minimum observed window every round.
    Tft,
    /// Generous TFT: average each neighbor's observations over the last
    /// `memory` rounds and only react when some neighbor's average
    /// undercuts `tolerance ×` one's own window.
    GenerousTft {
        /// Averaging memory `r₀ ≥ 1`.
        memory: usize,
        /// Tolerance `β ∈ (0, 1]`.
        tolerance: f64,
    },
}

/// Trace of the noisy-observation dynamics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoisyTrace {
    /// Window profile per round, starting with the initial profile.
    pub rounds: Vec<Vec<u32>>,
}

impl NoisyTrace {
    /// The final profile.
    ///
    /// # Panics
    ///
    /// Never: the trace always contains the initial round.
    #[must_use]
    pub fn final_windows(&self) -> &[u32] {
        self.rounds.last().expect("initial round always present") // PANIC-POLICY: invariant: initial round always present
    }
}

/// Runs `rounds` rounds of min-matching dynamics where every observation
/// of a neighbor's window carries multiplicative noise
/// `U[1 − noise, 1 + noise]` — the regime that motivates Generous TFT
/// (paper Section IV: "taking into account the various factors that
/// influence the measurement").
///
/// Under plain TFT the noise is rectified: each round every node matches
/// the *minimum* of noisy estimates, so underestimates stick and the whole
/// network ratchets below the true minimum. GTFT's averaging and tolerance
/// absorb it.
///
/// # Errors
///
/// Returns [`MultihopError::InvalidInput`] for profile/topology mismatch,
/// zero windows, `noise ∉ [0, 1)`, or invalid GTFT parameters.
pub fn noisy_converge(
    topology: &Topology,
    initial: &[u32],
    reaction: GraphReaction,
    noise: f64,
    rounds: usize,
    seed: u64,
) -> Result<NoisyTrace, MultihopError> {
    use rand::{Rng, SeedableRng};
    if initial.len() != topology.len() {
        return Err(MultihopError::InvalidInput(format!(
            "{} windows for {} nodes",
            initial.len(),
            topology.len()
        )));
    }
    if initial.contains(&0) {
        return Err(MultihopError::InvalidInput("windows must be at least 1".into()));
    }
    if !(0.0..1.0).contains(&noise) {
        return Err(MultihopError::InvalidInput("noise must be in [0, 1)".into()));
    }
    if let GraphReaction::GenerousTft { memory, tolerance } = reaction {
        if memory == 0 {
            return Err(MultihopError::InvalidInput("GTFT memory must be at least 1".into()));
        }
        if !(tolerance > 0.0 && tolerance <= 1.0) {
            return Err(MultihopError::InvalidInput("GTFT tolerance must be in (0, 1]".into()));
        }
    }
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let n = topology.len();
    let mut current = initial.to_vec();
    let mut trace = vec![current.clone()];
    // Per-node, per-neighbor observation history (GTFT averaging).
    let mut history: Vec<Vec<Vec<f64>>> =
        (0..n).map(|i| vec![Vec::new(); topology.neighbors(i).len()]).collect();
    for _ in 0..rounds {
        let mut next = current.clone();
        // Every node observes each neighbor once this round.
        let observations: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                topology
                    .neighbors(i)
                    .iter()
                    .map(|&j| {
                        let eps = rng.gen_range(-noise..=noise);
                        (f64::from(current[j]) * (1.0 + eps)).max(1.0)
                    })
                    .collect()
            })
            .collect();
        for i in 0..n {
            if observations[i].is_empty() {
                continue;
            }
            match reaction {
                GraphReaction::Tft => {
                    let observed_min = observations[i]
                        .iter()
                        .copied()
                        .fold(f64::INFINITY, f64::min)
                        .round() as u32;
                    next[i] = next[i].min(observed_min.max(1));
                }
                GraphReaction::GenerousTft { memory, tolerance } => {
                    for (k, &obs) in observations[i].iter().enumerate() {
                        let h = &mut history[i][k];
                        h.push(obs);
                        if h.len() > memory {
                            h.remove(0);
                        }
                    }
                    let my_w = f64::from(current[i]);
                    let undercut = history[i].iter().any(|h| {
                        !h.is_empty()
                            && h.iter().sum::<f64>() / (h.len() as f64) < tolerance * my_w
                    });
                    if undercut {
                        let observed_min = observations[i]
                            .iter()
                            .copied()
                            .fold(f64::INFINITY, f64::min)
                            .round() as u32;
                        next[i] = next[i].min(observed_min.max(1));
                    }
                }
            }
        }
        current = next;
        trace.push(current.clone());
    }
    Ok(NoisyTrace { rounds: trace })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Topology {
        let positions: Vec<crate::geometry::Point> =
            (0..n).map(|i| crate::geometry::Point::new(i as f64, 0.0)).collect();
        Topology::from_positions(&positions, 1.0)
    }

    #[test]
    fn min_spreads_one_hop_per_round() {
        let topo = line(5);
        let trace = tft_converge(&topo, &[50, 40, 30, 20, 10]).unwrap();
        assert!(trace.uniform());
        assert_eq!(trace.converged_window(), Some(10));
        // The min starts at one end of a diameter-4 line: 4 rounds.
        assert_eq!(trace.rounds_needed, 4);
    }

    #[test]
    fn convergence_bounded_by_diameter() {
        let topo = line(8);
        let trace = tft_converge(&topo, &[9, 3, 7, 5, 8, 2, 6, 4]).unwrap();
        assert!(trace.rounds_needed <= topo.diameter().unwrap());
        assert_eq!(trace.converged_window(), Some(2));
    }

    #[test]
    fn already_uniform_needs_zero_rounds() {
        let topo = line(4);
        let trace = tft_converge(&topo, &[26; 4]).unwrap();
        assert_eq!(trace.rounds_needed, 0);
        assert_eq!(trace.converged_window(), Some(26));
    }

    #[test]
    fn disconnected_components_keep_their_own_min() {
        let positions = vec![
            crate::geometry::Point::new(0.0, 0.0),
            crate::geometry::Point::new(1.0, 0.0),
            crate::geometry::Point::new(100.0, 0.0),
            crate::geometry::Point::new(101.0, 0.0),
        ];
        let topo = Topology::from_positions(&positions, 1.5);
        let trace = tft_converge(&topo, &[30, 20, 50, 40]).unwrap();
        assert!(!trace.uniform());
        assert_eq!(trace.final_windows, vec![20, 20, 40, 40]);
    }

    #[test]
    fn input_validation() {
        let topo = line(3);
        assert!(tft_converge(&topo, &[1, 2]).is_err());
        assert!(tft_converge(&topo, &[1, 0, 2]).is_err());
    }

    #[test]
    fn theorem3_holds_on_a_line_network() {
        use crate::localgame::{local_optimal_windows, LocalRule};
        use macgame_dcf::{AccessMode, DcfParams, UtilityParams};
        let topo = line(6);
        let params = DcfParams::builder().access_mode(AccessMode::RtsCts).build().unwrap();
        let ws = local_optimal_windows(
            &topo,
            &params,
            &UtilityParams::default(),
            2048,
            LocalRule::ExactArgmax,
        )
        .unwrap();
        let trace = tft_converge(&topo, &ws).unwrap();
        let w_m = trace.converged_window().unwrap();
        assert_eq!(ws.iter().copied().min().unwrap(), w_m);
        let template = macgame_core::GameConfig::builder(2).params(params).build().unwrap();
        let check = check_multihop_ne(&topo, &ws, w_m, &template, 1e-4).unwrap();
        assert!(check.is_ne, "worst deviation: {:?}", check.worst);
    }

    #[test]
    fn churn_free_schedule_matches_plain_convergence() {
        let topo = line(5);
        let initial = [50u32, 40, 30, 20, 10];
        let plain = tft_converge(&topo, &initial).unwrap();
        let churned = churn_converge(&topo, &initial, &ChurnSchedule::none()).unwrap();
        assert!(churned.settled);
        assert!(churned.reconvergence.is_empty());
        let finals: Vec<u32> = churned.final_windows.iter().map(|w| w.unwrap()).collect();
        assert_eq!(finals, plain.final_windows);
        assert_eq!(churned.converged_window(), Some(10));
    }

    #[test]
    fn leaving_the_min_holder_costs_no_reconvergence() {
        // Min-matching never raises a window, so once 10 has spread the
        // origin's departure perturbs nothing.
        let topo = line(4);
        let events = vec![macgame_faults::ChurnEvent {
            round: 10,
            node: 3,
            kind: macgame_faults::ChurnKind::Leave,
        }];
        let schedule = ChurnSchedule::new(events, 4).unwrap();
        let trace = churn_converge(&topo, &[40, 30, 20, 10], &schedule).unwrap();
        assert!(trace.settled);
        assert_eq!(trace.final_windows, vec![Some(10), Some(10), Some(10), None]);
        assert_eq!(trace.reconvergence.len(), 1);
        assert_eq!(trace.reconvergence[0].rounds_to_settle, Some(0));
    }

    #[test]
    fn low_window_join_re_spreads_across_the_diameter() {
        // A converged 4-chain at 40; a node rejoins at window 5 on one end
        // and the min takes a diameter's worth of rounds to spread again.
        let topo = line(4);
        let events = vec![
            macgame_faults::ChurnEvent {
                round: 2,
                node: 0,
                kind: macgame_faults::ChurnKind::Leave,
            },
            macgame_faults::ChurnEvent {
                round: 8,
                node: 0,
                kind: macgame_faults::ChurnKind::Join { window: 5 },
            },
        ];
        let schedule = ChurnSchedule::new(events, 4).unwrap();
        let trace = churn_converge(&topo, &[40; 4], &schedule).unwrap();
        assert!(trace.settled);
        assert_eq!(trace.converged_window(), Some(5));
        // The join at one end of a diameter-3 line needs 3 spreading rounds.
        assert_eq!(trace.reconvergence[1].rounds_to_settle, Some(3));
        assert_eq!(trace.max_reconvergence_rounds(), Some(3));
    }

    #[test]
    fn reset_is_pulled_back_down_by_neighbors() {
        let topo = line(3);
        let events = vec![macgame_faults::ChurnEvent {
            round: 5,
            node: 1,
            kind: macgame_faults::ChurnKind::Reset { window: 90 },
        }];
        let schedule = ChurnSchedule::new(events, 3).unwrap();
        let trace = churn_converge(&topo, &[20; 3], &schedule).unwrap();
        assert!(trace.settled);
        assert_eq!(trace.converged_window(), Some(20));
        assert_eq!(trace.reconvergence[0].rounds_to_settle, Some(1));
    }

    #[test]
    fn churn_trace_is_a_pure_function_of_the_schedule_seed() {
        let topo = line(10);
        let initial: Vec<u32> = (1..=10).map(|i| i * 10).collect();
        let sched_a = ChurnSchedule::random(10, 40, 0.3, 128, 42).unwrap();
        let sched_b = ChurnSchedule::random(10, 40, 0.3, 128, 42).unwrap();
        let a = churn_converge(&topo, &initial, &sched_a).unwrap();
        let b = churn_converge(&topo, &initial, &sched_b).unwrap();
        assert_eq!(a, b);
        let sched_c = ChurnSchedule::random(10, 40, 0.3, 128, 43).unwrap();
        let c = churn_converge(&topo, &initial, &sched_c).unwrap();
        assert!(a != c || sched_a == sched_c);
    }

    #[test]
    fn churn_converge_validation() {
        let topo = line(3);
        assert!(churn_converge(&topo, &[1, 2], &ChurnSchedule::none()).is_err());
        assert!(churn_converge(&topo, &[1, 0, 2], &ChurnSchedule::none()).is_err());
        let oversized = ChurnSchedule::new(
            vec![macgame_faults::ChurnEvent {
                round: 1,
                node: 7,
                kind: macgame_faults::ChurnKind::Leave,
            }],
            8,
        )
        .unwrap();
        assert!(churn_converge(&topo, &[1, 2, 3], &oversized).is_err());
    }

    #[test]
    fn all_nodes_leaving_is_vacuously_uniform() {
        let topo = line(2);
        let events = (0..2)
            .map(|node| macgame_faults::ChurnEvent {
                round: 3,
                node,
                kind: macgame_faults::ChurnKind::Leave,
            })
            .collect();
        let schedule = ChurnSchedule::new(events, 2).unwrap();
        let trace = churn_converge(&topo, &[8, 8], &schedule).unwrap();
        assert!(trace.settled);
        assert!(trace.active_uniform());
        assert_eq!(trace.converged_window(), None);
        assert_eq!(trace.final_windows, vec![None, None]);
    }

    #[test]
    fn noiseless_dynamics_match_plain_convergence() {
        let topo = line(5);
        let initial = [50u32, 40, 30, 20, 10];
        let exact = tft_converge(&topo, &initial).unwrap();
        let noisy =
            noisy_converge(&topo, &initial, GraphReaction::Tft, 0.0, 10, 1).unwrap();
        assert_eq!(noisy.final_windows(), &exact.final_windows[..]);
    }

    #[test]
    fn plain_tft_ratchets_below_true_minimum_under_noise() {
        let topo = line(8);
        let initial = [40u32; 8];
        let noisy =
            noisy_converge(&topo, &initial, GraphReaction::Tft, 0.2, 25, 7).unwrap();
        let final_min = *noisy.final_windows().iter().min().unwrap();
        assert!(
            final_min < 30,
            "noise rectification should have dragged windows down (min {final_min})"
        );
    }

    #[test]
    fn gtft_resists_the_same_noise() {
        let topo = line(8);
        let initial = [40u32; 8];
        let gtft = noisy_converge(
            &topo,
            &initial,
            GraphReaction::GenerousTft { memory: 4, tolerance: 0.75 },
            0.2,
            25,
            7,
        )
        .unwrap();
        let final_min = *gtft.final_windows().iter().min().unwrap();
        assert!(
            final_min >= 35,
            "GTFT should hold near the true window (min {final_min})"
        );
    }

    #[test]
    fn gtft_still_reacts_to_real_defection() {
        // One genuine defector at 10 among nodes at 40: GTFT must follow.
        let topo = line(6);
        let mut initial = [40u32; 6];
        initial[0] = 10;
        let gtft = noisy_converge(
            &topo,
            &initial,
            GraphReaction::GenerousTft { memory: 3, tolerance: 0.8 },
            0.05,
            30,
            3,
        )
        .unwrap();
        let final_max = *gtft.final_windows().iter().max().unwrap();
        assert!(final_max <= 14, "defection must propagate (max {final_max})");
    }

    #[test]
    fn noisy_converge_validation() {
        let topo = line(3);
        assert!(noisy_converge(&topo, &[1, 2], GraphReaction::Tft, 0.1, 5, 0).is_err());
        assert!(noisy_converge(&topo, &[1, 2, 0], GraphReaction::Tft, 0.1, 5, 0).is_err());
        assert!(noisy_converge(&topo, &[1, 2, 3], GraphReaction::Tft, 1.0, 5, 0).is_err());
        assert!(noisy_converge(
            &topo,
            &[1, 2, 3],
            GraphReaction::GenerousTft { memory: 0, tolerance: 0.8 },
            0.1,
            5,
            0
        )
        .is_err());
        assert!(noisy_converge(
            &topo,
            &[1, 2, 3],
            GraphReaction::GenerousTft { memory: 2, tolerance: 1.5 },
            0.1,
            5,
            0
        )
        .is_err());
    }
}
