//! Stage evaluation: mapping a strategy profile `W^k` to realized stage
//! utilities and observations.
//!
//! Two evaluators are provided:
//!
//! * [`AnalyticalEvaluator`] — solves the heterogeneous fixed point of
//!   `macgame_dcf` and returns exact expected utilities with perfect
//!   observation (the regime of the paper's Sections IV–V);
//! * [`SimulatedEvaluator`] — plays the stage on the slot-level simulator
//!   and returns *measured* payoffs and *estimated* peer windows, i.e. the
//!   noisy regime the GTFT tolerance parameters exist for (Section VII).

use std::collections::hash_map::Entry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use macgame_dcf::cache::canonicalize;
use macgame_telemetry as telemetry;
use macgame_dcf::fixedpoint::{solve_robust, SolveOptions};
use macgame_dcf::utility::all_utilities;
use macgame_faults::{ObservationChannel, ObservationFaults};
use macgame_sim::{estimate_windows_partial, Engine, SimConfig};

use crate::error::GameError;
use crate::game::GameConfig;

/// Outcome of evaluating one stage under a strategy profile.
#[derive(Debug, Clone, PartialEq)]
pub struct StageOutcome {
    /// Per-player stage utilities `U_i^s = u_i·T`.
    pub utilities: Vec<f64>,
    /// The window profile as observable by the players (exact or
    /// estimated, depending on the evaluator).
    pub observed_windows: Vec<u32>,
}

/// Evaluates a strategy profile for one stage of the repeated game.
///
/// Object-safe so drivers can hold `Box<dyn StageEvaluator>`.
pub trait StageEvaluator {
    /// Plays one stage under `windows` and reports utilities/observations.
    ///
    /// # Errors
    ///
    /// Implementations return [`GameError`] when the underlying model or
    /// simulator rejects the profile.
    fn evaluate(&mut self, windows: &[u32]) -> Result<StageOutcome, GameError>;
}

/// Exact expected utilities from the analytical fixed point, with perfect
/// observation of the played profile.
#[derive(Debug, Clone)]
pub struct AnalyticalEvaluator {
    game: GameConfig,
    options: SolveOptions,
}

impl AnalyticalEvaluator {
    /// Creates an evaluator for `game`.
    #[must_use]
    pub fn new(game: GameConfig) -> Self {
        AnalyticalEvaluator { game, options: SolveOptions::default() }
    }

    /// Overrides the fixed-point solver options.
    #[must_use]
    pub fn with_options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }
}

impl StageEvaluator for AnalyticalEvaluator {
    fn evaluate(&mut self, windows: &[u32]) -> Result<StageOutcome, GameError> {
        // The robust ladder returns the plain solve bitwise-identically when
        // the accelerated pass converges; the fallback rungs only engage on
        // profiles the plain solver would have rejected outright.
        let robust = solve_robust(windows, self.game.params(), self.options)?;
        let eq = robust.equilibrium;
        let per_us =
            all_utilities(&eq.taus, &eq.collision_probs, self.game.params(), self.game.utility());
        let utilities = per_us.into_iter().map(|u| self.game.stage_utility(u)).collect();
        Ok(StageOutcome { utilities, observed_windows: windows.to_vec() })
    }
}

/// Measured utilities from a persistent slot-level simulation; peer windows
/// are estimated from overheard traffic (promiscuous-mode observation).
#[derive(Debug)]
pub struct SimulatedEvaluator {
    game: GameConfig,
    engine: Engine,
    /// Fall back to the true profile when estimation fails (too few
    /// observations in a stage).
    observe_exactly: bool,
}

impl SimulatedEvaluator {
    /// Creates a simulated evaluator for `game`, seeding the engine with
    /// `seed`. All players start on window `W_max` (maximally polite) until
    /// the first profile is applied.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::Sim`] if the simulator rejects the
    /// configuration.
    pub fn new(game: GameConfig, seed: u64) -> Result<Self, GameError> {
        let config = SimConfig::builder()
            .params(*game.params())
            .utility(*game.utility())
            .symmetric(game.player_count(), game.w_max())
            .seed(seed)
            .build()?;
        Ok(SimulatedEvaluator { game, engine: Engine::new(&config), observe_exactly: false })
    }

    /// Makes observation exact (players see the true profile) while
    /// utilities stay measured. Useful to isolate payoff noise from
    /// observation noise in experiments.
    #[must_use]
    pub fn with_exact_observation(mut self, exact: bool) -> Self {
        self.observe_exactly = exact;
        self
    }

    /// Access to the underlying engine (e.g. for clock inspection).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl StageEvaluator for SimulatedEvaluator {
    fn evaluate(&mut self, windows: &[u32]) -> Result<StageOutcome, GameError> {
        self.engine.set_windows(windows)?;
        let report = self.engine.run_for(self.game.stage_duration());
        let utilities = (0..windows.len())
            .map(|i| {
                report.payoff_rate(i, self.game.utility()) * self.game.stage_duration().value()
            })
            .collect();
        let observed_windows = if self.observe_exactly {
            windows.to_vec()
        } else {
            match estimate_windows_partial(
                0,
                &report,
                self.game.params().max_backoff_stage(),
                self.game.w_max(),
            ) {
                Ok(estimates) => {
                    // Per-node degradation: a silent node this stage falls
                    // back to its true window, without poisoning the other
                    // nodes' estimates.
                    let mut observed: Vec<u32> = estimates
                        .iter()
                        .zip(windows)
                        .map(|(est, &true_w)| est.map_or(true_w, |e| e.window))
                        .collect();
                    // Each player knows its own window exactly; entry 0 was
                    // the observer's. For the shared-observation abstraction
                    // we overwrite nothing else.
                    observed[0] = windows[0];
                    observed
                }
                // Estimation itself rejected the report: fall back to the
                // true profile rather than fabricating estimates.
                Err(_) => windows.to_vec(),
            }
        };
        Ok(StageOutcome { utilities, observed_windows })
    }
}


/// Wraps any evaluator with a seeded [`ObservationChannel`]: utilities are
/// passed through untouched, but the observed windows the strategies react
/// to are perturbed by multiplicative/additive noise, stale reads and
/// dropped observations.
///
/// This is the fault-injection hook the robustness experiments use to map
/// which GTFT `(r₀, β)` parameterizations still converge to `W_c*` when the
/// promiscuous-mode estimates are unreliable. A no-op fault configuration
/// returns the inner outcome verbatim without drawing randomness, so a
/// zero-rate wrapper is bitwise identical to the bare evaluator.
#[derive(Debug, Clone)]
pub struct NoisyObservationEvaluator<E> {
    inner: E,
    channel: ObservationChannel,
    w_max: u32,
}

impl<E: StageEvaluator> NoisyObservationEvaluator<E> {
    /// Wraps `inner` for a game of `nodes` players whose observations are
    /// clamped into `[1, w_max]`.
    #[must_use]
    pub fn new(inner: E, faults: ObservationFaults, nodes: usize, w_max: u32) -> Self {
        NoisyObservationEvaluator {
            inner,
            channel: ObservationChannel::new(faults, nodes),
            w_max,
        }
    }

    /// The wrapped fault configuration.
    #[must_use]
    pub fn faults(&self) -> &ObservationFaults {
        self.channel.faults()
    }

    /// Consumes the wrapper, returning the inner evaluator.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: StageEvaluator> StageEvaluator for NoisyObservationEvaluator<E> {
    fn evaluate(&mut self, windows: &[u32]) -> Result<StageOutcome, GameError> {
        let outcome = self.inner.evaluate(windows)?;
        let observed_windows = self
            .channel
            .observe(&outcome.observed_windows, self.w_max)
            .map_err(|e| GameError::InvalidConfig(e.to_string()))?;
        Ok(StageOutcome { utilities: outcome.utilities, observed_windows })
    }
}

/// Memoizing wrapper around any deterministic evaluator: repeated games,
/// tournaments and best-response dynamics revisit the same profiles
/// constantly, and the analytic outcome of a profile never changes.
///
/// The cache is **shared and thread-safe**: cloning a `CachingEvaluator`
/// yields a handle onto the same underlying map and counters, so parallel
/// drivers can hand each worker its own clone and every worker benefits
/// from profiles the others already evaluated.
///
/// By default lookups are **permutation-canonicalizing**: the profile is
/// sorted, the inner evaluator runs on the sorted profile, and the outcome
/// is remapped through the inverse permutation. Both the hit and the miss
/// path remap the same stored canonical outcome, so a hit is
/// bitwise-identical to a fresh evaluation of the same profile. This
/// requires the inner evaluator to be *permutation-equivariant* (relabeling
/// players relabels the outcome the same way) — true of
/// [`AnalyticalEvaluator`], whose utilities depend only on each player's
/// own window and the multiset of others. For a deterministic evaluator
/// that treats player identity specially, disable it with
/// [`CachingEvaluator::without_canonicalization`].
///
/// Do **not** wrap [`SimulatedEvaluator`]: its outcomes are noisy samples
/// and its engine state advances per call — caching would freeze one
/// sample forever.
#[derive(Debug)]
pub struct CachingEvaluator<E> {
    inner: E,
    cache: Arc<RwLock<std::collections::HashMap<Vec<u32>, Arc<StageOutcome>>>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    canonical: bool,
}

impl<E: Clone> Clone for CachingEvaluator<E> {
    /// Clones the inner evaluator but **shares** the cache and counters.
    fn clone(&self) -> Self {
        CachingEvaluator {
            inner: self.inner.clone(),
            cache: Arc::clone(&self.cache),
            hits: Arc::clone(&self.hits),
            misses: Arc::clone(&self.misses),
            canonical: self.canonical,
        }
    }
}

impl<E: StageEvaluator> CachingEvaluator<E> {
    /// Wraps `inner` with permutation canonicalization enabled.
    #[must_use]
    pub fn new(inner: E) -> Self {
        CachingEvaluator {
            inner,
            cache: Arc::new(RwLock::new(std::collections::HashMap::new())),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            canonical: true,
        }
    }

    /// Disables permutation canonicalization: profiles are cached verbatim
    /// and the inner evaluator sees them in player order. Use for
    /// deterministic evaluators that are not permutation-equivariant.
    #[must_use]
    pub fn without_canonicalization(mut self) -> Self {
        self.canonical = false;
        self
    }

    /// Cache hits served (shared across clones).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses, i.e. inner evaluations performed (shared across
    /// clones).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Remaps an outcome of the canonical (sorted) profile back onto the
    /// original player order: output index `perm[k]` receives canonical
    /// index `k`.
    fn remap(canonical: &StageOutcome, perm: &[usize]) -> StageOutcome {
        let n = perm.len();
        let mut utilities = vec![0.0; n];
        let mut observed_windows = vec![0; n];
        for (k, &original) in perm.iter().enumerate() {
            utilities[original] = canonical.utilities[k];
            observed_windows[original] = canonical.observed_windows[k];
        }
        StageOutcome { utilities, observed_windows }
    }
}

impl<E: StageEvaluator> StageEvaluator for CachingEvaluator<E> {
    fn evaluate(&mut self, windows: &[u32]) -> Result<StageOutcome, GameError> {
        let (key, perm) = if self.canonical {
            let (sorted, perm) = canonicalize(windows);
            (sorted, Some(perm))
        } else {
            (windows.to_vec(), None)
        };
        let stored = {
            let hit = self.cache.read().expect("cache lock poisoned").get(&key).cloned(); // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
            match hit {
                Some(outcome) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter("core.evaluator.hits", 1);
                    outcome
                }
                None => {
                    // Evaluate outside the write lock: concurrent misses on
                    // the same key may duplicate work, but never block each
                    // other, and the first insert wins so every caller
                    // observes one canonical outcome.
                    let outcome = Arc::new(self.inner.evaluate(&key)?);
                    let mut map = self.cache.write().expect("cache lock poisoned"); // PANIC-POLICY: lock poisoning means a panic is already unwinding; propagating it is correct
                    match map.entry(key) {
                        Entry::Occupied(existing) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            telemetry::counter("core.evaluator.hits", 1);
                            Arc::clone(existing.get())
                        }
                        Entry::Vacant(slot) => {
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            telemetry::counter("core.evaluator.misses", 1);
                            slot.insert(Arc::clone(&outcome));
                            outcome
                        }
                    }
                }
            }
        };
        Ok(match perm {
            Some(perm) => Self::remap(&stored, &perm),
            None => (*stored).clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macgame_dcf::MicroSecs;

    fn game(n: usize) -> GameConfig {
        GameConfig::builder(n).build().unwrap()
    }

    #[test]
    fn analytical_matches_symmetric_model() {
        let g = game(5);
        let mut eval = AnalyticalEvaluator::new(g.clone());
        let out = eval.evaluate(&[76; 5]).unwrap();
        assert_eq!(out.observed_windows, vec![76; 5]);
        let expect = macgame_dcf::optimal::symmetric_utility(5, 76, g.params(), g.utility())
            .unwrap()
            * g.stage_duration().value();
        for u in &out.utilities {
            assert!((u - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn analytical_ranks_heterogeneous_profiles() {
        let mut eval = AnalyticalEvaluator::new(game(3));
        let out = eval.evaluate(&[16, 64, 256]).unwrap();
        assert!(out.utilities[0] > out.utilities[1]);
        assert!(out.utilities[1] > out.utilities[2]);
    }

    #[test]
    fn simulated_tracks_analytical_within_noise() {
        let g = GameConfig::builder(5)
            .stage_duration(MicroSecs::from_seconds(30.0))
            .build()
            .unwrap();
        let mut analytic = AnalyticalEvaluator::new(g.clone());
        let mut sim = SimulatedEvaluator::new(g, 7).unwrap();
        let windows = [76u32; 5];
        let a = analytic.evaluate(&windows).unwrap();
        let s = sim.evaluate(&windows).unwrap();
        for i in 0..5 {
            let rel = (a.utilities[i] - s.utilities[i]).abs() / a.utilities[i];
            assert!(rel < 0.15, "player {i}: analytic {} vs sim {}", a.utilities[i], s.utilities[i]);
        }
    }

    #[test]
    fn simulated_estimates_windows_roughly() {
        let g = GameConfig::builder(4)
            .stage_duration(MicroSecs::from_seconds(50.0))
            .build()
            .unwrap();
        let mut sim = SimulatedEvaluator::new(g, 3).unwrap();
        let windows = [32u32, 64, 32, 128];
        let out = sim.evaluate(&windows).unwrap();
        for (i, (&est, &truth)) in out.observed_windows.iter().zip(&windows).enumerate() {
            let rel = (f64::from(est) - f64::from(truth)).abs() / f64::from(truth);
            assert!(rel < 0.35, "node {i}: estimated {est} for true {truth}");
        }
    }

    #[test]
    fn exact_observation_mode() {
        let g = game(3);
        let mut sim = SimulatedEvaluator::new(g, 3).unwrap().with_exact_observation(true);
        let out = sim.evaluate(&[16, 64, 256]).unwrap();
        assert_eq!(out.observed_windows, vec![16, 64, 256]);
    }

    #[test]
    fn noop_noisy_wrapper_is_bitwise_identical() {
        let g = game(3);
        let mut bare = AnalyticalEvaluator::new(g.clone());
        let mut wrapped = NoisyObservationEvaluator::new(
            AnalyticalEvaluator::new(g.clone()),
            ObservationFaults::noop(),
            3,
            g.w_max(),
        );
        for profile in [[16u32, 64, 256], [76, 76, 76], [1, 32, 1024]] {
            let a = bare.evaluate(&profile).unwrap();
            let b = wrapped.evaluate(&profile).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn noisy_wrapper_perturbs_observations_but_not_utilities() {
        let g = game(3);
        let faults = ObservationFaults::noise(0.4, 11).unwrap();
        let mut bare = AnalyticalEvaluator::new(g.clone());
        let mut wrapped = NoisyObservationEvaluator::new(
            AnalyticalEvaluator::new(g.clone()),
            faults,
            3,
            g.w_max(),
        );
        let mut any_moved = false;
        for _ in 0..20 {
            let a = bare.evaluate(&[16, 64, 256]).unwrap();
            let b = wrapped.evaluate(&[16, 64, 256]).unwrap();
            assert_eq!(a.utilities, b.utilities);
            assert!(b.observed_windows.iter().all(|&w| (1..=g.w_max()).contains(&w)));
            any_moved |= b.observed_windows != a.observed_windows;
        }
        assert!(any_moved, "40% multiplicative noise never moved an estimate");
    }

    #[test]
    fn noisy_wrapper_is_seed_deterministic() {
        let g = game(4);
        let faults = ObservationFaults::new(0.2, 3.0, 0.1, 0.1, 99).unwrap();
        let mut a = NoisyObservationEvaluator::new(
            AnalyticalEvaluator::new(g.clone()),
            faults,
            4,
            g.w_max(),
        );
        let mut b = NoisyObservationEvaluator::new(
            AnalyticalEvaluator::new(g.clone()),
            faults,
            4,
            g.w_max(),
        );
        for _ in 0..15 {
            let oa = a.evaluate(&[32, 64, 128, 256]).unwrap();
            let ob = b.evaluate(&[32, 64, 128, 256]).unwrap();
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn caching_evaluator_serves_repeats_from_cache() {
        let g = game(3);
        let mut cached = CachingEvaluator::new(AnalyticalEvaluator::new(g.clone()));
        let a = cached.evaluate(&[76, 76, 76]).unwrap();
        let b = cached.evaluate(&[76, 76, 76]).unwrap();
        assert_eq!(a, b);
        assert_eq!(cached.hits(), 1);
        assert_eq!(cached.misses(), 1);
        let _ = cached.evaluate(&[10, 76, 76]).unwrap();
        assert_eq!(cached.misses(), 2);
    }

    #[test]
    fn caching_evaluator_hit_is_bitwise_identical() {
        let g = game(4);
        let mut cached = CachingEvaluator::new(AnalyticalEvaluator::new(g));
        let profile = [256u32, 16, 64, 16];
        let fresh = cached.evaluate(&profile).unwrap();
        let hit = cached.evaluate(&profile).unwrap();
        assert_eq!(cached.hits(), 1);
        assert_eq!(fresh.utilities, hit.utilities);
        assert_eq!(fresh.observed_windows, hit.observed_windows);
    }

    #[test]
    fn caching_evaluator_canonicalizes_permutations() {
        let g = game(3);
        let mut cached = CachingEvaluator::new(AnalyticalEvaluator::new(g.clone()));
        let a = cached.evaluate(&[16, 64, 256]).unwrap();
        let b = cached.evaluate(&[256, 16, 64]).unwrap();
        assert_eq!(cached.misses(), 1);
        assert_eq!(cached.hits(), 1);
        // The player on window 16 gets the same utility in both orderings,
        // bitwise, because both paths remap the same canonical outcome.
        assert_eq!(a.utilities[0], b.utilities[1]);
        assert_eq!(a.utilities[1], b.utilities[2]);
        assert_eq!(a.utilities[2], b.utilities[0]);
        assert_eq!(a.observed_windows, vec![16, 64, 256]);
        assert_eq!(b.observed_windows, vec![256, 16, 64]);
        // And the outcome matches an uncached evaluation in player order.
        let direct = AnalyticalEvaluator::new(g).evaluate(&[256, 16, 64]).unwrap();
        for i in 0..3 {
            assert!((b.utilities[i] - direct.utilities[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn caching_evaluator_without_canonicalization_caches_verbatim() {
        let g = game(3);
        let mut cached =
            CachingEvaluator::new(AnalyticalEvaluator::new(g)).without_canonicalization();
        let _ = cached.evaluate(&[16, 64, 256]).unwrap();
        let _ = cached.evaluate(&[256, 16, 64]).unwrap();
        assert_eq!(cached.misses(), 2);
        assert_eq!(cached.hits(), 0);
    }

    #[test]
    fn caching_evaluator_clones_share_one_cache() {
        let g = game(3);
        let base = CachingEvaluator::new(AnalyticalEvaluator::new(g));
        let expect = base.clone().evaluate(&[16, 64, 256]).unwrap();
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let mut worker = base.clone();
                    scope.spawn(move || {
                        // Every worker hammers a permutation of one profile.
                        let p = match i % 3 {
                            0 => [16u32, 64, 256],
                            1 => [64, 256, 16],
                            _ => [256, 16, 64],
                        };
                        (i, worker.evaluate(&p).unwrap())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        for (i, out) in &results {
            // Player on window 16 sits at a different index per permutation
            // but always receives the identical canonical utility.
            let idx16 = match i % 3 {
                0 => 0,
                1 => 2,
                _ => 1,
            };
            assert_eq!(out.utilities[idx16], expect.utilities[0]);
        }
        assert_eq!(base.hits() + base.misses(), 9);
        // All three permutations share one canonical entry, so at most a
        // few racing first-misses ever ran the inner evaluator.
        assert!(base.misses() <= 3, "misses {}", base.misses());
    }

    #[test]
    fn caching_evaluator_drives_a_repeated_game() {
        use crate::repeated::RepeatedGame;
        use crate::strategy::{Strategy, Tft};
        let g = game(3);
        let players: Vec<Box<dyn Strategy>> =
            (0..3).map(|_| Box::new(Tft::new(60)) as Box<dyn Strategy>).collect();
        let evaluator =
            Box::new(CachingEvaluator::new(AnalyticalEvaluator::new(g.clone())));
        let mut rg = RepeatedGame::new(g, players, evaluator).unwrap();
        rg.play(6).unwrap();
        // Six stages, one distinct profile: the cache did its job.
        assert_eq!(rg.history().len(), 6);
    }
}
