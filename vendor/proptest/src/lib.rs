//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! Provides the [`Strategy`] trait (numeric ranges, tuples, [`Just`],
//! `prop_map`, `prop_oneof!`, `prop::collection::vec`), the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`, and [`ProptestConfig`].
//!
//! Differences from real proptest: no shrinking — each case is generated
//! from a deterministic per-test RNG (seeded from the test name), so
//! failures reproduce exactly on rerun.
//!
//! # Failure persistence
//!
//! Like real proptest, the shim keeps a `<test file>.proptest-regressions`
//! sidecar next to each test source file. Every `cc <hex>` line names an
//! RNG state; before generating novel cases, each persisted state is
//! replayed for every test in the file (inputs a state generates for one
//! test are arbitrary-but-valid inputs for the others too). When a novel
//! case fails, the shim appends the pre-case state to the sidecar so the
//! failure re-runs first on every subsequent invocation — check the file
//! in so the whole team replays it.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test name.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Creates a generator from a raw state word (a persisted regression).
    #[must_use]
    pub fn from_state(state: u64) -> Self {
        TestRng { state }
    }

    /// The current raw state word; feed to [`TestRng::from_state`] to
    /// replay everything generated from this point.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Returns the next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                let draw = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let f = rng.unit_f64() as $t;
                self.start + f * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Occasionally pin the endpoints so `..=` covers them.
                match rng.below(64) {
                    0 => lo,
                    1 => hi,
                    _ => lo + (rng.unit_f64() as $t) * (hi - lo),
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}

/// A size specification for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Type-erased strategy, used by `prop_oneof!`.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> BoxedStrategy<T> {
    /// Erases `strategy`'s type.
    pub fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> Self {
        BoxedStrategy(Box::new(move |rng| strategy.generate(rng)))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among several boxed strategies (`prop_oneof!` backend).
#[derive(Debug)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Per-block configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Reading and writing `.proptest-regressions` sidecar files.
///
/// The format mirrors real proptest: comment lines start with `#`, and
/// each persisted case is `cc <hex> [# note]`. The shim interprets the
/// first 16 hex digits of the token as a [`TestRng`] state word (longer
/// tokens, e.g. hashes written by real proptest, are truncated — they
/// still replay as valid, deterministic inputs).
pub mod persistence {
    use std::path::{Path, PathBuf};

    /// Resolves the sidecar path for a test source file.
    ///
    /// `source` is what `file!()` produced at the call site — relative to
    /// the workspace root — while tests run with the *package* root as
    /// their working directory. Leading path components are stripped until
    /// a candidate's parent directory exists, so both layouts (and an
    /// absolute path) resolve to `tests/<name>.proptest-regressions`.
    #[must_use]
    pub fn sidecar_path(source: &str) -> Option<PathBuf> {
        let sidecar = Path::new(source).with_extension("proptest-regressions");
        let mut candidate = sidecar.as_path();
        loop {
            if candidate.parent().is_some_and(Path::exists) {
                return Some(candidate.to_path_buf());
            }
            let mut components = candidate.components();
            components.next()?;
            let stripped = components.as_path();
            if stripped.as_os_str().is_empty() {
                return None;
            }
            candidate = stripped;
        }
    }

    /// Loads every persisted RNG state from the sidecar of `source`.
    /// Missing or unreadable files are simply an empty list.
    #[must_use]
    pub fn load(source: &str) -> Vec<u64> {
        let Some(path) = sidecar_path(source) else {
            return Vec::new();
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Vec::new();
        };
        let mut states = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("cc ") else {
                continue;
            };
            let token = rest.split_whitespace().next().unwrap_or("");
            let hex: String = token.chars().take(16).collect();
            if !hex.is_empty() {
                if let Ok(state) = u64::from_str_radix(&hex, 16) {
                    states.push(state);
                }
            }
        }
        states
    }

    /// Appends a failing case's RNG state to the sidecar (best effort:
    /// filesystem errors are swallowed — the panic itself still surfaces).
    /// Returns the path written, for the failure message.
    pub fn save(source: &str, state: u64, test_name: &str) -> Option<PathBuf> {
        let path = sidecar_path(source)?;
        if load(source).contains(&state) {
            return Some(path); // already persisted; keep the file tidy
        }
        let mut text = std::fs::read_to_string(&path).unwrap_or_default();
        if text.is_empty() {
            text.push_str(
                "# Seeds for failure cases proptest has generated in the past. It is\n\
                 # automatically read and these particular cases re-run before any\n\
                 # novel cases are generated.\n\
                 #\n\
                 # It is recommended to check this file in to source control so that\n\
                 # everyone who runs the test benefits from these saved cases.\n",
            );
        }
        text.push_str(&format!("cc {state:016x} # failing RNG state of {test_name}\n"));
        std::fs::write(&path, text).ok()?;
        Some(path)
    }
}

/// Everything tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        collection, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };

    /// The `prop::` module alias used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }

    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies: `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::BoxedStrategy::new($strategy)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn` body runs `config.cases` times with
/// freshly generated arguments.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    (
        @cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                let source = file!();
                // Persisted regressions replay before any novel case.
                for state in $crate::persistence::load(source) {
                    let mut rng = $crate::TestRng::from_state(state);
                    $( let $arg = $crate::Strategy::generate(&$strategy, &mut rng); )+
                    $body
                }
                let mut rng = $crate::TestRng::from_name(test_name);
                for _case in 0..config.cases {
                    let pre_case_state = rng.state();
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            $( let $arg = $crate::Strategy::generate(&$strategy, &mut rng); )+
                            $body
                        }),
                    );
                    if let Err(panic) = outcome {
                        match $crate::persistence::save(source, pre_case_state, test_name) {
                            Some(path) => eprintln!(
                                "proptest: persisted failing case `cc {:016x}` to {}",
                                pre_case_state,
                                path.display(),
                            ),
                            None => eprintln!(
                                "proptest: could not persist failing case `cc {:016x}`",
                                pre_case_state,
                            ),
                        }
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Mode {
        A,
        B,
    }

    fn any_mode() -> impl Strategy<Value = Mode> {
        prop_oneof![Just(Mode::A), Just(Mode::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_collections_respect_bounds(
            w in 1u32..512,
            x in 0.25f64..=0.75,
            xs in prop::collection::vec(1u32..10, 2..6),
            mode in any_mode(),
        ) {
            prop_assert!((1..512).contains(&w));
            prop_assert!((0.25..=0.75).contains(&x));
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| (1..10).contains(&v)));
            prop_assert!(mode == Mode::A || mode == Mode::B);
        }

        #[test]
        fn tuples_and_map_compose(
            pts in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..4)
                .prop_map(|v| v.into_iter().map(|(x, y)| x + y).collect::<Vec<_>>()),
        ) {
            prop_assert!(!pts.is_empty());
            prop_assert!(pts.iter().all(|&s| (0.0..20.0).contains(&s)));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_roundtrips_through_from_state() {
        let mut a = TestRng::from_name("y");
        a.next_u64();
        let mut b = TestRng::from_state(a.state());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn persistence_save_then_load_roundtrips() {
        let src = std::env::temp_dir().join("proptest_shim_roundtrip_test.rs");
        let src = src.to_str().unwrap().to_owned();
        let sidecar = crate::persistence::sidecar_path(&src).unwrap();
        let _ = std::fs::remove_file(&sidecar);

        assert!(crate::persistence::load(&src).is_empty());
        let written = crate::persistence::save(&src, 0xdead_beef_0042, "shim::t").unwrap();
        assert_eq!(written, sidecar);
        assert_eq!(crate::persistence::load(&src), vec![0xdead_beef_0042]);
        // Saving the same state twice keeps a single entry.
        crate::persistence::save(&src, 0xdead_beef_0042, "shim::t").unwrap();
        assert_eq!(crate::persistence::load(&src), vec![0xdead_beef_0042]);

        std::fs::remove_file(&sidecar).unwrap();
    }

    #[test]
    fn persistence_parses_real_proptest_hashes() {
        let src = std::env::temp_dir().join("proptest_shim_hash_parse_test.rs");
        let src = src.to_str().unwrap().to_owned();
        let sidecar = crate::persistence::sidecar_path(&src).unwrap();
        // Real proptest writes 64-hex-digit hashes; the shim truncates the
        // token to its first 16 digits. Comments and blank lines are skipped.
        std::fs::write(
            &sidecar,
            "# header comment\n\
             \n\
             cc c89d056c36a96ec3599de9236dd0a0fe9cf1024a7a71900ab1a1b360dd8b18bc # shrinks to w = 1\n\
             cc 00000000000000ff\n",
        )
        .unwrap();
        assert_eq!(
            crate::persistence::load(&src),
            vec![0xc89d_056c_36a9_6ec3, 0x0000_0000_0000_00ff]
        );
        std::fs::remove_file(&sidecar).unwrap();
    }
}
