//! Channel slot statistics and normalized throughput (paper Section III).
//!
//! Given the per-node transmission probabilities `τ_i` and frame timings,
//! a randomly chosen slot is empty with probability `1 − P_tr`, carries a
//! success with probability `P_tr·P_s` and a collision otherwise; the mean
//! slot length `T_slot` weights those outcomes by σ, `T_s` and `T_c`.

use serde::{Deserialize, Serialize};

use crate::params::DcfParams;
use crate::units::MicroSecs;

/// Probabilistic description of a random channel slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotStats {
    /// `P_tr`: probability that at least one node transmits.
    pub p_transmit: f64,
    /// `P_s`: probability that a transmission slot is a success
    /// (exactly one transmitter), conditioned on `P_tr`.
    pub p_success: f64,
    /// Mean slot duration `T_slot`.
    pub mean_slot: MicroSecs,
}

impl SlotStats {
    /// Unconditional probability that a random slot carries a success.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        self.p_transmit * self.p_success
    }

    /// Unconditional probability that a random slot carries a collision.
    #[must_use]
    pub fn collision_rate(&self) -> f64 {
        self.p_transmit * (1.0 - self.p_success)
    }

    /// Unconditional probability that a random slot is idle.
    #[must_use]
    pub fn idle_rate(&self) -> f64 {
        1.0 - self.p_transmit
    }
}

/// Computes [`SlotStats`] from a transmission-probability profile.
///
/// # Panics
///
/// Panics if `taus` is empty or contains values outside `[0, 1]`
/// (the profile comes from our own solvers, so this is a programming error,
/// not a recoverable condition).
#[must_use]
pub fn slot_stats(taus: &[f64], params: &DcfParams) -> SlotStats {
    assert!(!taus.is_empty(), "need at least one node"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
    assert!( // PANIC-POLICY: documented # Panics contract (programmer-error guard)
        taus.iter().all(|t| (0.0..=1.0).contains(t)),
        "transmission probabilities must be in [0, 1]"
    );
    let all_idle: f64 = taus.iter().map(|&t| 1.0 - t).product();
    let p_transmit = 1.0 - all_idle;
    let single: f64 = taus
        .iter()
        .enumerate()
        .map(|(i, &ti)| {
            ti * taus
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &tj)| 1.0 - tj)
                .product::<f64>()
        })
        .sum();
    let p_success = if p_transmit > 0.0 { (single / p_transmit).clamp(0.0, 1.0) } else { 0.0 };
    let t = params.timings();
    let mean_slot = (1.0 - p_transmit) * params.sigma()
        + p_transmit * p_success * t.success_time
        + p_transmit * (1.0 - p_success) * t.collision_time;
    SlotStats { p_transmit, p_success, mean_slot }
}

/// Normalized saturation throughput `S`: the fraction of channel time spent
/// carrying successful payload bits.
///
/// # Panics
///
/// Same conditions as [`slot_stats`].
#[must_use]
pub fn normalized_throughput(taus: &[f64], params: &DcfParams) -> f64 {
    let stats = slot_stats(taus, params);
    stats.success_rate() * (params.payload_time() / stats.mean_slot)
}

/// Per-node share of the normalized throughput: node `i`'s successful
/// payload airtime fraction `τ_i·Π_{j≠i}(1−τ_j)·E[P]/T_slot`.
///
/// # Panics
///
/// Same conditions as [`slot_stats`], plus `node` must index into `taus`.
#[must_use]
pub fn node_throughput(node: usize, taus: &[f64], params: &DcfParams) -> f64 {
    assert!(node < taus.len(), "node index out of range"); // PANIC-POLICY: documented # Panics contract (programmer-error guard)
    let stats = slot_stats(taus, params);
    let p_i_success: f64 = taus[node]
        * taus
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != node)
            .map(|(_, &tj)| 1.0 - tj)
            .product::<f64>();
    p_i_success * (params.payload_time() / stats.mean_slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixedpoint::solve_symmetric;
    use crate::params::AccessMode;

    fn params() -> DcfParams {
        DcfParams::default()
    }

    #[test]
    fn slot_probabilities_partition() {
        let stats = slot_stats(&[0.1, 0.2, 0.05], &params());
        let total = stats.idle_rate() + stats.success_rate() + stats.collision_rate();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_node_never_collides() {
        let stats = slot_stats(&[0.3], &params());
        assert!((stats.p_success - 1.0).abs() < 1e-12);
        assert!((stats.p_transmit - 0.3).abs() < 1e-12);
    }

    #[test]
    fn all_silent_gives_idle_slots() {
        let stats = slot_stats(&[0.0, 0.0], &params());
        assert_eq!(stats.p_transmit, 0.0);
        assert_eq!(stats.mean_slot, params().sigma());
        assert_eq!(normalized_throughput(&[0.0, 0.0], &params()), 0.0);
    }

    #[test]
    fn certain_collision() {
        let stats = slot_stats(&[1.0, 1.0], &params());
        assert_eq!(stats.p_transmit, 1.0);
        assert_eq!(stats.p_success, 0.0);
        assert_eq!(stats.mean_slot, params().timings().collision_time);
    }

    #[test]
    fn throughput_in_unit_interval() {
        let p = params();
        for n in [2usize, 5, 20] {
            for w in [8u32, 32, 128, 512] {
                let sym = solve_symmetric(n, w, &p).unwrap();
                let s = normalized_throughput(&vec![sym.tau; n], &p);
                assert!((0.0..=1.0).contains(&s), "S = {s} for n={n}, W={w}");
            }
        }
    }

    #[test]
    fn node_throughputs_sum_to_total() {
        let p = params();
        let taus = [0.02, 0.05, 0.01, 0.08];
        let total = normalized_throughput(&taus, &p);
        let by_node: f64 = (0..taus.len()).map(|i| node_throughput(i, &taus, &p)).sum();
        assert!((total - by_node).abs() < 1e-12);
    }

    #[test]
    fn bianchi_scale_sanity() {
        // At the paper's parameters with a sensible CW, saturation throughput
        // should be high (payload dominates headers at 8184-bit frames).
        let p = params();
        let sym = solve_symmetric(5, 76, &p).unwrap();
        let s = normalized_throughput(&[sym.tau; 5], &p);
        assert!(s > 0.7 && s < 0.95, "S = {s}");
    }

    #[test]
    fn rtscts_beats_basic_at_small_window() {
        // Cheap collisions make RTS/CTS far better when contention is fierce.
        let basic = params();
        let rtscts = DcfParams::builder().access_mode(AccessMode::RtsCts).build().unwrap();
        let n = 20;
        let sym_b = solve_symmetric(n, 2, &basic).unwrap();
        let sym_r = solve_symmetric(n, 2, &rtscts).unwrap();
        let s_basic = normalized_throughput(&vec![sym_b.tau; n], &basic);
        let s_rtscts = normalized_throughput(&vec![sym_r.tau; n], &rtscts);
        assert!(s_rtscts > 1.5 * s_basic, "basic {s_basic} vs rts/cts {s_rtscts}");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_profile_panics() {
        let _ = slot_stats(&[], &params());
    }
}
